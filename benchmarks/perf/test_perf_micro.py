"""Microbenchmark smoke suite (the `benchmarks/perf/` harness).

Runs the ``repro.perf`` microbenchmarks at reduced sizes and checks the
invariants the full ``repro perf`` CLI run relies on: the report schema is
stable, the routing fast path beats the frozen baseline while staying
bit-identical, and the caches actually hit.  CI runs this as a non-gating
perf-smoke job and uploads the emitted ``BENCH_*.json`` as an artifact;
locally::

    PYTHONPATH=src python -m pytest benchmarks/perf -q
    PYTHONPATH=src python -m repro perf --quick

The acceptance-scale routing benchmark (>= 64 qubits, >= 2000 gates) runs
through ``repro perf`` (both modes); here a scaled-down instance keeps the
tier-1 suite fast.
"""

import json
import os

import pytest

from repro.perf.harness import SCHEMA_VERSION, bench_route, run_perf, write_report

#: Scaled-down routing instance for the smoke run; REPRO_PERF_FULL=1 bumps it
#: to the acceptance-scale instance (64 qubits, 2000 gates).
_FULL = os.environ.get("REPRO_PERF_FULL", "") == "1"
_ROUTE_QUBITS = 64 if _FULL else 25
_ROUTE_GATES = 2000 if _FULL else 400


def test_routing_micro_fast_beats_baseline_and_is_bit_identical():
    records, routing = bench_route(
        num_qubits=_ROUTE_QUBITS, num_gates=_ROUTE_GATES, seed=42, repeats=1
    )
    assert routing["bit_identical"] is True
    # Non-gating perf job asserts only sanity here (>1x); the documented
    # >=5x target is checked on the acceptance-scale `repro perf` run.
    assert routing["speedup"] > 1.0
    fast = next(r for r in records if r.extra["implementation"] == "fast")
    assert fast.gates_per_second > 0.0


def test_quick_perf_report_schema_and_artifact(tmp_path):
    report = run_perf(quick=True, kinds=["synthesize", "simulate"], repeats=1)
    assert report["schema"] == SCHEMA_VERSION
    assert report["quick"] is True
    names = [record["name"] for record in report["benchmarks"]]
    assert len(names) == len(set(names))
    path = tmp_path / "BENCH_perf_smoke.json"
    write_report(report, str(path))
    assert json.loads(path.read_text())["schema"] == SCHEMA_VERSION


def test_gate_matrix_cache_hits_on_perf_workload():
    from repro.gates.gate import matrix_cache_stats, reset_matrix_cache_stats
    from repro.perf.harness import random_two_qubit_circuit

    reset_matrix_cache_stats()
    circuit = random_two_qubit_circuit(6, 50, seed=0)
    for instruction in circuit:
        instruction.gate.matrix
    stats = matrix_cache_stats()
    # Every cx shares the precomputed constant -> hits dominate.
    assert stats["hits"] > stats["misses"]


def test_incr_micro_edit_recompile_is_bit_identical_and_faster():
    from repro.perf.harness import bench_incr

    records, section = bench_incr(
        num_qubits=8, num_gates=200, num_edits=5, seed=42, repeats=2
    )
    # Bit identity is the hard incremental-recompilation gate at every
    # scale; the documented >=5x speedup is checked at acceptance scale.
    assert section["bit_identical"] is True
    assert section["mismatches"] == []
    assert section["memo_hits"] > 0
    assert section["incremental_seconds"] < section["from_scratch_seconds"]
    names = {record.name for record in records}
    assert len(names) == 2


@pytest.mark.skipif(not _FULL, reason="acceptance-scale run (set REPRO_PERF_FULL=1)")
def test_incr_acceptance_scale_speedup():
    from repro.perf.harness import bench_incr

    _, section = bench_incr()  # 24q, 4000 gates, 10-gate edits
    assert section["bit_identical"] is True
    assert section["speedup"] >= 5.0


@pytest.mark.skipif(not _FULL, reason="acceptance-scale run (set REPRO_PERF_FULL=1)")
def test_routing_acceptance_scale_speedup():
    _, routing = bench_route(num_qubits=64, num_gates=2000, seed=42, repeats=3)
    assert routing["bit_identical"] is True
    assert routing["speedup"] >= 5.0


def test_synth_batch_micro_contracts_hold_at_any_scale():
    from repro.perf.harness import bench_synth_batch

    _, section = bench_synth_batch(count=24, seed=13, repeats=1, apply_ops=24)
    # The correctness contracts are scale-independent hard gates; the
    # documented >=3x batched-KAK throughput is checked at acceptance scale.
    assert section["bit_identical"] is True
    assert section["mismatches"] == []
    assert section["composition_independent"] is True
    assert section["kak_max_delta"] <= section["kak_tolerance"]
    assert section["interned_fraction"] > 0.0


@pytest.mark.skipif(not _FULL, reason="acceptance-scale run (set REPRO_PERF_FULL=1)")
def test_synth_batch_acceptance_scale_speedup():
    from repro.perf.harness import bench_synth_batch

    _, section = bench_synth_batch()  # 192 SU(4)s, the full-mode stack
    assert section["bit_identical"] is True
    assert section["speedup"] >= 3.0
