#!/usr/bin/env python
"""Diff two ``BENCH_*.json`` perf reports (or self-check a single one).

Used by CI two ways:

* ``compare_bench.py --self-check FRESH.json`` — validate one report:
  every bit-identity section present must be ``true`` (a routing /
  equivalence / IR / QASM-round-trip / serve-vs-sequential / batched-kernel
  / uniform-calibration mismatch is a correctness bug), every stored
  ``speedup`` must equal the ratio of the two wall-time fields it was
  computed from (the drift guard: the harness computes each ratio exactly
  once, this check re-derives it), every fidelity row's ``improvement``
  must equal ``exp(max(logs) - distance_log)`` re-derived from its log-
  fidelity operands and must be >= 1 (the portfolio guarantee: noise-aware
  routing never scores worse than distance-only), and the schema must
  match the harness this checkout ships.
* ``compare_bench.py COMMITTED.json FRESH.json`` — the nightly gate:
  self-check the fresh report, **hard-fail** on schema drift between the
  two reports or on any bit-identity regression, and print an
  **advisory** wall-clock comparison per benchmark (shared runners are
  too noisy for a hard timing gate; the artifacts record the
  trajectory).  ``--max-slowdown`` only marks advisories, it never fails
  the run unless ``--strict-timing`` is also given.

Exit code 0 when all hard checks pass, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Dict, List, Tuple

#: Report sections whose ``bit_identical`` flag gates the build.
BIT_IDENTITY_SECTIONS = (
    "routing", "equivalence", "ir", "incr", "qasm", "serve", "chaos", "synth_batch",
    "fidelity",
)

#: section -> (speedup field, numerator field, denominator field).  Each
#: stored ratio must equal numerator/denominator from the same report — the
#: harness computes it once (``repro.perf.harness.speedup_ratio``) and this
#: check re-derives it, so the number can never drift from its operands.
SPEEDUP_FIELDS = {
    "routing": ("speedup", "baseline_seconds", "fast_seconds"),
    "ir": ("speedup", "legacy_seconds", "ir_seconds"),
    "incr": ("speedup", "from_scratch_seconds", "incremental_seconds"),
    "synth_batch": ("speedup", "scalar_seconds", "batch_seconds"),
}


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def self_check(report: Dict[str, Any], label: str) -> List[str]:
    """Hard failures within a single report (bit identity, schema shape)."""
    failures: List[str] = []
    schema = report.get("schema", "")
    if not str(schema).startswith("repro-perf/"):
        failures.append(f"{label}: unrecognized schema {schema!r}")
    for section in BIT_IDENTITY_SECTIONS:
        payload = report.get(section)
        if payload is not None and payload.get("bit_identical") is not True:
            failures.append(f"{label}: {section} is not bit-identical: {payload}")
    for section, (ratio_field, numerator_field, denominator_field) in SPEEDUP_FIELDS.items():
        payload = report.get(section)
        if payload is None:
            continue
        stored = payload.get(ratio_field)
        numerator = payload.get(numerator_field)
        denominator = payload.get(denominator_field)
        if stored is None or numerator is None or denominator is None:
            failures.append(
                f"{label}: {section} is missing one of "
                f"{ratio_field}/{numerator_field}/{denominator_field}"
            )
            continue
        derived = numerator / denominator if denominator > 0 else math.inf
        if not math.isclose(stored, derived, rel_tol=1e-9):
            failures.append(
                f"{label}: {section}.{ratio_field} drifted: stored {stored!r} but "
                f"{numerator_field}/{denominator_field} = {derived!r}"
            )
    # The chaos soak's verdict is stricter than bit identity alone: it also
    # fails on unrecovered jobs, hung clients and unscrubbed corruption.
    chaos = report.get("chaos")
    if chaos is not None and chaos.get("ok") is not True:
        failures.append(
            f"{label}: chaos soak failed (unrecovered={len(chaos.get('unrecovered', []))}, "
            f"hung_clients={chaos.get('hung_clients')})"
        )
    failures.extend(_check_fidelity(report.get("fidelity"), label))
    return failures


def _check_fidelity(fidelity: Any, label: str) -> List[str]:
    """The fidelity-family gate: re-derived ratios, and no regressions.

    Every row's ``improvement`` is re-derived from its two log-fidelity
    operands (same drift guard as the speedup fields), and the portfolio
    guarantee is enforced as a hard failure: noise-aware routing scoring
    *worse* than distance-only on any suite program means the
    keep-the-better-result selection in ``compare_routing_strategies``
    broke.
    """
    if fidelity is None:
        return []
    failures: List[str] = []
    for row in fidelity.get("rows", []):
        key = f"{row.get('benchmark')}@{row.get('preset')}"
        stored = row.get("improvement")
        noise_log = row.get("noise_log_fidelity")
        distance_log = row.get("distance_log_fidelity")
        if stored is None or noise_log is None or distance_log is None:
            failures.append(
                f"{label}: fidelity row {key} is missing one of "
                "improvement/noise_log_fidelity/distance_log_fidelity"
            )
            continue
        derived = math.exp(max(noise_log, distance_log) - distance_log)
        if not math.isclose(stored, derived, rel_tol=1e-9):
            failures.append(
                f"{label}: fidelity row {key} improvement drifted: stored "
                f"{stored!r} but exp(max(logs) - distance_log) = {derived!r}"
            )
        if stored < 1.0:
            failures.append(
                f"{label}: fidelity row {key} regressed: noise-aware routing "
                f"scored worse than distance-only (improvement {stored!r})"
            )
    regressions = fidelity.get("regressions")
    if regressions is None:
        failures.append(f"{label}: fidelity section is missing 'regressions'")
    elif regressions:
        failures.append(
            f"{label}: fidelity regressions recorded by the harness: {regressions}"
        )
    return failures


def compare(
    committed: Dict[str, Any],
    fresh: Dict[str, Any],
    max_slowdown: float = 1.5,
) -> Tuple[List[str], List[str]]:
    """Return ``(failures, advisories)`` for the nightly committed-vs-fresh diff."""
    failures = self_check(fresh, "fresh")

    old_schema = committed.get("schema")
    new_schema = fresh.get("schema")
    if old_schema != new_schema:
        failures.append(
            f"schema drift: committed report is {old_schema!r}, fresh report is "
            f"{new_schema!r} — regenerate the committed BENCH_perf.json"
        )
    if committed.get("quick") is False and fresh.get("quick") is True:
        failures.append("fresh report was produced in --quick mode; the nightly run must be full")

    # Bit-identity sections that regressed relative to the committed report.
    for section in BIT_IDENTITY_SECTIONS:
        old = committed.get(section)
        new = fresh.get(section)
        if old is not None and old.get("bit_identical") is True and new is None:
            failures.append(f"{section}: section disappeared from the fresh report")

    advisories: List[str] = []
    old_by_name = {record["name"]: record for record in committed.get("benchmarks", [])}
    new_by_name = {record["name"]: record for record in fresh.get("benchmarks", [])}
    for name in sorted(old_by_name.keys() | new_by_name.keys()):
        old = old_by_name.get(name)
        new = new_by_name.get(name)
        if old is None:
            advisories.append(f"{name}: new benchmark (no committed baseline)")
            continue
        if new is None:
            advisories.append(f"{name}: missing from the fresh report")
            continue
        old_wall = float(old.get("wall_seconds") or 0.0)
        new_wall = float(new.get("wall_seconds") or 0.0)
        if old_wall <= 0.0:
            continue
        ratio = new_wall / old_wall
        marker = "  <-- slower" if ratio > max_slowdown else ""
        advisories.append(
            f"{name}: {old_wall:.4f}s -> {new_wall:.4f}s ({ratio:.2f}x){marker}"
        )

    # Fidelity-improvement drift per (benchmark, preset) is advisory: the
    # >= 1 floor is the hard gate (in self_check); magnitude shifts track
    # routing-heuristic changes worth eyeballing, not build breakage.
    def fidelity_rows(report: Dict[str, Any]) -> Dict[Tuple[str, str], Dict[str, Any]]:
        section = report.get("fidelity") or {}
        return {
            (row.get("benchmark"), row.get("preset")): row
            for row in section.get("rows", [])
        }

    old_rows = fidelity_rows(committed)
    new_rows = fidelity_rows(fresh)
    for key in sorted(old_rows.keys() | new_rows.keys()):
        name = f"fidelity {key[0]}@{key[1]}"
        old = old_rows.get(key)
        new = new_rows.get(key)
        if old is None:
            advisories.append(f"{name}: new row (no committed baseline)")
            continue
        if new is None:
            advisories.append(f"{name}: missing from the fresh report")
            continue
        old_gain = float(old.get("improvement") or 0.0)
        new_gain = float(new.get("improvement") or 0.0)
        if not math.isclose(old_gain, new_gain, rel_tol=1e-9):
            advisories.append(
                f"{name}: improvement {old_gain:.6f} -> {new_gain:.6f}"
            )
    return failures, advisories


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("committed", help="committed baseline report (or the only report with --self-check)")
    parser.add_argument("fresh", nargs="?", help="freshly produced report")
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="validate a single report's bit-identity sections and schema",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=1.5,
        metavar="X",
        help="flag benchmarks slower than X times the baseline (default: 1.5)",
    )
    parser.add_argument(
        "--strict-timing",
        action="store_true",
        help="turn flagged slowdowns into hard failures (off by default: "
        "shared-runner wall clocks are advisory)",
    )
    args = parser.parse_args(argv)

    if args.self_check:
        if args.fresh is not None:
            parser.error("--self-check takes exactly one report")
        failures = self_check(load_report(args.committed), args.committed)
        if failures:
            print("perf report self-check FAILED:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"perf report self-check passed for {args.committed}")
        return 0

    if args.fresh is None:
        parser.error("need COMMITTED and FRESH reports (or --self-check with one)")
    committed = load_report(args.committed)
    fresh = load_report(args.fresh)
    failures, advisories = compare(committed, fresh, max_slowdown=args.max_slowdown)

    print(f"perf trajectory: {args.committed} (committed) vs {args.fresh} (fresh)")
    slower = [line for line in advisories if line.endswith("<-- slower")]
    if advisories:
        print("wall-clock comparison (advisory):")
        for line in advisories:
            print(f"  {line}")
    if args.strict_timing and slower:
        failures.extend(f"slowdown beyond --max-slowdown: {line}" for line in slower)
    if failures:
        print("hard checks FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("hard checks passed (schema + bit identity).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
