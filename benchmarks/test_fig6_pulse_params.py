"""Benchmark E5 — Figure 6: gate-time landscape and drive amplitudes."""

import math

from repro.experiments.common import format_rows
from repro.experiments.figures import fig6_pulse_parameters


def test_fig6_pulse_parameters(benchmark):
    rows = benchmark.pedantic(
        fig6_pulse_parameters, kwargs={"couplings": ["xy", "xx"]}, rounds=1, iterations=1
    )
    print()
    print(format_rows(rows, title="Figure 6: pulse parameters of representative gates"))
    by_key = {(row["coupling"], row["gate"]): row for row in rows}
    assert by_key[("xy", "cnot")]["duration"] == round(math.pi / 2, 10) or abs(
        by_key[("xy", "cnot")]["duration"] - math.pi / 2
    ) < 1e-9
    assert by_key[("xy", "iswap")]["A1"] < 1e-6
    assert by_key[("xx", "cnot")]["duration"] < by_key[("xy", "cnot")]["duration"]
    assert by_key[("xy", "swap")]["A1"] > 0.0
