"""Benchmark E2 — Table 2: logical-level compilation comparison."""

from repro.experiments.common import format_rows
from repro.experiments.tables import table2_logical_compilation


def test_table2_logical_compilation(benchmark, bench_scale, bench_categories):
    rows = benchmark.pedantic(
        table2_logical_compilation,
        kwargs={
            "scale": bench_scale,
            "categories": bench_categories,
            "compilers": ["qiskit-like", "tket-like", "reqisc-eff", "reqisc-full"],
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows, title=f"Table 2 (scale={bench_scale}): reduction rates (%)"))
    for row in rows:
        # The headline shape of Table 2: ReQISC reduces #2Q and duration more
        # than the CNOT-ISA baselines on every category.
        assert row["reqisc-eff_2q_red"] >= row["qiskit-like_2q_red"] - 1e-9
        assert row["reqisc-full_2q_red"] >= row["reqisc-eff_2q_red"] - 1e-9
        assert row["reqisc-eff_dur_red"] >= 30.0
