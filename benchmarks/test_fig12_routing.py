"""Benchmark E6 — Figure 12: topology-aware routing overhead."""

from repro.experiments.common import format_rows
from repro.experiments.figures import fig12_routing_overhead


def test_fig12_routing_overhead(benchmark, bench_scale, bench_categories):
    rows = benchmark.pedantic(
        fig12_routing_overhead,
        kwargs={"scale": bench_scale, "categories": bench_categories, "topologies": ("chain", "grid")},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows, title=f"Figure 12 (scale={bench_scale}): routing overhead"))
    for row in rows:
        # Mirroring-SABRE never exceeds plain SABRE on routed #2Q, and the
        # SU(4) flow has no larger relative overhead than the CNOT flow.
        assert row["chain_su4_mirroring_2q"] <= row["chain_su4_sabre_2q"]
        assert row["grid_su4_mirroring_2q"] <= row["grid_su4_sabre_2q"]
        assert row["chain_su4_overhead"] <= row["chain_cnot_overhead"] + 0.25
