"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation tables or figures
on a scaled-down workload (so the whole harness runs in minutes on a laptop)
and prints the regenerated rows, mirroring the artifact's ``make results``
workflow.  Scale can be raised via the ``REPRO_BENCH_SCALE`` environment
variable (``tiny`` / ``small`` / ``medium``).
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Workload scale used by the benchmark harness."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture(scope="session")
def bench_categories():
    """Benchmark categories exercised by the compilation benchmarks."""
    value = os.environ.get("REPRO_BENCH_CATEGORIES", "qft,tof,alu,ripple_add")
    return [item.strip() for item in value.split(",") if item.strip()]
