"""Benchmark E10 — Figure 16: compilation error and compile latency."""

from repro.experiments.common import format_rows
from repro.experiments.figures import fig16_reliability


def test_fig16_reliability(benchmark, bench_categories):
    rows = benchmark.pedantic(
        fig16_reliability,
        kwargs={"scale": "tiny", "categories": bench_categories, "max_qubits": 8},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows, title="Figure 16: compilation error / latency (s)"))
    for row in rows:
        for name in ("qiskit-like", "tket-like", "reqisc-eff", "reqisc-full"):
            assert row[f"{name}_error"] < 1e-5
            assert row[f"{name}_seconds"] < 120.0
