"""Benchmark E4 — Figure 4: (alpha, beta) solution profiling for SWAP under XX."""

from repro.experiments.figures import fig4_alpha_beta_profile


def test_fig4_alpha_beta_profile(benchmark):
    profile = benchmark.pedantic(
        fig4_alpha_beta_profile, kwargs={"resolution": 25}, rounds=1, iterations=1
    )
    print()
    print(
        "Figure 4: SWAP under XX coupling — tau={tau:.4f}, subscheme={sub}, "
        "near-solutions on grid={n}, chosen (Omega1, Omega2, delta)=({o1:.4f}, {o2:.4f}, {d:.4f})".format(
            tau=profile["tau"],
            sub=profile["subscheme"],
            n=profile["num_near_solutions"],
            o1=profile["solution"]["omega1"],
            o2=profile["solution"]["omega2"],
            d=profile["solution"]["delta"],
        )
    )
    assert profile["num_near_solutions"] >= 1
    assert profile["landscape"].max() > 0.1
