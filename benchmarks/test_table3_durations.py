"""Benchmark E3 — Table 3: Haar-random synthesis cost per ISA and coupling."""

from repro.experiments.common import format_rows
from repro.experiments.tables import table3_synthesis_cost


def test_table3_synthesis_cost(benchmark):
    rows = benchmark.pedantic(
        table3_synthesis_cost, kwargs={"num_samples": 800, "seed": 0}, rounds=1, iterations=1
    )
    print()
    print(format_rows(rows, title="Table 3: synthesis cost tau (units of 1/g)"))
    by_key = {(row["coupling"], row["basis"]): row for row in rows}
    # Paper: 6.664 -> 1.341 (XY), 1.178 (XX); SU(4) beats every fixed basis.
    assert by_key[("xy", "cnot-conventional")]["tau_average"] > 6.6
    assert 1.25 < by_key[("xy", "su4")]["tau_average"] < 1.45
    assert 1.10 < by_key[("xx", "su4")]["tau_average"] < 1.26
    speedup = by_key[("xy", "cnot-conventional")]["tau_average"] / by_key[("xy", "su4")]["tau_average"]
    assert speedup > 4.5
