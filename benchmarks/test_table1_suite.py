"""Benchmark E1 — Table 1: benchmark-suite characteristics."""

from repro.experiments.common import format_rows
from repro.experiments.tables import table1_suite_characteristics


def test_table1_suite_characteristics(benchmark, bench_scale):
    rows = benchmark.pedantic(
        table1_suite_characteristics, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    print()
    print(format_rows(rows, title=f"Table 1 (scale={bench_scale}): suite characteristics"))
    assert len(rows) == 17
    assert all(row["num_2q"] > 0 for row in rows)
