"""Ablation bench: hierarchical-synthesis hyperparameters (w, m_th).

DESIGN.md calls out the partition granularity ``w`` and the synthesis
threshold ``m_th`` as the key design choices of the hierarchical pass
(Section 5.1.2); this bench sweeps both on a dense Toffoli-chain workload.
"""

from repro.compiler.passes.hierarchical import HierarchicalSynthesisPass
from repro.compiler.passes.template_synthesis import TemplateSynthesisPass
from repro.experiments.common import format_rows
from repro.synthesis.approximate import ApproximateSynthesizer
from repro.workloads.reversible import toffoli_chain


def _sweep():
    base = TemplateSynthesisPass().run(toffoli_chain(5), {})
    rows = []
    for block_size in (2, 3):
        for threshold in (4, 6):
            synthesizer = ApproximateSynthesizer(tolerance=1e-5, restarts=1, seed=1, max_iterations=200)
            hierarchical = HierarchicalSynthesisPass(
                block_size=block_size,
                threshold=threshold,
                tolerance=1e-5,
                synthesizer=synthesizer,
                enable_dag_compacting=False,
                max_synthesis_blocks=2,
            )
            result = hierarchical.run(base, {})
            rows.append(
                {
                    "block_size_w": block_size,
                    "threshold_mth": threshold,
                    "num_2q": result.count_two_qubit_gates(),
                }
            )
    return rows


def test_hierarchical_hyperparameter_ablation(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_rows(rows, title="Ablation: hierarchical synthesis (w, m_th) sweep on tof_5"))
    best = min(row["num_2q"] for row in rows)
    # The paper's default (w=3, m_th=4) is on the Pareto front of this sweep.
    default = next(r for r in rows if r["block_size_w"] == 3 and r["threshold_mth"] == 4)
    assert default["num_2q"] <= best + 1
