"""Benchmark E9 — Figure 15: program fidelity and duration under noise."""

from repro.experiments.common import format_rows
from repro.experiments.figures import fig15_fidelity


def test_fig15_fidelity(benchmark):
    rows = benchmark.pedantic(
        fig15_fidelity,
        kwargs={
            "scale": "tiny",
            "categories": ["tof", "alu", "qft"],
            "topologies": ("logical", "chain"),
            "base_error_rate": 3e-3,
            "num_trajectories": 100,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows, title="Figure 15: Hellinger fidelity / pulse duration"))
    for row in rows:
        # ReQISC executes faster and at least as faithfully as the baseline.
        assert row["logical_reqisc_duration"] < row["logical_baseline_duration"]
        assert row["logical_reqisc_fidelity"] >= row["logical_baseline_fidelity"] - 0.08
        assert row["chain_reqisc_duration"] < row["chain_baseline_duration"]
