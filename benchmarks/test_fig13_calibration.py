"""Benchmark E7 — Figure 13: calibration efficiency (distinct SU(4) counts)."""

from repro.experiments.common import format_rows
from repro.experiments.figures import fig13_calibration


def test_fig13_calibration(benchmark, bench_scale, bench_categories):
    rows = benchmark.pedantic(
        fig13_calibration,
        kwargs={"scale": bench_scale, "categories": bench_categories},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows, title=f"Figure 13 (scale={bench_scale}): distinct SU(4) gates"))
    for row in rows:
        # ReQISC-Eff keeps the calibration load small; Full trades extra
        # distinct gates for a lower (or equal) #2Q.
        assert row["eff_distinct"] <= 12
        assert row["full_2q"] <= row["eff_2q"]
        assert row["full_distinct"] >= row["eff_distinct"] - 2
