"""Benchmark E8 — Figure 14: ablation against the SU(4) baseline variants."""

from repro.experiments.common import format_rows
from repro.experiments.figures import fig14_ablation


def test_fig14_ablation(benchmark, bench_scale):
    categories = ["tof", "alu", "qft"]
    rows = benchmark.pedantic(
        fig14_ablation,
        kwargs={
            "scale": bench_scale,
            "categories": categories,
            "compilers": ["qiskit-su4", "tket-su4", "reqisc-nc", "reqisc-full"],
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(rows, title=f"Figure 14 (scale={bench_scale}): ablation, #2Q reduction (%)"))
    average = lambda key: sum(row[key] for row in rows) / len(rows)
    # ReQISC-Full matches or beats the naive SU(4) variants on average and
    # never falls behind the no-compacting variant.
    assert average("reqisc-full_2q_red") >= average("qiskit-su4_2q_red") - 5.0
    assert average("reqisc-full_2q_red") >= average("reqisc-nc_2q_red") - 1e-9
