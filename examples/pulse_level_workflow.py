"""Pulse-level workflow: from a variational workload to genAshN pulse programs.

Compiles a QAOA MaxCut instance with ReQISC, then lowers every distinct SU(4)
instruction to pulse parameters for two different hardware couplings (XY and
XX), illustrating the "reconfigurable" part of ReQISC: the same logical
circuit retargets to any coupling Hamiltonian with a per-gate solve.

Run with ``python examples/pulse_level_workflow.py``.
"""

from collections import OrderedDict

from repro import CouplingHamiltonian, compile
from repro.microarch.scheme import GenAshNScheme
from repro.workloads.algorithms import qaoa_maxcut


def main() -> None:
    program = qaoa_maxcut(num_qubits=5, layers=1, seed=3)
    result = compile(program, spec="reqisc-eff")
    print(f"{program.name}: {result.num_two_qubit_gates} SU(4) gates, "
          f"{result.distinct_two_qubit_gates} distinct\n")

    # Collect the distinct canonical coordinates appearing in the program.
    distinct = OrderedDict()
    for instruction in result.circuit:
        if instruction.gate.name == "can":
            key = tuple(round(p, 6) for p in instruction.gate.params)
            distinct.setdefault(key, 0)
            distinct[key] += 1

    for label, coupling in (("XY", CouplingHamiltonian.xy(1.0)), ("XX", CouplingHamiltonian.xx(1.0))):
        scheme = GenAshNScheme(coupling)
        print(f"== {label} coupling ==")
        for coords, uses in distinct.items():
            pulse = scheme.compile_gate(coords)
            print(
                f"  Can{tuple(round(c, 3) for c in coords)} x{uses}: "
                f"tau = {pulse.tau:.3f}/g, {pulse.subscheme.value}, "
                f"|A| = ({abs(pulse.drive_amplitudes[0]):.3f}, {abs(pulse.drive_amplitudes[1]):.3f}), "
                f"delta = {pulse.delta:+.3f}"
            )
        print()


if __name__ == "__main__":
    main()
