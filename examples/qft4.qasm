// 4-qubit quantum Fourier transform, written the way external corpora
// (MQT Bench / QASMBench) write it: controlled-phase angles as pi
// expressions, final reversal as swaps.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cp(pi/2) q[1],q[0];
cp(pi/4) q[2],q[0];
cp(pi/8) q[3],q[0];
h q[1];
cp(pi/2) q[2],q[1];
cp(pi/4) q[3],q[1];
h q[2];
cp(pi/2) q[3],q[2];
h q[3];
swap q[0],q[3];
swap q[1],q[2];
