"""Batch compilation: fan a suite out across processes with synthesis caching.

Run with ``python examples/batch_compilation.py`` (set ``PYTHONPATH=src``
when the package is not installed).  The same engine backs the
``python -m repro suite`` command; see docs/cli.md.
"""

import shutil
import tempfile

from repro import BatchCompiler, SynthesisCache
from repro.experiments.common import format_rows


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-cache-")
    try:
        cache = SynthesisCache(capacity=4096, directory=cache_dir)
        # ``target`` accepts a preset name (sized per circuit) or a concrete
        # repro.Target; every summary row reports the resolved target name.
        engine = BatchCompiler(
            compiler="reqisc-eff", workers=2, seed=0, cache=cache, target="xy-line"
        )

        # First pass: everything is a cache miss and gets synthesized.
        batch = engine.compile_suite(scale="tiny", categories=["qft", "tof", "grover"])
        print(format_rows(batch.summaries(), title="== First run (cold cache) =="))
        print(f"workers={batch.workers}  elapsed={batch.elapsed_seconds:.2f}s  "
              f"cache={batch.cache_stats.as_dict()}\n")

        # Second pass: identical blocks are served from the shared disk store,
        # and the compiled circuits are bit-identical to the first run.
        again = engine.compile_suite(scale="tiny", categories=["qft", "tof", "grover"])
        print(format_rows(again.summaries(), title="== Second run (warm cache) =="))
        print(f"workers={again.workers}  elapsed={again.elapsed_seconds:.2f}s  "
              f"cache={again.cache_stats.as_dict()}")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
