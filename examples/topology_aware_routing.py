"""Topology-aware compilation: SABRE vs mirroring-SABRE on a 1D chain.

Reproduces the qualitative behaviour of Figure 12 on one benchmark: mapping a
QFT circuit onto a linear chain, comparing the CNOT flow (SABRE) against the
SU(4) flow with and without SWAP absorption.

Run with ``python examples/topology_aware_routing.py``.
"""

from repro import Target, compile
from repro.compiler.routing.coupling_map import CouplingMap
from repro.target import reqisc_pipeline
from repro.workloads.algorithms import qft_circuit


def main() -> None:
    program = qft_circuit(6)
    chain = Target.xy_line(program.num_qubits)

    cnot_logical = compile(program, spec="qiskit-like")
    cnot_routed = compile(program, target=chain, spec="qiskit-like")

    su4_logical = compile(program, spec="reqisc-eff")
    su4_sabre = compile(program, target=chain, spec="reqisc-sabre")
    su4_mirroring = compile(program, target=chain, spec="reqisc-eff")

    print(f"Workload: {program.name} on a {program.num_qubits}-qubit 1D chain\n")
    print("CNOT ISA (baseline + SABRE):")
    print(f"  logical #CNOT = {cnot_logical.num_two_qubit_gates}")
    print(f"  routed  #CNOT = {cnot_routed.num_two_qubit_gates} "
          f"(overhead {cnot_routed.num_two_qubit_gates / max(cnot_logical.num_two_qubit_gates, 1):.2f}x)")
    print("SU(4) ISA (ReQISC):")
    print(f"  logical #SU(4)             = {su4_logical.num_two_qubit_gates}")
    print(f"  routed, plain SABRE        = {su4_sabre.num_two_qubit_gates}")
    print(f"  routed, mirroring-SABRE    = {su4_mirroring.num_two_qubit_gates} "
          f"(absorbed SWAPs: {su4_mirroring.properties.get('absorbed_swaps', 0)})")
    print(f"  overhead vs logical        = "
          f"{su4_mirroring.num_two_qubit_gates / max(su4_logical.num_two_qubit_gates, 1):.2f}x")


if __name__ == "__main__":
    main()
