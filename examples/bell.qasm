// Bell pair: the smallest interchange fixture.
// Exercises barrier/measure passthrough (both are validated and dropped
// by the importer; the circuit IR is measurement-free).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
barrier q;
measure q -> c;
