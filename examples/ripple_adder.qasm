// 2-bit ripple-carry adder (Cuccaro style) built from user-defined gate
// macros -- exercises `gate` definitions, which the importer inlines at
// parse time, plus multi-register programs (registers are flattened onto
// one contiguous qubit space in declaration order).
OPENQASM 2.0;
include "qelib1.inc";
gate majority a,b,c
{
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate unmaj a,b,c
{
  ccx a,b,c;
  cx c,a;
  cx a,b;
}
qreg cin[1];
qreg a[2];
qreg b[2];
qreg cout[1];
creg ans[3];
x a[0];
x b[0];
x b[1];
majority cin[0],b[0],a[0];
majority a[0],b[1],a[1];
cx a[1],cout[0];
unmaj a[0],b[1],a[1];
unmaj cin[0],b[0],a[0];
measure b[0] -> ans[0];
measure b[1] -> ans[1];
measure cout[0] -> ans[2];
