"""Quickstart: compile a small program with ReQISC and inspect the result.

Run with ``python examples/quickstart.py``.
"""

from repro import CouplingHamiltonian, QuantumCircuit, Target, compile
from repro.circuits.metrics import circuit_duration, cnot_isa_duration_model
from repro.linalg.weyl import canonical_gate
from repro.microarch.durations import su4_duration_model
from repro.microarch.scheme import GenAshNScheme


def main() -> None:
    # A small reversible program: a Toffoli cascade with some single-qubit gates.
    program = QuantumCircuit(4, "quickstart")
    program.h(0)
    program.ccx(0, 1, 2)
    program.cx(2, 3)
    program.ccx(1, 2, 3)
    program.t(3)
    program.ccx(0, 1, 2)

    coupling = CouplingHamiltonian.xy(1.0)
    target = Target(coupling=coupling)

    baseline = compile(program, target=target, spec="qiskit-like")
    reqisc = compile(program, target=target, spec="reqisc-eff")

    print("== Logical-level compilation ==")
    print(f"baseline (CNOT ISA):   #2Q = {baseline.num_two_qubit_gates:3d}  "
          f"Depth2Q = {baseline.two_qubit_depth:3d}  "
          f"T = {circuit_duration(baseline.circuit, cnot_isa_duration_model()):7.2f} / g")
    print(f"ReQISC-Eff (SU(4) ISA): #2Q = {reqisc.num_two_qubit_gates:3d}  "
          f"Depth2Q = {reqisc.two_qubit_depth:3d}  "
          f"T = {circuit_duration(reqisc.circuit, su4_duration_model(coupling)):7.2f} / g")
    print(f"distinct SU(4) gates to calibrate: {reqisc.distinct_two_qubit_gates}")

    # Lower one of the compiled SU(4) instructions to pulse parameters.
    scheme = GenAshNScheme(coupling)
    first_can = next(instr for instr in reqisc.circuit if instr.gate.name == "can")
    pulse = scheme.compile_gate(tuple(first_can.gate.params))
    print("\n== genAshN pulse program for the first Can gate ==")
    print(f"coordinates  : {tuple(round(c, 4) for c in pulse.target_coordinates)}")
    print(f"duration     : {pulse.tau:.4f} / g   (subscheme: {pulse.subscheme.value})")
    print(f"drives       : Omega1={pulse.omega1:.4f}, Omega2={pulse.omega2:.4f}, delta={pulse.delta:.4f}")
    target = canonical_gate(*pulse.target_coordinates)
    print(f"realization infidelity vs Can(x,y,z): {pulse.infidelity(target):.2e}")


if __name__ == "__main__":
    main()
