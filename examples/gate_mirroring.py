"""Gate mirroring for near-identity gates on a QFT-like kernel (Figure 5c).

The small controlled-phase angles deep in a QFT produce SU(4) gates close to
the identity, which the genAshN scheme cannot drive in optimal time with
bounded amplitudes.  The compiler composes each of them with a logical SWAP
(moving them to the far corner of the Weyl chamber) and only has to track a
final qubit permutation — no extra two-qubit gates.

Run with ``python examples/gate_mirroring.py``.
"""

import numpy as np

from repro import compile
from repro.target import reqisc_pipeline
from repro.linalg.predicates import allclose_up_to_global_phase
from repro.linalg.weyl import coordinate_norm, weyl_coordinates
from repro.simulators.unitary import permutation_unitary
from repro.workloads.algorithms import qft_circuit


def main() -> None:
    program = qft_circuit(4)
    spec = reqisc_pipeline(mode="eff", mirror_threshold=0.3)
    result = compile(program, spec=spec)

    print("qft_4 compiled with ReQISC-Eff (mirror threshold r = 0.3)\n")
    print(f"#SU(4) gates          : {result.num_two_qubit_gates}")
    print(f"mirrored gates        : {result.properties['mirrored_gate_count']}")
    print(f"final qubit mapping   : {result.final_permutation}")

    print("\nWeyl coordinates of the compiled 2Q gates (L1 norm in parentheses):")
    for instruction in result.circuit:
        if instruction.gate.name == "can":
            coords = tuple(round(c, 4) for c in instruction.gate.params)
            norm = coordinate_norm(*instruction.gate.params)
            print(f"  qubits {instruction.qubits}: Can{coords}   (|.|_1 = {norm:.3f})")

    # The compiled circuit equals the original up to the tracked permutation.
    expected = permutation_unitary(result.final_permutation) @ program.to_unitary()
    equivalent = allclose_up_to_global_phase(result.circuit.to_unitary(), expected, atol=1e-6)
    print(f"\nequivalent to original up to final mapping: {equivalent}")
    assert equivalent


if __name__ == "__main__":
    main()
