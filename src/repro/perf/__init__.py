"""Performance measurement for the compiler stack (``repro perf``).

See :mod:`repro.perf.harness` for the microbenchmarks and the
``BENCH_*.json`` report schema, and ``docs/performance.md`` for how to run
and read them.
"""

from repro.perf.harness import (
    SCHEMA_VERSION,
    PerfRecord,
    bench_compile,
    bench_route,
    bench_simulate,
    bench_synthesize,
    circuits_bit_identical,
    random_two_qubit_circuit,
    routing_equivalence,
    run_perf,
    write_report,
)

__all__ = [
    "SCHEMA_VERSION",
    "PerfRecord",
    "bench_compile",
    "bench_route",
    "bench_simulate",
    "bench_synthesize",
    "circuits_bit_identical",
    "random_two_qubit_circuit",
    "routing_equivalence",
    "run_perf",
    "write_report",
]
