"""The ``repro.perf`` measurement harness.

Times the hot kernels of the stack — compile, route, synthesize,
simulate, the IR pipeline path, and the QASM interchange layer — over
deterministic workloads and emits a schema-stable report
(written as ``BENCH_*.json`` by the CLI).  Two principles, borrowed from the
measurement methodology of the systems papers this repo tracks:

* **Anchored baselines.**  The routing benchmark times the frozen pre-
  optimization router (:class:`~repro.compiler.routing.sabre_reference.ReferenceSabreRouter`)
  next to the fast path in the *same* report, so every ``BENCH_*.json``
  carries its own speedup denominator instead of comparing against a number
  measured on different hardware.
* **Validated measurements.**  Speed claims ride with correctness evidence:
  the routing benchmark asserts the fast path's output is bit-identical to
  the baseline, and the equivalence sweep re-checks that over the whole
  workload suite.

Report schema (``schema = "repro-perf/8"``)::

    {
      "schema": "repro-perf/8",
      "created_unix": <float>,            # seconds since epoch
      "quick": <bool>,                    # quick mode (CI smoke) or full
      "seed": <int>,
      "host": {"python": ..., "numpy": ..., "platform": ...},
      "benchmarks": [                     # one record per microbenchmark
        {"name": str, "kind": "compile"|"route"|"synthesize"|"simulate"|"ir",
         "repeats": int, "wall_seconds": float,   # best of repeats
         "mean_seconds": float, "gates": int,
         "gates_per_second": float,               # gates / wall_seconds
         "extra": {...}},                          # kind-specific details
      ],
      "routing": {                        # the anchored routing comparison
        "num_qubits": int, "num_gates": int, "topology": str,
        "baseline_seconds": float, "fast_seconds": float,
        "speedup": float, "bit_identical": bool},
      "equivalence": {                    # suite-wide fast==reference check
        "scale": str, "cases": int, "bit_identical": bool,
        "mismatches": [str, ...]},
      "ir": {                             # shared-IR vs legacy marshalling
        "compiler": str, "scale": str, "cases": int,
        "conversions_per_compile": float,         # circuit<->IR marshals, IR path
        "legacy_conversions_per_compile": float,  # same, with per-pass boundaries
        "dag_builds_per_compile": float,
        "ir_seconds": float, "legacy_seconds": float,
        "speedup": float, "bit_identical": bool},
      "qasm": {                           # QASM interchange round trip
        "scale": str, "cases": int, "gates": int,
        "dump_seconds": float, "load_seconds": float,
        "dump_gates_per_second": float, "load_gates_per_second": float,
        "bit_identical": bool,                    # from_qasm(to_qasm(c)) == c
        "mismatches": [str, ...]},
      "incr": {                           # edit-recompile vs from scratch
        "compiler": str, "target": str,
        "num_qubits": int, "num_gates": int, "num_edits": int,
        "edits_measured": int,                    # distinct edited variants
        "warm_compile_seconds": float,            # memo-warming base compile
        "from_scratch_seconds": float,            # mean over edits, no memo
        "incremental_seconds": float,             # mean, compile(previous=...)
        "speedup": float,                         # from_scratch / incremental
        "memo_hits": int, "memo_misses": int,
        "bit_identical": bool,                    # incremental == from scratch
        "mismatches": [str, ...]},
      "serve": {                          # repro serve daemon under load
        "scale": str, "compiler": str, "cases": int, "requests": int,
        "completed": int, "clients": int, "workers": int,
        "errors": [str, ...],
        "offered_rate_jobs_per_second": float,    # open-loop arrival rate
        "throughput_jobs_per_second": float,      # completed / wall
        "latency_p50_ms": float, "latency_p99_ms": float,
        "dedup": {"compiles_started": int, "dedup_inflight": int,
                  "dedup_result_cache": int},
        "bit_identical": bool,                    # daemon == sequential compile
        "mismatches": [str, ...]},
      "chaos": {                          # seeded fault-injection soak
        "scale": str, "compiler": str, "jobs": int, "completed": int,
        "clients": int, "workers": int,
        "faults_scheduled": int, "faults_fired": {"layer.mode": int, ...},
        "faults_fired_total": int,
        "resilience": {"attempts": int, "retries": int, "reconnects": int,
                       "giveups": int, "retry_after_honored": int,
                       "hedges": int, "hedge_wins": int},
        "scrub": {...},                           # SynthesisCache.scrub() report
        "unrecovered": [...], "hung_clients": int,
        "ok": bool,                               # the single soak verdict
        "bit_identical": bool,                    # chaos daemon == fault-free
        "mismatches": [...]},
      "synth_batch": {                    # batched KAK / kernel-layer family
        "count": int, "unique": int, "interned": int,
        "interned_fraction": float,               # exact-bytes dedup rate
        "scalar_seconds": float,                  # one-at-a-time kak_decompose
        "batch_seconds": float,                   # kak_decompose_batch
        "speedup": float,                         # scalar / batch
        "kak_max_delta": float, "kak_tolerance": float,
        "apply_loop_seconds": float,              # per-gate apply_gate fold
        "apply_seq_seconds": float,               # apply_gate_sequence kernel
        "apply_speedup": float,
        "composition_independent": bool,          # batch grouping can't perturb
        "bit_identical": bool,                    # all three kernel contracts
        "mismatches": [str, ...]},
      "fidelity": {                       # noise-aware vs distance-only routing
        "scale": str, "presets": [str, ...], "cases": int,
        "rows": [                                 # one per (program, preset)
          {"benchmark": str, "preset": str, "qubits": int, "input_gates": int,
           "distance_log_fidelity": float, "noise_log_fidelity": float,
           "distance_fidelity": float, "noise_fidelity": float,
           "improvement": float,                  # exp(max(logs) - distance_log)
           "strategy": "noise"|"distance",        # which routing was kept
           "distance_swaps": int, "noise_swaps": int}],
        "wins": int, "ties": int,                 # improvement > 1 / == 1
        "regressions": [str, ...],                # rows with improvement < 1
        "min_improvement": float, "geomean_improvement": float,
        "distance_seconds": float,                # distance-only sweep
        "portfolio_seconds": float,               # both-strategies sweep
        "bit_identical": bool,                    # uniform calibration == distance
        "mismatches": [str, ...]},
      "kernels": {...},                   # repro.kernels.backend_info()
      "cache": {"synthesis": {...} | None,        # CacheStats.as_dict()
                "gate_matrix": {...}}             # matrix_cache_stats()
    }

Every section carrying a ``speedup`` computes it through the single
:func:`speedup_ratio` helper from the two ``*_seconds`` fields it reports;
``compare_bench.py`` re-derives the ratio on every self-check so the stored
number can never drift from its operands.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit

__all__ = [
    "SCHEMA_VERSION",
    "PerfRecord",
    "random_two_qubit_circuit",
    "circuits_bit_identical",
    "bench_route",
    "bench_compile",
    "bench_incr",
    "bench_ir",
    "bench_qasm",
    "bench_serve",
    "bench_chaos",
    "bench_synthesize",
    "bench_synth_batch",
    "bench_simulate",
    "bench_fidelity",
    "routing_equivalence",
    "run_perf",
    "speedup_ratio",
    "write_report",
]

SCHEMA_VERSION = "repro-perf/8"

#: Workload categories exercised by the compile benchmark (a representative
#: slice; the full suite is covered by the equivalence sweep).
_COMPILE_CATEGORIES = ("qft", "tof", "alu", "ripple_add")


@dataclass
class PerfRecord:
    """One microbenchmark measurement."""

    name: str
    kind: str  # "compile" | "route" | "synthesize" | "synth_batch" | "simulate" | "ir" | ...
    repeats: int
    wall_seconds: float  # best of repeats
    mean_seconds: float
    gates: int
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def gates_per_second(self) -> float:
        """Throughput over the best repeat."""
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.gates / self.wall_seconds

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the ``benchmarks[]`` entry of the schema)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "repeats": self.repeats,
            "wall_seconds": self.wall_seconds,
            "mean_seconds": self.mean_seconds,
            "gates": self.gates,
            "gates_per_second": self.gates_per_second,
            "extra": self.extra,
        }


def speedup_ratio(baseline_seconds: float, fast_seconds: float) -> float:
    """The one place a report ``speedup`` is computed.

    Every section stores the two operand wall times next to the ratio, and
    ``compare_bench.py`` re-derives the ratio from them on self-check — the
    historical drift (one consumer recomputing ``baseline/fast`` while
    another read the stored field) cannot recur as long as both sides agree
    on this definition.
    """
    return baseline_seconds / fast_seconds if fast_seconds > 0 else float("inf")


def _time(fn: Callable[[], Any], repeats: int) -> Tuple[float, float, Any]:
    """Run ``fn`` ``repeats`` times; return (best, mean, last result)."""
    times: List[float] = []
    result: Any = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), sum(times) / len(times), result


# ---------------------------------------------------------------------------
# Deterministic workloads.
# ---------------------------------------------------------------------------


def random_two_qubit_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int = 0,
    one_qubit_fraction: float = 0.3,
) -> QuantumCircuit:
    """Deterministic random 1Q/2Q circuit (the routing stress workload)."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"random-{num_qubits}q-{num_gates}g-s{seed}")
    for _ in range(num_gates):
        if rng.random() < one_qubit_fraction:
            theta, phi, lam = rng.uniform(0.0, 2.0 * np.pi, 3)
            circuit.u3(float(theta), float(phi), float(lam), int(rng.integers(num_qubits)))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
    return circuit


def circuits_bit_identical(a: QuantumCircuit, b: QuantumCircuit) -> bool:
    """Gate-for-gate equality: qubits, names, params and exact matrices.

    Delegates to ``Instruction``/``Gate`` equality (frozen-dataclass compare
    of ``(gate, qubits)``; ``UnitaryGate.__eq__`` compares exact matrix
    bytes), so fused SU(4) blocks must match bit for bit.
    """
    return a.num_qubits == b.num_qubits and a.instructions == b.instructions


# ---------------------------------------------------------------------------
# Microbenchmarks.
# ---------------------------------------------------------------------------


def bench_route(
    num_qubits: int = 64,
    num_gates: int = 2000,
    seed: int = 42,
    repeats: int = 3,
    mirroring: bool = True,
    include_baseline: bool = True,
) -> Tuple[List[PerfRecord], Optional[Dict[str, Any]]]:
    """Route a random circuit on a near-square grid; fast path vs baseline.

    Returns the benchmark records and (when ``include_baseline``) the
    ``routing`` comparison section of the report.
    """
    from repro.compiler.routing.coupling_map import CouplingMap
    from repro.compiler.routing.sabre import SabreRouter
    from repro.compiler.routing.sabre_reference import ReferenceSabreRouter

    coupling_map = CouplingMap.grid_for(num_qubits)
    circuit = random_two_qubit_circuit(num_qubits, num_gates, seed=seed)
    coupling_map.distance_matrix()  # build shared arrays outside the timer

    fast = SabreRouter(coupling_map, mirroring=mirroring)
    best, mean, result = _time(lambda: fast.run(circuit), repeats)
    records = [
        PerfRecord(
            name=f"route.grid{coupling_map.num_qubits}.random{num_gates}",
            kind="route",
            repeats=repeats,
            wall_seconds=best,
            mean_seconds=mean,
            gates=len(result.circuit),
            extra={
                "topology": f"{coupling_map.name}-{coupling_map.num_qubits}",
                "input_gates": len(circuit),
                "inserted_swaps": result.inserted_swaps,
                "absorbed_swaps": result.absorbed_swaps,
                "mirroring": mirroring,
                "implementation": "fast",
            },
        )
    ]
    routing: Optional[Dict[str, Any]] = None
    if include_baseline:
        # Same repeats as the fast path so the best-of comparison is
        # symmetric — a single noisy baseline run must not flatter speedup.
        reference = ReferenceSabreRouter(coupling_map, mirroring=mirroring)
        ref_best, ref_mean, ref_result = _time(lambda: reference.run(circuit), repeats)
        records.append(
            PerfRecord(
                name=f"route.grid{coupling_map.num_qubits}.random{num_gates}.baseline",
                kind="route",
                repeats=repeats,
                wall_seconds=ref_best,
                mean_seconds=ref_mean,
                gates=len(ref_result.circuit),
                extra={
                    "topology": f"{coupling_map.name}-{coupling_map.num_qubits}",
                    "input_gates": len(circuit),
                    "mirroring": mirroring,
                    "implementation": "reference",
                },
            )
        )
        routing = {
            "num_qubits": coupling_map.num_qubits,
            "num_gates": num_gates,
            "topology": coupling_map.name,
            "baseline_seconds": ref_best,
            "fast_seconds": best,
            "speedup": speedup_ratio(ref_best, best),
            "bit_identical": circuits_bit_identical(result.circuit, ref_result.circuit)
            and result.final_layout == ref_result.final_layout,
        }
    return records, routing


def bench_compile(
    scale: str = "tiny",
    categories: Optional[Sequence[str]] = None,
    compiler: str = "reqisc-eff",
    seed: int = 0,
    repeats: int = 1,
) -> Tuple[List[PerfRecord], Optional[Dict[str, Any]]]:
    """Compile a workload slice end-to-end and report synthesis-cache stats."""
    from repro.experiments.common import build_compilers
    from repro.service.cache import SynthesisCache
    from repro.workloads.suite import benchmark_suite

    cases = benchmark_suite(scale=scale, categories=list(categories or _COMPILE_CATEGORIES))
    cache = SynthesisCache(capacity=4096, directory=None)
    registry = build_compilers([compiler], seed=seed, synthesis_cache=cache)
    engine = registry[compiler]

    def compile_all():
        return [engine.compile(case.circuit) for case in cases]

    best, mean, results = _time(compile_all, repeats)
    input_gates = sum(len(case.circuit) for case in cases)
    record = PerfRecord(
        name=f"compile.{compiler}.{scale}",
        kind="compile",
        repeats=repeats,
        wall_seconds=best,
        mean_seconds=mean,
        gates=input_gates,
        extra={
            "compiler": compiler,
            "scale": scale,
            "benchmarks": [case.name for case in cases],
            "output_2q_gates": sum(r.circuit.count_two_qubit_gates() for r in results),
        },
    )
    return [record], cache.stats.as_dict()


def bench_ir(
    scale: str = "tiny",
    compiler: str = "reqisc-eff",
    seed: int = 0,
    repeats: int = 1,
    categories: Optional[Sequence[str]] = None,
) -> Tuple[List[PerfRecord], Dict[str, Any]]:
    """Shared-IR pipeline vs per-pass circuit marshalling (the PR-4 metric).

    Runs the same pipeline twice over a workload slice routed on per-circuit
    ``xy-line`` targets:

    * **ir** — the normal :class:`~repro.compiler.passes.base.PassManager`
      path, converting between circuit and :class:`~repro.ir.CircuitIR` at
      most once per representation change (two conversions per compile for
      the ReQISC pipelines);
    * **legacy** — ``force_circuit_boundaries=True``, reproducing the
      pre-refactor behaviour of re-marshalling a flat gate list at every
      pass boundary.

    Both paths must be bit-identical; the returned ``ir`` report section
    carries the conversion counts (measured via
    :func:`repro.ir.conversion_stats`), the wall-time comparison and the
    equivalence verdict.  A third record times the raw circuit<->IR
    round-trip on a large random circuit.
    """
    from repro.ir import CircuitIR, conversion_stats, reset_conversion_stats
    from repro.target.pipeline import PASS_REGISTRY, PassContext, named_pipeline
    from repro.target.properties import PropertySet
    from repro.target.target import resolve_target
    from repro.workloads.suite import benchmark_suite

    cases = benchmark_suite(scale=scale, categories=list(categories or _COMPILE_CATEGORIES))
    spec = named_pipeline(compiler)
    input_gates = sum(len(case.circuit) for case in cases)

    def run_all(force_circuit_boundaries: bool) -> List[QuantumCircuit]:
        from repro.compiler.passes.base import PassManager

        compiled: List[QuantumCircuit] = []
        for case in cases:
            target = resolve_target("xy-line", num_qubits=case.circuit.num_qubits)
            context = PassContext(target=target, seed=seed)
            manager = PassManager(force_circuit_boundaries=force_circuit_boundaries)
            for stage in spec.stages:
                if stage.requires_topology and target.coupling_map is None:
                    continue
                manager.append(PASS_REGISTRY.create(stage, context))
            properties = PropertySet()
            properties["isa"] = spec.isa
            compiled.append(manager.run(case.circuit, properties))
        return compiled

    repeats = max(1, repeats)
    run_all(False)  # warm the matrix/KAK pools so neither path pays cold-start
    reset_conversion_stats()
    ir_best, ir_mean, ir_outputs = _time(lambda: run_all(False), repeats)
    ir_stats = conversion_stats()
    reset_conversion_stats()
    legacy_best, legacy_mean, legacy_outputs = _time(lambda: run_all(True), repeats)
    legacy_stats = conversion_stats()
    reset_conversion_stats()

    compiles = len(cases) * repeats
    per_compile = lambda stats: (stats["from_circuit"] + stats["to_circuit"]) / compiles  # noqa: E731
    bit_identical = all(
        circuits_bit_identical(a, b) for a, b in zip(ir_outputs, legacy_outputs)
    )

    records = [
        PerfRecord(
            name=f"ir.pipeline.{compiler}.{scale}",
            kind="ir",
            repeats=repeats,
            wall_seconds=ir_best,
            mean_seconds=ir_mean,
            gates=input_gates,
            extra={
                "compiler": compiler,
                "scale": scale,
                "boundaries": "shared-ir",
                "conversions_per_compile": per_compile(ir_stats),
                "dag_builds_per_compile": ir_stats["dag_builds"] / compiles,
            },
        ),
        PerfRecord(
            name=f"ir.pipeline.{compiler}.{scale}.legacy",
            kind="ir",
            repeats=repeats,
            wall_seconds=legacy_best,
            mean_seconds=legacy_mean,
            gates=input_gates,
            extra={
                "compiler": compiler,
                "scale": scale,
                "boundaries": "per-pass-circuit",
                "conversions_per_compile": per_compile(legacy_stats),
                "dag_builds_per_compile": legacy_stats["dag_builds"] / compiles,
            },
        ),
    ]

    # Raw marshalling micro: one large circuit, circuit -> IR -> circuit.
    roundtrip_circuit = random_two_qubit_circuit(32, 4000, seed=seed)
    best, mean, _ = _time(
        lambda: CircuitIR.from_circuit(roundtrip_circuit).to_circuit(), max(3, repeats)
    )
    reset_conversion_stats()
    records.append(
        PerfRecord(
            name="ir.roundtrip.random32q4000g",
            kind="ir",
            repeats=max(3, repeats),
            wall_seconds=best,
            mean_seconds=mean,
            gates=len(roundtrip_circuit),
            extra={"num_qubits": 32},
        )
    )

    section = {
        "compiler": compiler,
        "scale": scale,
        "cases": len(cases),
        "conversions_per_compile": per_compile(ir_stats),
        "legacy_conversions_per_compile": per_compile(legacy_stats),
        "dag_builds_per_compile": ir_stats["dag_builds"] / compiles,
        "ir_seconds": ir_best,
        "legacy_seconds": legacy_best,
        "speedup": speedup_ratio(legacy_best, ir_best),
        "bit_identical": bit_identical,
    }
    return records, section


def bench_qasm(scale: str = "small", repeats: int = 3) -> Tuple[List[PerfRecord], Dict[str, Any]]:
    """QASM interchange throughput and round-trip identity over the suite.

    Times :func:`repro.qasm.dumps` over every suite circuit at ``scale``
    and :func:`repro.qasm.loads` over the emitted texts (both in
    gates/sec), then checks the load-bearing interchange invariant:
    ``loads(dumps(c))`` must be gate-for-gate identical to ``c`` for every
    program.  The returned section gates CI the same way the routing/IR
    bit-identity checks do.
    """
    from repro.qasm import dumps, loads
    from repro.workloads.suite import benchmark_suite

    cases = benchmark_suite(scale=scale)
    circuits = [case.circuit for case in cases]
    total_gates = sum(len(circuit) for circuit in circuits)

    dump_best, dump_mean, texts = _time(lambda: [dumps(c) for c in circuits], repeats)
    load_best, load_mean, parsed = _time(lambda: [loads(t) for t in texts], repeats)

    mismatches = [
        case.name
        for case, original, back in zip(cases, circuits, parsed)
        if not circuits_bit_identical(original, back)
    ]
    records = [
        PerfRecord(
            name=f"qasm.dump.{scale}",
            kind="qasm",
            repeats=repeats,
            wall_seconds=dump_best,
            mean_seconds=dump_mean,
            gates=total_gates,
            extra={"scale": scale, "cases": len(cases), "direction": "dump"},
        ),
        PerfRecord(
            name=f"qasm.load.{scale}",
            kind="qasm",
            repeats=repeats,
            wall_seconds=load_best,
            mean_seconds=load_mean,
            gates=total_gates,
            extra={"scale": scale, "cases": len(cases), "direction": "load"},
        ),
    ]
    section = {
        "scale": scale,
        "cases": len(cases),
        "gates": total_gates,
        "dump_seconds": dump_best,
        "load_seconds": load_best,
        "dump_gates_per_second": total_gates / dump_best if dump_best > 0 else float("inf"),
        "load_gates_per_second": total_gates / load_best if load_best > 0 else float("inf"),
        "bit_identical": not mismatches,
        "mismatches": mismatches,
    }
    return records, section


def bench_serve(
    scale: str = "tiny",
    compiler: str = "reqisc-eff",
    seed: int = 0,
    clients: int = 4,
    workers: int = 2,
    requests_per_circuit: int = 3,
    offered_rate: float = 50.0,
) -> Tuple[List[PerfRecord], Dict[str, Any]]:
    """Drive a live ``repro serve`` daemon with an open-loop load generator.

    Starts a real :class:`~repro.service.server.CompileServer` on a private
    Unix socket and submits every suite program at ``scale``
    ``requests_per_circuit`` times, round-robin interleaved so identical
    submissions hit the daemon's dedup layers concurrently.  The generator
    is open-loop: request arrival times are fixed up front at
    ``offered_rate`` jobs/sec, and each latency is measured from the
    *scheduled* arrival — when the daemon falls behind the offered load,
    the queueing delay counts against it instead of silently slowing the
    generator down (closed-loop coordination would hide overload).
    Concurrency is bounded by ``clients`` threads, one socket each.

    The returned section carries sustained throughput (completed jobs/sec),
    p50/p99 latency, the daemon's dedup counters, and the bit-identity
    verdict: every compiled program the daemon returned must match a
    sequential in-process ``compile()`` with the same compiler and seed,
    byte for byte.
    """
    import os
    import shutil
    import tempfile
    import threading

    from repro.experiments.common import build_compilers
    from repro.qasm import dumps
    from repro.service.server import CompileServer, ServeClient, ServeConfig
    from repro.workloads.suite import benchmark_suite

    cases = benchmark_suite(scale=scale)
    programs = [(case.name, dumps(case.circuit)) for case in cases]
    schedule = [programs[i % len(programs)] for i in range(len(programs) * requests_per_circuit)]
    input_gates = sum(len(case.circuit) for case in cases) * requests_per_circuit

    tmp = tempfile.mkdtemp(prefix="repro-serve-bench-")
    address = os.path.join(tmp, "bench.sock")
    config = ServeConfig(
        address=address,
        workers=workers,
        max_pending=max(256, len(schedule)),
        job_timeout=120.0,
        cache_dir=None,
    )
    latencies: List[float] = []
    responses: Dict[str, str] = {}
    errors: List[str] = []
    lock = threading.Lock()

    try:
        with CompileServer(config):
            epoch = time.perf_counter() + 0.05
            arrivals = [epoch + index / offered_rate for index in range(len(schedule))]
            cursor = iter(range(len(schedule)))

            def run_client() -> None:
                client = ServeClient(address, timeout=300.0)
                try:
                    while True:
                        with lock:
                            index = next(cursor, None)
                        if index is None:
                            return
                        name, qasm = schedule[index]
                        delay = arrivals[index] - time.perf_counter()
                        if delay > 0:
                            time.sleep(delay)
                        try:
                            response = client.compile(qasm, compiler=compiler, seed=seed)
                        except Exception as exc:  # noqa: BLE001 — report, keep loading
                            with lock:
                                errors.append(f"{name}: {exc}")
                            continue
                        latency = time.perf_counter() - arrivals[index]
                        with lock:
                            latencies.append(latency)
                            responses.setdefault(name, response["qasm"])
                finally:
                    client.close()

            threads = [
                threading.Thread(target=run_client, name=f"serve-load-{i}")
                for i in range(clients)
            ]
            wall_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall_start

            probe = ServeClient(address)
            try:
                snapshot = probe.stats()
            finally:
                probe.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    # Determinism gate: the daemon's output for every program must be byte-
    # identical to a plain sequential compile with the same compiler/seed.
    registry = build_compilers([compiler], seed=seed)
    mismatches: List[str] = []
    for case in cases:
        expected = dumps(registry[compiler].compile(case.circuit).circuit)
        if responses.get(case.name) != expected:
            mismatches.append(case.name)

    completed = len(latencies)
    latency_ms = sorted(1000.0 * value for value in latencies)
    percentile = lambda q: float(np.percentile(latency_ms, q)) if latency_ms else float("nan")  # noqa: E731
    server_stats = snapshot.get("server", {})
    record = PerfRecord(
        name=f"serve.{compiler}.{scale}",
        kind="serve",
        repeats=1,
        wall_seconds=wall,
        mean_seconds=wall,
        gates=input_gates,
        extra={
            "compiler": compiler,
            "scale": scale,
            "requests": len(schedule),
            "completed": completed,
            "clients": clients,
            "workers": workers,
            "throughput_jobs_per_second": completed / wall if wall > 0 else float("inf"),
            "latency_p50_ms": percentile(50),
            "latency_p99_ms": percentile(99),
        },
    )
    section = {
        "scale": scale,
        "compiler": compiler,
        "cases": len(cases),
        "requests": len(schedule),
        "completed": completed,
        "clients": clients,
        "workers": workers,
        "offered_rate_jobs_per_second": offered_rate,
        "throughput_jobs_per_second": completed / wall if wall > 0 else float("inf"),
        "latency_p50_ms": percentile(50),
        "latency_p99_ms": percentile(99),
        "dedup": {
            "compiles_started": server_stats.get("compiles_started", 0),
            "dedup_inflight": server_stats.get("dedup_inflight", 0),
            "dedup_result_cache": server_stats.get("dedup_result_cache", 0),
        },
        "errors": errors,
        "bit_identical": not mismatches and not errors,
        "mismatches": mismatches,
    }
    return [record], section


def bench_chaos(
    scale: str = "tiny",
    compiler: str = "reqisc-eff",
    seed: int = 42,
    faults: int = 50,
    clients: int = 4,
    workers: int = 2,
    requests_per_circuit: int = 3,
    job_timeout: float = 60.0,
) -> Tuple[List[PerfRecord], Dict[str, Any]]:
    """Soak a live daemon under a seeded :class:`~repro.resilience.FaultPlan`.

    A thin perf-harness wrapper over :func:`repro.resilience.run_chaos`:
    ``faults`` faults are spread round-robin across all four injection
    layers (worker crashes/hangs, clock-skewed deadlines, socket
    resets/torn frames/delays, cache bit-flips/truncations), resilient
    clients drive every suite program through the daemon, and a cold
    cache-reopen plus :meth:`~repro.service.cache.SynthesisCache.scrub`
    closes the loop.  The section's ``ok`` is the verdict CI hard-fails
    on: every completed job bit-identical to its fault-free compile, no
    unrecovered job, no hung client.
    """
    from repro.resilience import FaultPlan, run_chaos

    plan = FaultPlan.balanced(seed=seed, faults=faults)
    report = run_chaos(
        plan,
        scale=scale,
        compiler=compiler,
        seed=0,
        clients=clients,
        workers=workers,
        requests_per_circuit=requests_per_circuit,
        job_timeout=job_timeout,
    )
    record = PerfRecord(
        name=f"chaos.{compiler}.{scale}",
        kind="chaos",
        repeats=1,
        wall_seconds=report["wall_seconds"],
        mean_seconds=report["wall_seconds"],
        gates=report["jobs"],
        extra={
            "compiler": compiler,
            "scale": scale,
            "jobs": report["jobs"],
            "completed": report["completed"],
            "faults_scheduled": report["faults_scheduled"],
            "faults_fired_total": report["faults_fired_total"],
            "retries": report["resilience"]["retries"],
            "ok": report["ok"],
        },
    )
    section = {
        "scale": scale,
        "compiler": compiler,
        "jobs": report["jobs"],
        "completed": report["completed"],
        "clients": clients,
        "workers": workers,
        "plan_summary": report["plan_summary"],
        "faults_scheduled": report["faults_scheduled"],
        "faults_fired": report["faults_fired"],
        "faults_fired_total": report["faults_fired_total"],
        "resilience": report["resilience"],
        "scrub": report["scrub"],
        "unrecovered": report["unrecovered"],
        "hung_clients": report["hung_clients"],
        "ok": report["ok"],
        "bit_identical": report["bit_identical"],
        "mismatches": report["mismatches"],
    }
    return [record], section


def _edited_variant(base: QuantumCircuit, num_edits: int, edit_seed: int) -> QuantumCircuit:
    """Replace ``num_edits`` gates of ``base`` at deterministic positions.

    One-qubit gates are replaced by fresh random ``u3`` rotations on the
    same wire; two-qubit gates by a direction-flipped CNOT — small local
    edits that leave the rest of the program untouched, the edit-recompile
    workload of ``docs/incremental.md``.
    """
    rng = np.random.default_rng(edit_seed)
    instructions = list(base)
    positions = {int(p) for p in rng.choice(len(instructions), size=num_edits, replace=False)}
    edited = QuantumCircuit(base.num_qubits, f"{base.name}-edit{edit_seed}")
    for index, instruction in enumerate(instructions):
        if index not in positions:
            edited.append(instruction.gate, instruction.qubits)
        elif instruction.num_qubits == 1:
            theta, phi, lam = rng.uniform(0.0, 2.0 * np.pi, 3)
            edited.u3(float(theta), float(phi), float(lam), instruction.qubits[0])
        else:
            a, b = instruction.qubits
            edited.cx(b, a)
    return edited


def bench_incr(
    num_qubits: int = 24,
    num_gates: int = 4000,
    num_edits: int = 10,
    seed: int = 42,
    repeats: int = 3,
    compiler: str = "reqisc-eff",
    target: Optional[str] = "xy-line",
) -> Tuple[List[PerfRecord], Dict[str, Any]]:
    """Edit-recompile via the pass-memo store vs compiling from scratch.

    Warms a memo store by compiling the base program once with
    ``memo=True``, then measures ``repeats`` *distinct* ``num_edits``-gate
    edits of it (distinct so an edited program can never answer from the
    whole-pass memo of a previous repeat), each compiled both from scratch
    and incrementally with ``compile(edited, previous=result)``.  Every
    incremental output is asserted bit-identical to its from-scratch twin —
    the incremental-recompilation correctness contract.
    """
    from repro.target.api import compile as target_compile
    from repro.target.target import resolve_target

    base = random_two_qubit_circuit(num_qubits, num_gates, seed=seed)
    resolved = resolve_target(target, num_qubits=num_qubits)
    edits = [
        _edited_variant(base, num_edits, edit_seed=seed * 1000 + index)
        for index in range(max(1, repeats))
    ]

    warm_start = time.perf_counter()
    previous = target_compile(base, target=resolved, spec=compiler, memo=True)
    warm_seconds = time.perf_counter() - warm_start

    mismatches: List[str] = []
    scratch_times: List[float] = []
    incremental_times: List[float] = []
    memo_hits = memo_misses = 0
    for edited in edits:
        start = time.perf_counter()
        scratch = target_compile(edited, target=resolved, spec=compiler)
        scratch_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        incremental = target_compile(edited, previous=previous)
        incremental_times.append(time.perf_counter() - start)
        stats = incremental.memo_stats
        memo_hits += stats.pass_hits + stats.region_hits
        memo_misses += stats.pass_misses + stats.region_misses
        if not circuits_bit_identical(scratch.circuit, incremental.circuit):
            mismatches.append(edited.name)

    scratch_mean = sum(scratch_times) / len(scratch_times)
    incremental_mean = sum(incremental_times) / len(incremental_times)
    section = {
        "compiler": compiler,
        "target": resolved.name,
        "num_qubits": num_qubits,
        "num_gates": num_gates,
        "num_edits": num_edits,
        "edits_measured": len(edits),
        "warm_compile_seconds": warm_seconds,
        "from_scratch_seconds": scratch_mean,
        "incremental_seconds": incremental_mean,
        "speedup": speedup_ratio(scratch_mean, incremental_mean),
        "memo_hits": memo_hits,
        "memo_misses": memo_misses,
        "bit_identical": not mismatches,
        "mismatches": mismatches,
    }
    records = [
        PerfRecord(
            name=f"incr.scratch.{num_qubits}q{num_gates}g",
            kind="incr",
            repeats=len(edits),
            wall_seconds=min(scratch_times),
            mean_seconds=scratch_mean,
            gates=num_gates,
            extra={"compiler": compiler, "num_edits": num_edits},
        ),
        PerfRecord(
            name=f"incr.recompile.{num_qubits}q{num_gates}g",
            kind="incr",
            repeats=len(edits),
            wall_seconds=min(incremental_times),
            mean_seconds=incremental_mean,
            gates=num_gates,
            extra={"compiler": compiler, "num_edits": num_edits},
        ),
    ]
    return records, section


def bench_synthesize(count: int = 64, seed: int = 7, repeats: int = 3) -> List[PerfRecord]:
    """KAK-decompose a batch of Haar-random SU(4) matrices."""
    from repro.linalg.random import haar_random_su4
    from repro.linalg.weyl import kak_decompose

    rng = np.random.default_rng(seed)
    unitaries = [haar_random_su4(rng) for _ in range(count)]

    def decompose_all():
        return [kak_decompose(u) for u in unitaries]

    best, mean, _ = _time(decompose_all, repeats)
    return [
        PerfRecord(
            name=f"synthesize.kak.su4x{count}",
            kind="synthesize",
            repeats=repeats,
            wall_seconds=best,
            mean_seconds=mean,
            gates=count,
            extra={"unitaries": count},
        )
    ]


def bench_synth_batch(
    count: int = 192,
    seed: int = 13,
    repeats: int = 3,
    apply_qubits: int = 4,
    apply_ops: int = 96,
) -> Tuple[List[PerfRecord], Dict[str, Any]]:
    """The ``synth.batch`` family: batched kernel layer vs one-at-a-time.

    Three measurements over deterministic workloads, each paired with its
    correctness contract:

    * **Batched KAK** — ``count`` SU(4) matrices (with exact-bytes duplicates
      at the rate fused blocks recur in real programs) decomposed by
      :func:`repro.kernels.kak_decompose_batch` vs a scalar
      ``kak_decompose`` loop.  Every coordinate/local-factor/phase must agree
      within 1e-12, and the batch must be *composition independent*: splitting
      the same inputs across two smaller batches must reproduce the full
      batch's results bit for bit (the invariant that lets the finalize and
      consolidation passes group memo misses freely).
    * **Interning** — the collector's exact-bytes dedup counters
      (:func:`repro.kernels.batch_stats`), reported as ``interned_fraction``.
    * **apply_gate_sequence** — the unitary-accumulation kernel vs a
      per-gate ``apply_gate`` fold, which must be bitwise-exact.
    """
    from repro.kernels import batch_stats, kak_decompose_batch, reset_batch_stats
    from repro.linalg.random import haar_random_su4
    from repro.linalg.su2 import u3_matrix
    from repro.linalg.weyl import kak_decompose
    from repro.simulators.statevector import apply_gate, apply_gate_sequence

    rng = np.random.default_rng(seed)
    num_unique = max(1, (3 * count) // 4)
    base = [haar_random_su4(rng) for _ in range(num_unique)]
    unitaries = list(base)
    while len(unitaries) < count:
        unitaries.append(base[len(unitaries) % num_unique])

    scalar_best, scalar_mean, scalar_results = _time(
        lambda: [kak_decompose(u) for u in unitaries], repeats
    )
    reset_batch_stats()
    batch_best, batch_mean, batch_results = _time(
        lambda: kak_decompose_batch(unitaries), repeats
    )
    stats = batch_stats()
    interned_fraction = stats["interned"] / stats["inputs"] if stats["inputs"] else 0.0

    def _max_delta(a, b) -> float:
        return max(
            abs(a.global_phase - b.global_phase),
            abs(a.x - b.x),
            abs(a.y - b.y),
            abs(a.z - b.z),
            float(np.max(np.abs(a.l1 - b.l1))),
            float(np.max(np.abs(a.l2 - b.l2))),
            float(np.max(np.abs(a.r1 - b.r1))),
            float(np.max(np.abs(a.r2 - b.r2))),
        )

    def _bit_identical(a, b) -> bool:
        return (
            a.global_phase == b.global_phase
            and (a.x, a.y, a.z) == (b.x, b.y, b.z)
            and np.array_equal(a.l1, b.l1)
            and np.array_equal(a.l2, b.l2)
            and np.array_equal(a.r1, b.r1)
            and np.array_equal(a.r2, b.r2)
        )

    kak_tolerance = 1e-12
    kak_max_delta = max(
        _max_delta(a, b) for a, b in zip(scalar_results, batch_results)
    )
    half = len(unitaries) // 2
    split_results = kak_decompose_batch(unitaries[:half]) + kak_decompose_batch(
        unitaries[half:]
    )
    composition_independent = all(
        _bit_identical(a, b) for a, b in zip(batch_results, split_results)
    )

    # The unitary-accumulation kernel on the hierarchical/approximate shape.
    operations: List[Tuple[np.ndarray, Tuple[int, ...]]] = []
    for index in range(apply_ops):
        if index % 3 == 0:
            theta, phi, lam = rng.uniform(0.0, 2.0 * np.pi, 3)
            operations.append(
                (u3_matrix(float(theta), float(phi), float(lam)),
                 (int(rng.integers(apply_qubits)),))
            )
        else:
            a, b = rng.choice(apply_qubits, size=2, replace=False)
            operations.append((haar_random_su4(rng), (int(a), int(b))))
    dim = 2**apply_qubits

    def apply_loop() -> np.ndarray:
        state = np.eye(dim, dtype=complex)
        for matrix, qubits in operations:
            state = apply_gate(state, matrix, qubits, apply_qubits)
        return state

    loop_best, loop_mean, loop_result = _time(apply_loop, repeats)
    seq_best, seq_mean, seq_result = _time(
        lambda: apply_gate_sequence(np.eye(dim, dtype=complex), operations, apply_qubits),
        repeats,
    )
    apply_exact = bool(np.array_equal(loop_result, seq_result))

    mismatches: List[str] = []
    if kak_max_delta > kak_tolerance:
        mismatches.append(f"kak: scalar-vs-batch delta {kak_max_delta:.3e} > {kak_tolerance}")
    if not composition_independent:
        mismatches.append("kak: batch results depend on batch composition")
    if not apply_exact:
        mismatches.append("apply_gate_sequence: not bitwise-identical to the per-gate fold")

    records = [
        PerfRecord(
            name=f"synth.batch.kak.su4x{count}",
            kind="synth_batch",
            repeats=repeats,
            wall_seconds=batch_best,
            mean_seconds=batch_mean,
            gates=count,
            extra={
                "implementation": "batched",
                "unique": stats["unique"] // max(1, stats["batches"]),
                "interned_fraction": interned_fraction,
            },
        ),
        PerfRecord(
            name=f"synth.batch.kak.su4x{count}.scalar",
            kind="synth_batch",
            repeats=repeats,
            wall_seconds=scalar_best,
            mean_seconds=scalar_mean,
            gates=count,
            extra={"implementation": "one-at-a-time"},
        ),
        PerfRecord(
            name=f"synth.batch.apply.seq.{apply_qubits}q{apply_ops}ops",
            kind="synth_batch",
            repeats=repeats,
            wall_seconds=seq_best,
            mean_seconds=seq_mean,
            gates=apply_ops,
            extra={"implementation": "sequence-kernel", "num_qubits": apply_qubits},
        ),
        PerfRecord(
            name=f"synth.batch.apply.loop.{apply_qubits}q{apply_ops}ops",
            kind="synth_batch",
            repeats=repeats,
            wall_seconds=loop_best,
            mean_seconds=loop_mean,
            gates=apply_ops,
            extra={"implementation": "per-gate-loop", "num_qubits": apply_qubits},
        ),
    ]
    section = {
        "count": count,
        "unique": stats["unique"] // max(1, stats["batches"]),
        "interned": stats["interned"] // max(1, stats["batches"]),
        "interned_fraction": interned_fraction,
        "scalar_seconds": scalar_best,
        "batch_seconds": batch_best,
        "speedup": speedup_ratio(scalar_best, batch_best),
        "kak_max_delta": kak_max_delta,
        "kak_tolerance": kak_tolerance,
        "apply_loop_seconds": loop_best,
        "apply_seq_seconds": seq_best,
        "apply_speedup": speedup_ratio(loop_best, seq_best),
        "composition_independent": composition_independent,
        "bit_identical": not mismatches,
        "mismatches": mismatches,
    }
    return records, section


def bench_simulate(num_qubits: int = 10, seed: int = 11, repeats: int = 3) -> List[PerfRecord]:
    """Statevector-simulate a QFT plus a random layer (matrix-cache hot)."""
    from repro.workloads.algorithms import qft_circuit

    circuit = qft_circuit(num_qubits)
    extra_layer = random_two_qubit_circuit(num_qubits, 4 * num_qubits, seed=seed)
    circuit.compose(extra_layer)

    best, mean, _ = _time(circuit.statevector, repeats)
    return [
        PerfRecord(
            name=f"simulate.statevector.qft{num_qubits}",
            kind="simulate",
            repeats=repeats,
            wall_seconds=best,
            mean_seconds=mean,
            gates=len(circuit),
            extra={"num_qubits": num_qubits},
        )
    ]


def bench_fidelity(
    scale: str = "tiny",
    seed: int = 0,
    repeats: int = 1,
) -> Tuple[List[PerfRecord], Dict[str, Any]]:
    """Noise-aware (portfolio) vs distance-only routing over the suite.

    Every suite program is lowered to the CNOT ISA and routed on the three
    calibrated presets (``xy-line-cal`` / ``xy-grid-cal`` / ``heavy-hex-cal``,
    seeded heterogeneous devices) two ways: distance-only, and the
    :func:`~repro.compiler.routing.noise.compare_routing_strategies`
    portfolio.  The section reports per-row estimated fidelities and the
    improvement ratio — which is >= 1 by construction, so ``regressions``
    being non-empty is a hard harness bug, and CI gates on it.

    The section's ``bit_identical`` verdict is the exact-uniform-reduction
    property: re-routing every row with a *uniform* calibration must
    reproduce the distance-only output bit for bit (see
    ``docs/noise.md``).
    """
    from repro.circuits.depgraph import DependencyGraph
    from repro.compiler.routing.noise import build_noise_model, compare_routing_strategies
    from repro.compiler.routing.sabre import SabreRouter
    from repro.experiments.common import reference_cnot_circuit
    from repro.microarch.calibration import CalibrationData
    from repro.target.target import resolve_target
    from repro.workloads.suite import benchmark_suite

    presets = ("xy-line-cal", "xy-grid-cal", "heavy-hex-cal")
    cases = benchmark_suite(scale=scale)
    prepared = []
    for case in cases:
        lowered = reference_cnot_circuit(case.circuit)
        graph = DependencyGraph.from_circuit(lowered)
        for preset in presets:
            target = resolve_target(preset, lowered.num_qubits)
            target.coupling_map.distance_matrix()  # shared arrays, off the clock
            target.calibration.routing_model(target.coupling_map)
            prepared.append((case, preset, target, graph, lowered))

    def route_distance_all():
        return [
            SabreRouter(target.coupling_map, mirroring=True, seed=seed).run_graph(
                graph, name=case.name
            )
            for case, _, target, graph, _ in prepared
        ]

    def route_portfolio_all():
        return [
            compare_routing_strategies(graph, target, seed=seed, name=case.name)
            for case, _, target, graph, _ in prepared
        ]

    distance_best, distance_mean, distance_results = _time(route_distance_all, repeats)
    portfolio_best, portfolio_mean, comparisons = _time(route_portfolio_all, repeats)

    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    mismatches: List[str] = []
    wins = ties = 0
    log_improvements: List[float] = []
    for (case, preset, target, graph, lowered), comparison in zip(prepared, comparisons):
        key = f"{case.name}@{preset}"
        improvement = comparison.improvement
        if improvement > 1.0:
            wins += 1
        elif improvement == 1.0:
            ties += 1
        else:
            regressions.append(key)
        log_improvements.append(
            max(comparison.noise_log_fidelity, comparison.distance_log_fidelity)
            - comparison.distance_log_fidelity
        )
        rows.append(
            {
                "benchmark": case.name,
                "preset": preset,
                "qubits": target.coupling_map.num_qubits,
                "input_gates": len(lowered),
                "distance_log_fidelity": comparison.distance_log_fidelity,
                "noise_log_fidelity": comparison.noise_log_fidelity,
                "distance_fidelity": float(np.exp(comparison.distance_log_fidelity)),
                "noise_fidelity": float(np.exp(comparison.noise_log_fidelity)),
                "improvement": improvement,
                "strategy": comparison.strategy,
                "distance_swaps": comparison.distance_result.inserted_swaps,
                "noise_swaps": comparison.noise_result.inserted_swaps,
            }
        )
        # Exact uniform reduction: a flat calibration must route bit-
        # identically to the distance-only router (same seed, same params).
        uniform_model = build_noise_model(
            target.coupling_map, CalibrationData.uniform(target.coupling_map)
        )
        uniform_result = SabreRouter(
            target.coupling_map, noise_model=uniform_model, mirroring=True, seed=seed
        ).run_graph(graph, name=case.name)
        baseline = comparison.distance_result
        if not (
            circuits_bit_identical(uniform_result.circuit, baseline.circuit)
            and uniform_result.final_layout == baseline.final_layout
            and uniform_result.inserted_swaps == baseline.inserted_swaps
            and uniform_result.absorbed_swaps == baseline.absorbed_swaps
        ):
            mismatches.append(key)

    records = [
        PerfRecord(
            name=f"fidelity.route.distance.{scale}",
            kind="fidelity",
            repeats=repeats,
            wall_seconds=distance_best,
            mean_seconds=distance_mean,
            gates=sum(len(result.circuit) for result in distance_results),
            extra={"scale": scale, "presets": list(presets), "cases": len(cases)},
        ),
        PerfRecord(
            name=f"fidelity.route.portfolio.{scale}",
            kind="fidelity",
            repeats=repeats,
            wall_seconds=portfolio_best,
            mean_seconds=portfolio_mean,
            gates=sum(len(c.chosen.circuit) for c in comparisons),
            extra={"scale": scale, "presets": list(presets), "cases": len(cases)},
        ),
    ]
    section = {
        "scale": scale,
        "presets": list(presets),
        "cases": len(cases),
        "rows": rows,
        "wins": wins,
        "ties": ties,
        "regressions": regressions,
        "min_improvement": float(np.exp(min(log_improvements))) if log_improvements else 1.0,
        "geomean_improvement": float(np.exp(np.mean(log_improvements)))
        if log_improvements
        else 1.0,
        "distance_seconds": distance_best,
        "portfolio_seconds": portfolio_best,
        "bit_identical": not mismatches,
        "mismatches": mismatches,
    }
    return records, section


def routing_equivalence(scale: str = "tiny", mirroring: bool = True) -> Dict[str, Any]:
    """Fast-path vs reference routing over the full workload suite.

    Each suite program is lowered to the CNOT ISA (1Q/2Q gates only) and
    routed on its near-square grid with both implementations; any gate-level
    difference is reported.
    """
    from repro.compiler.routing.coupling_map import CouplingMap
    from repro.compiler.routing.sabre import SabreRouter
    from repro.compiler.routing.sabre_reference import ReferenceSabreRouter
    from repro.experiments.common import reference_cnot_circuit
    from repro.workloads.suite import benchmark_suite

    mismatches: List[str] = []
    cases = benchmark_suite(scale=scale)
    for case in cases:
        lowered = reference_cnot_circuit(case.circuit)
        coupling_map = CouplingMap.grid_for(lowered.num_qubits)
        fast = SabreRouter(coupling_map, mirroring=mirroring).run(lowered)
        reference = ReferenceSabreRouter(coupling_map, mirroring=mirroring).run(lowered)
        if not (
            circuits_bit_identical(fast.circuit, reference.circuit)
            and fast.final_layout == reference.final_layout
            and fast.inserted_swaps == reference.inserted_swaps
            and fast.absorbed_swaps == reference.absorbed_swaps
        ):
            mismatches.append(case.name)
    return {
        "scale": scale,
        "cases": len(cases),
        "bit_identical": not mismatches,
        "mismatches": mismatches,
    }


# ---------------------------------------------------------------------------
# Full harness.
# ---------------------------------------------------------------------------


def run_perf(
    quick: bool = False,
    seed: int = 42,
    repeats: Optional[int] = None,
    kinds: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Run the microbenchmark suite and return the schema-stable report.

    ``quick`` trims repeats and workload scale for CI smoke runs; the
    acceptance-scale routing benchmark (>=64 qubits, >=2000 gates, anchored
    baseline) runs in both modes.  ``kinds`` restricts to a subset of
    ``{"compile", "route", "incr", "ir", "qasm", "serve", "chaos",
    "synthesize", "synth_batch", "simulate", "fidelity"}``.
    """
    from repro.gates.gate import matrix_cache_stats, reset_matrix_cache_stats
    from repro.kernels import backend_info

    all_kinds = {
        "compile", "route", "incr", "ir", "qasm", "serve", "chaos",
        "synthesize", "synth_batch", "simulate", "fidelity",
    }
    selected = set(kinds) if kinds else set(all_kinds)
    unknown = selected - all_kinds
    if unknown:
        raise ValueError(f"unknown benchmark kinds: {sorted(unknown)}")
    repeats = repeats if repeats is not None else (1 if quick else 3)
    reset_matrix_cache_stats()

    records: List[PerfRecord] = []
    routing: Optional[Dict[str, Any]] = None
    synthesis_cache: Optional[Dict[str, Any]] = None
    equivalence: Optional[Dict[str, Any]] = None
    ir_section: Optional[Dict[str, Any]] = None
    qasm_section: Optional[Dict[str, Any]] = None
    serve_section: Optional[Dict[str, Any]] = None
    chaos_section: Optional[Dict[str, Any]] = None
    incr_section: Optional[Dict[str, Any]] = None
    synth_batch_section: Optional[Dict[str, Any]] = None
    fidelity_section: Optional[Dict[str, Any]] = None

    if "route" in selected:
        route_records, routing = bench_route(
            num_qubits=64, num_gates=2000, seed=seed, repeats=repeats
        )
        records.extend(route_records)
        equivalence = routing_equivalence(scale="tiny" if quick else "small")
    if "compile" in selected:
        compile_records, synthesis_cache = bench_compile(
            scale="tiny", seed=seed, repeats=repeats if quick else max(2, repeats)
        )
        records.extend(compile_records)
    if "incr" in selected:
        # The acceptance workload is the full-mode one: a 4000-gate program
        # with 10-gate edits.  Quick mode shrinks the program (CI smoke)
        # but keeps the bit-identity assertion at full strength.
        incr_records, incr_section = bench_incr(
            num_qubits=12 if quick else 24,
            num_gates=400 if quick else 4000,
            num_edits=10,
            seed=seed,
            repeats=2 if quick else max(3, repeats),
        )
        records.extend(incr_records)
    if "ir" in selected:
        # Best-of-5 in full mode: the marshalling delta is only a few
        # percent of a compile, so the minimum needs more samples to settle.
        ir_records, ir_section = bench_ir(
            scale="tiny", seed=seed, repeats=1 if quick else max(5, repeats)
        )
        records.extend(ir_records)
    if "qasm" in selected:
        # Quick mode parses the tiny suite; full mode uses medium so the
        # throughput numbers come from thousands of gates, not dozens.
        qasm_records, qasm_section = bench_qasm(
            scale="tiny" if quick else "medium", repeats=repeats
        )
        records.extend(qasm_records)
    if "serve" in selected:
        # Quick mode keeps the load run under a couple of seconds; full mode
        # offers more repeats per circuit so the dedup layers carry real load.
        serve_records, serve_section = bench_serve(
            scale="tiny" if quick else "small",
            seed=0,
            clients=4 if quick else 6,
            requests_per_circuit=2 if quick else 4,
            offered_rate=40.0 if quick else 60.0,
        )
        records.extend(serve_records)
    if "chaos" in selected:
        # Quick mode keeps the soak to a handful of faults over one pass of
        # the tiny suite; full mode schedules the acceptance-scale 50-fault
        # plan.  Both modes gate on the same ok/bit-identity verdict.
        chaos_records, chaos_section = bench_chaos(
            scale="tiny",
            seed=seed,
            faults=10 if quick else 50,
            requests_per_circuit=1 if quick else 3,
        )
        records.extend(chaos_records)
    if "synthesize" in selected:
        records.extend(bench_synthesize(count=16 if quick else 64, repeats=repeats))
    if "synth_batch" in selected:
        # The acceptance workload is the full-mode one (>=3x batched-KAK
        # throughput); quick mode shrinks the stack but keeps every
        # correctness contract (1e-12 agreement, composition independence,
        # bitwise apply_gate_sequence) at full strength.
        synth_batch_records, synth_batch_section = bench_synth_batch(
            count=48 if quick else 192, seed=13, repeats=repeats
        )
        records.extend(synth_batch_records)
    if "simulate" in selected:
        records.extend(bench_simulate(num_qubits=8 if quick else 10, repeats=repeats))
    if "fidelity" in selected:
        # The improvement >= 1 guarantee and the exact-uniform-reduction
        # bit-identity check hold at full strength in both modes; quick mode
        # only trims the suite scale and repeats (CI smoke).
        fidelity_records, fidelity_section = bench_fidelity(
            scale="tiny" if quick else "small",
            seed=0,
            repeats=1 if quick else 2,
        )
        records.extend(fidelity_records)

    return {
        "schema": SCHEMA_VERSION,
        "created_unix": time.time(),
        "quick": quick,
        "seed": seed,
        "host": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "benchmarks": [record.as_dict() for record in records],
        "routing": routing,
        "equivalence": equivalence,
        "ir": ir_section,
        "incr": incr_section,
        "qasm": qasm_section,
        "serve": serve_section,
        "chaos": chaos_section,
        "synth_batch": synth_batch_section,
        "fidelity": fidelity_section,
        "kernels": backend_info(),
        "cache": {
            "synthesis": synthesis_cache,
            "gate_matrix": matrix_cache_stats(),
        },
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a report as pretty-printed JSON (``BENCH_*.json`` convention)."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
