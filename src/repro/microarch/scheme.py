"""The genAshN gate scheme — Algorithm 1 end to end.

:class:`GenAshNScheme` turns a target two-qubit gate (or Weyl coordinate) and
a :class:`~repro.microarch.hamiltonian.CouplingHamiltonian` into a
:class:`PulseProgram`: the time-optimal interaction duration, the simple pulse
parameters ``(Omega1, Omega2, delta)``, the selected micro-op mode (ND / EA+ /
EA-), and the single-qubit corrections ``(A1, A2, B1, B2)`` such that::

    (A1 (x) A2) @ exp(-i tau (H + H1 (x) I + I (x) H2)) @ (B1 (x) B2) == U

up to global phase, where ``H`` is the *physical* coupling Hamiltonian
(lines 33-37 of Algorithm 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np
from scipy.linalg import expm

from repro.linalg.constants import IDENTITY2, PAULI_X, PAULI_Z
from repro.linalg.predicates import unitary_infidelity
from repro.linalg.weyl import (
    boundary_mirror_decomposition,
    canonical_gate,
    canonicalize_coordinates,
    is_near_identity,
    kak_decompose,
    mirror_coordinates,
    weyl_coordinates,
)
from repro.microarch.durations import DurationBreakdown, SubScheme, optimal_duration
from repro.microarch.ea import solve_ea, trial_unitary
from repro.microarch.hamiltonian import CouplingHamiltonian
from repro.microarch.nd import solve_nd

__all__ = ["PulseProgram", "GenAshNScheme"]


@dataclass
class PulseProgram:
    """Pulse-level realization of one SU(4) instruction.

    Attributes mirror the outputs of Algorithm 1: the interaction duration
    ``tau``, drive amplitudes and detuning, the selected subscheme, whether
    the mirrored Weyl representative was synthesized, and the single-qubit
    corrections applied before (``b1, b2``) and after (``a1, a2``) the
    two-qubit interaction.
    """

    target_coordinates: Tuple[float, float, float]
    effective_coordinates: Tuple[float, float, float]
    tau: float
    omega1: float
    omega2: float
    delta: float
    subscheme: SubScheme
    mirrored: bool
    a1: np.ndarray
    a2: np.ndarray
    b1: np.ndarray
    b2: np.ndarray
    coupling: CouplingHamiltonian

    @property
    def drive_amplitudes(self) -> Tuple[float, float]:
        """Physical drive amplitudes ``(A_1, A_2)`` with ``Omega = -(A1 +- A2)/4``.

        Inverting the definition ``Omega_{1,2} = -(A_1 +- A_2)/4`` of
        Section 4.1 gives ``A_1 = -2 (Omega1 + Omega2)`` and
        ``A_2 = -2 (Omega1 - Omega2)``.
        """
        return (-2.0 * (self.omega1 + self.omega2), -2.0 * (self.omega1 - self.omega2))

    def drive_hamiltonians(self) -> Tuple[np.ndarray, np.ndarray]:
        """Canonical-frame drive Hamiltonians ``H''_1``, ``H''_2`` (2x2)."""
        h1 = (self.omega1 + self.omega2) * PAULI_X + self.delta * PAULI_Z
        h2 = (self.omega1 - self.omega2) * PAULI_X + self.delta * PAULI_Z
        return h1, h2

    def physical_drive_hamiltonians(self) -> Tuple[np.ndarray, np.ndarray]:
        """Physical-frame drive Hamiltonians ``H_1``, ``H_2`` (line 35)."""
        h1, h2 = self.drive_hamiltonians()
        coupling = self.coupling
        h1_phys = coupling.u1 @ h1 @ coupling.u1.conj().T - coupling.local_field_1
        h2_phys = coupling.u2 @ h2 @ coupling.u2.conj().T - coupling.local_field_2
        return h1_phys, h2_phys

    def evolution(self) -> np.ndarray:
        """The bare two-qubit evolution under coupling + drives (no corrections)."""
        h1, h2 = self.physical_drive_hamiltonians()
        total = (
            self.coupling.matrix()
            + np.kron(h1, IDENTITY2)
            + np.kron(IDENTITY2, h2)
        )
        return expm(-1j * self.tau * total)

    def realized_unitary(self) -> np.ndarray:
        """Full realized gate including the single-qubit corrections (Eq. (5))."""
        return (
            np.kron(self.a1, self.a2) @ self.evolution() @ np.kron(self.b1, self.b2)
        )

    def infidelity(self, target: np.ndarray) -> float:
        """Infidelity of the realized gate against ``target`` (phase-insensitive)."""
        return unitary_infidelity(self.realized_unitary(), np.asarray(target, dtype=complex))

    @property
    def max_drive_amplitude(self) -> float:
        """``max(|A_1|, |A_2|)`` — the quantity minimized by root selection."""
        a1, a2 = self.drive_amplitudes
        return max(abs(a1), abs(a2))


class GenAshNScheme:
    """Compile SU(4) instructions into pulse programs for a given coupling.

    Parameters
    ----------
    coupling:
        The device coupling Hamiltonian.
    mirror_threshold:
        L1 norm below which a gate counts as "near identity" and is expected
        to be mirrored by the compiler before reaching the scheme.  The
        scheme itself still solves such gates (using the mirrored
        representative internally when that is time optimal).
    """

    def __init__(
        self,
        coupling: CouplingHamiltonian,
        mirror_threshold: float = 0.15,
    ) -> None:
        self.coupling = coupling
        self.mirror_threshold = mirror_threshold

    # ------------------------------------------------------------------
    def duration(self, target: Union[np.ndarray, Sequence[float]]) -> DurationBreakdown:
        """Time-optimal duration breakdown for a gate or coordinate triple."""
        coords = self._coordinates_of(target)
        return optimal_duration(coords, self.coupling)

    def is_near_identity(self, target: Union[np.ndarray, Sequence[float]]) -> bool:
        """True when the target falls in the near-identity region (Section 4.3)."""
        coords = self._coordinates_of(target)
        return is_near_identity(coords, self.mirror_threshold)

    def mirror(self, target: Union[np.ndarray, Sequence[float]]) -> Tuple[float, float, float]:
        """Weyl coordinates of the mirrored (SWAP-composed) gate."""
        coords = self._coordinates_of(target)
        return mirror_coordinates(*coords)

    # ------------------------------------------------------------------
    def compile_gate(self, target: Union[np.ndarray, Sequence[float]]) -> PulseProgram:
        """Run Algorithm 1 for ``target`` (a 4x4 unitary or Weyl coordinates).

        When a coordinate triple is given, the canonical gate ``Can(x, y, z)``
        is used as the concrete target so that single-qubit corrections are
        well defined.
        """
        if isinstance(target, np.ndarray) and target.shape == (4, 4):
            target_matrix = np.asarray(target, dtype=complex)
        else:
            coords = canonicalize_coordinates(*tuple(target))
            target_matrix = canonical_gate(*coords)

        target_kak = kak_decompose(target_matrix)
        coords = target_kak.coordinates

        breakdown = optimal_duration(coords, self.coupling)
        tau = breakdown.duration
        effective = breakdown.effective_coordinates

        omega1, omega2, delta = self._solve_subscheme(
            effective, breakdown.subscheme, tau
        )

        # Canonical-frame evolution and its decomposition (line 34).
        evolution = trial_unitary(
            self.coupling.coefficients, tau, omega1, omega2, delta
        )
        evolution_kak = kak_decompose(evolution)
        wanted = np.array(coords)

        def _mismatch(decomposition) -> float:
            return float(np.max(np.abs(np.array(decomposition.coordinates) - wanted)))

        if _mismatch(evolution_kak) > 1e-5:
            # Near the x = pi/4 boundary the solver may have landed on the
            # mirror representative (pi/2 - x, y, -z); the two describe the
            # same gate class there, so re-express the decomposition.
            mirrored_kak = boundary_mirror_decomposition(evolution_kak)
            if _mismatch(mirrored_kak) < _mismatch(evolution_kak):
                evolution_kak = mirrored_kak
        if _mismatch(evolution_kak) > 1e-5:
            raise RuntimeError(
                "pulse solution does not realize the requested Weyl coordinates: "
                f"wanted {tuple(wanted)}, got {evolution_kak.coordinates}"
            )

        # Single-qubit corrections (lines 36-37), including the frame change
        # of a non-canonical coupling Hamiltonian.
        u1, u2 = self.coupling.u1, self.coupling.u2
        phase = target_kak.global_phase / evolution_kak.global_phase
        a1 = phase * target_kak.l1 @ evolution_kak.l1.conj().T @ u1.conj().T
        a2 = target_kak.l2 @ evolution_kak.l2.conj().T @ u2.conj().T
        b1 = u1 @ evolution_kak.r1.conj().T @ target_kak.r1
        b2 = u2 @ evolution_kak.r2.conj().T @ target_kak.r2

        return PulseProgram(
            target_coordinates=coords,
            effective_coordinates=tuple(float(v) for v in effective),
            tau=tau,
            omega1=float(omega1),
            omega2=float(omega2),
            delta=float(delta),
            subscheme=breakdown.subscheme,
            mirrored=breakdown.mirrored,
            a1=a1,
            a2=a2,
            b1=b1,
            b2=b2,
            coupling=self.coupling,
        )

    # ------------------------------------------------------------------
    def _solve_subscheme(
        self,
        effective_coordinates: Sequence[float],
        subscheme: SubScheme,
        tau: float,
    ) -> Tuple[float, float, float]:
        """Dispatch to the ND or EA solver and verify the result."""
        coords = tuple(effective_coordinates)
        coefficients = self.coupling.coefficients
        if subscheme is SubScheme.ND:
            omega1, omega2, delta = solve_nd(coords, coefficients, tau)
            if self._verifies(coords, tau, omega1, omega2, delta):
                return omega1, omega2, delta
            # The analytic branch of the ND solution can land on the
            # z-reflected representative; swapping the two drive amplitudes
            # selects the other branch.
            if self._verifies(coords, tau, omega2, omega1, delta):
                return omega2, omega1, delta
            # Fall back to the numerical solver on whichever EA sector is
            # closest (guaranteed to exist by Theorem 1 for boundary cases).
            for fallback in (SubScheme.EA_PLUS, SubScheme.EA_MINUS):
                try:
                    return solve_ea(coords, coefficients, tau, fallback)
                except RuntimeError:
                    continue
            raise RuntimeError(
                f"ND solver failed for coordinates {coords} at tau={tau:.4f}"
            )
        return solve_ea(coords, coefficients, tau, subscheme)

    def _verifies(
        self,
        coords: Sequence[float],
        tau: float,
        omega1: float,
        omega2: float,
        delta: float,
        tolerance: float = 1e-6,
    ) -> bool:
        trial = trial_unitary(self.coupling.coefficients, tau, omega1, omega2, delta)
        achieved = weyl_coordinates(trial)
        wanted = canonicalize_coordinates(*coords)
        return bool(np.max(np.abs(np.array(achieved) - np.array(wanted))) < tolerance)

    def _coordinates_of(
        self, target: Union[np.ndarray, Sequence[float]]
    ) -> Tuple[float, float, float]:
        if isinstance(target, np.ndarray) and target.shape == (4, 4):
            return weyl_coordinates(target)
        return canonicalize_coordinates(*tuple(target))
