"""Two-qubit coupling Hamiltonians and their canonical normal form.

The genAshN scheme works in the canonical frame where the coupling reads
``H_c = a XX + b YY + c ZZ`` with ``a >= b >= |c|`` (Eq. (2) / (8) of the
paper).  Arbitrary two-qubit coupling Hamiltonians are brought into this form
by the :meth:`CouplingHamiltonian.from_matrix` constructor, which also
extracts the single-qubit frame change ``(U1, U2)`` and the residual local
fields ``(H'_1, H'_2)`` used by Algorithm 1 (line 2 and lines 35-37).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.linalg.constants import IDENTITY2, PAULIS, PAULI_X, PAULI_Y, PAULI_Z
from repro.linalg.predicates import is_hermitian

__all__ = ["CouplingHamiltonian", "su2_from_rotation", "rotation_from_su2"]


def rotation_from_su2(u: np.ndarray) -> np.ndarray:
    """SO(3) adjoint-action matrix of a single-qubit unitary.

    ``R[k, m]`` is defined by ``u sigma_m u^dag = sum_k R[k, m] sigma_k``.
    """
    rotation = np.zeros((3, 3))
    for m, sigma_m in enumerate(PAULIS):
        conjugated = u @ sigma_m @ u.conj().T
        for k, sigma_k in enumerate(PAULIS):
            rotation[k, m] = 0.5 * np.real(np.trace(sigma_k @ conjugated))
    return rotation


def su2_from_rotation(rotation: np.ndarray) -> np.ndarray:
    """SU(2) element whose adjoint action equals the given SO(3) rotation.

    The result is defined up to a sign; the principal branch is returned.
    """
    rotation = np.asarray(rotation, dtype=float)
    trace = np.clip((np.trace(rotation) - 1.0) / 2.0, -1.0, 1.0)
    angle = math.acos(trace)
    if angle < 1e-12:
        return IDENTITY2.copy()
    if abs(angle - math.pi) < 1e-9:
        # Rotation by pi: the axis is the unit eigenvector with eigenvalue +1.
        symmetric = (rotation + np.eye(3)) / 2.0
        column = int(np.argmax(np.diag(symmetric)))
        axis = symmetric[:, column]
        axis = axis / np.linalg.norm(axis)
    else:
        axis = np.array(
            [
                rotation[2, 1] - rotation[1, 2],
                rotation[0, 2] - rotation[2, 0],
                rotation[1, 0] - rotation[0, 1],
            ]
        ) / (2.0 * math.sin(angle))
    generator = axis[0] * PAULI_X + axis[1] * PAULI_Y + axis[2] * PAULI_Z
    return math.cos(angle / 2.0) * IDENTITY2 - 1j * math.sin(angle / 2.0) * generator


def _complex_to_lists(matrix: np.ndarray) -> list:
    """``[[ [re, im], ... ], ...]`` representation of a complex matrix."""
    return [[[float(entry.real), float(entry.imag)] for entry in row] for row in np.asarray(matrix, dtype=complex)]


def _lists_to_complex(rows: list) -> np.ndarray:
    """Inverse of :func:`_complex_to_lists`."""
    return np.array([[complex(re, im) for re, im in row] for row in rows], dtype=complex)


def _pauli_decomposition(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Decompose a 4x4 Hermitian matrix in the two-qubit Pauli basis.

    Returns ``(coupling, field1, field2, identity_coefficient)`` where
    ``coupling[k, l]`` multiplies ``sigma_k (x) sigma_l`` and ``field1/2`` are
    the single-qubit field vectors.
    """
    paulis = (IDENTITY2,) + PAULIS
    coeffs = np.zeros((4, 4))
    for i, sigma_i in enumerate(paulis):
        for j, sigma_j in enumerate(paulis):
            op = np.kron(sigma_i, sigma_j)
            coeffs[i, j] = 0.25 * np.real(np.trace(op.conj().T @ matrix))
    coupling = coeffs[1:, 1:]
    field1 = coeffs[1:, 0]
    field2 = coeffs[0, 1:]
    return coupling, field1, field2, float(coeffs[0, 0])


@dataclass
class CouplingHamiltonian:
    """A two-qubit coupling Hamiltonian in canonical normal form.

    Attributes
    ----------
    a, b, c:
        Canonical coupling coefficients with ``a >= b >= |c|``.
    u1, u2:
        Single-qubit frame-change unitaries such that the physical coupling is
        ``(u1 (x) u2) (a XX + b YY + c ZZ) (u1 (x) u2)^dag`` plus local fields.
    local_field_1, local_field_2:
        Residual single-qubit Hermitian operators (``H'_1``, ``H'_2``).
    identity_offset:
        Coefficient of the identity term (only contributes a global phase).
    label:
        Human-readable label for reporting.
    """

    a: float
    b: float
    c: float
    u1: np.ndarray = field(default_factory=lambda: IDENTITY2.copy())
    u2: np.ndarray = field(default_factory=lambda: IDENTITY2.copy())
    local_field_1: np.ndarray = field(default_factory=lambda: np.zeros((2, 2), dtype=complex))
    local_field_2: np.ndarray = field(default_factory=lambda: np.zeros((2, 2), dtype=complex))
    identity_offset: float = 0.0
    label: str = "custom"

    def __post_init__(self) -> None:
        if not (self.a >= self.b >= abs(self.c) - 1e-12):
            raise ValueError(
                f"coefficients must satisfy a >= b >= |c|, got ({self.a}, {self.b}, {self.c})"
            )
        if self.a <= 0:
            raise ValueError("the leading coupling coefficient must be positive")

    # -- constructors --------------------------------------------------------
    @classmethod
    def xy(cls, strength: float = 1.0) -> "CouplingHamiltonian":
        """XY coupling ``(g/2)(XX + YY)`` — flux-tunable transmons (default)."""
        return cls(strength / 2.0, strength / 2.0, 0.0, label="xy")

    @classmethod
    def xx(cls, strength: float = 1.0) -> "CouplingHamiltonian":
        """XX coupling ``g XX`` — trapped ions / lab-frame transmons."""
        return cls(strength, 0.0, 0.0, label="xx")

    @classmethod
    def heisenberg(cls, strength: float = 1.0) -> "CouplingHamiltonian":
        """Isotropic exchange coupling ``(g/3)(XX + YY + ZZ)``."""
        return cls(strength / 3.0, strength / 3.0, strength / 3.0, label="heisenberg")

    @classmethod
    def from_coefficients(
        cls, a: float, b: float, c: float, label: str = "custom"
    ) -> "CouplingHamiltonian":
        """Construct directly from canonical coefficients."""
        return cls(float(a), float(b), float(c), label=label)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, label: str = "custom") -> "CouplingHamiltonian":
        """Normal form of an arbitrary two-qubit coupling Hamiltonian.

        Implements ``NormalForm(H)`` of Algorithm 1: the 3x3 coupling tensor is
        brought to diagonal form by an SVD whose orthogonal factors are lifted
        to SU(2) frame changes; local field terms are kept separately.
        """
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (4, 4) or not is_hermitian(matrix, atol=1e-8):
            raise ValueError("coupling Hamiltonian must be a 4x4 Hermitian matrix")
        coupling, field1, field2, offset = _pauli_decomposition(matrix)
        o1, singular, o2t = np.linalg.svd(coupling)
        o2 = o2t.T
        singular = singular.copy()
        if np.linalg.det(o1) < 0:
            o1[:, 2] *= -1
            singular[2] *= -1
        if np.linalg.det(o2) < 0:
            o2[:, 2] *= -1
            singular[2] *= -1
        a, b, c = singular
        u1 = su2_from_rotation(o1)
        u2 = su2_from_rotation(o2)
        local_1 = sum(field1[k] * PAULIS[k] for k in range(3))
        local_2 = sum(field2[k] * PAULIS[k] for k in range(3))
        if isinstance(local_1, int):
            local_1 = np.zeros((2, 2), dtype=complex)
        if isinstance(local_2, int):
            local_2 = np.zeros((2, 2), dtype=complex)
        return cls(
            float(a),
            float(b),
            float(c),
            u1=u1,
            u2=u2,
            local_field_1=np.asarray(local_1, dtype=complex),
            local_field_2=np.asarray(local_2, dtype=complex),
            identity_offset=offset,
            label=label,
        )

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload (used by :class:`repro.target.target.Target`).

        Canonical-frame Hamiltonians serialize as their three coefficients
        plus the label; frame changes and local fields are included only when
        present so the common case stays human-editable.
        """
        payload: dict = {"a": self.a, "b": self.b, "c": self.c, "label": self.label}
        if not self.is_canonical_frame():
            payload["u1"] = _complex_to_lists(self.u1)
            payload["u2"] = _complex_to_lists(self.u2)
            payload["local_field_1"] = _complex_to_lists(self.local_field_1)
            payload["local_field_2"] = _complex_to_lists(self.local_field_2)
        if abs(self.identity_offset) > 1e-15:
            payload["identity_offset"] = self.identity_offset
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CouplingHamiltonian":
        """Inverse of :meth:`to_dict`."""
        kwargs = {}
        for key in ("u1", "u2", "local_field_1", "local_field_2"):
            if key in payload:
                kwargs[key] = _lists_to_complex(payload[key])
        return cls(
            float(payload["a"]),
            float(payload["b"]),
            float(payload["c"]),
            identity_offset=float(payload.get("identity_offset", 0.0)),
            label=str(payload.get("label", "custom")),
            **kwargs,
        )

    # -- views ----------------------------------------------------------------
    @property
    def coefficients(self) -> Tuple[float, float, float]:
        """Canonical coefficients ``(a, b, c)``."""
        return (self.a, self.b, self.c)

    @property
    def strength(self) -> float:
        """Coupling strength ``g = a + b + |c|`` (Eq. (3))."""
        return self.a + self.b + abs(self.c)

    def canonical_matrix(self) -> np.ndarray:
        """The canonical coupling ``a XX + b YY + c ZZ`` as a 4x4 matrix."""
        from repro.linalg.constants import XX, YY, ZZ

        return self.a * XX + self.b * YY + self.c * ZZ

    def matrix(self) -> np.ndarray:
        """The physical coupling Hamiltonian (including frame and local fields)."""
        frame = np.kron(self.u1, self.u2)
        canonical = frame @ self.canonical_matrix() @ frame.conj().T
        locals_ = np.kron(self.local_field_1, IDENTITY2) + np.kron(
            IDENTITY2, self.local_field_2
        )
        return canonical + locals_ + self.identity_offset * np.eye(4)

    def is_canonical_frame(self, atol: float = 1e-9) -> bool:
        """True when no frame change or local fields are present."""
        return (
            np.allclose(self.u1, IDENTITY2, atol=atol)
            and np.allclose(self.u2, IDENTITY2, atol=atol)
            and np.allclose(self.local_field_1, 0.0, atol=atol)
            and np.allclose(self.local_field_2, 0.0, atol=atol)
        )

    def __repr__(self) -> str:
        return (
            f"CouplingHamiltonian({self.label}: a={self.a:.4f}, b={self.b:.4f}, "
            f"c={self.c:.4f})"
        )
