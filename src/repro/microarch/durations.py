"""Time-optimal gate durations under a given coupling Hamiltonian.

Implements the duration model of Algorithm 1 (lines 3-11), which matches the
theoretical lower bound of Hammerer-Vidal-Cirac: for a target with Weyl
coordinates ``(x, y, z)`` and canonical coupling ``(a, b, c)``::

    tau_1 = max( x/a, (x+y+z)/(a+b+c), (x+y-z)/(a+b-c) )
    tau_2 = max( (pi/2-x)/a, (pi/2-x+y-z)/(a+b+c), (pi/2-x+y+z)/(a+b-c) )
    tau   = min(tau_1, tau_2)

When ``tau_2 < tau_1`` the gate is realized through its mirrored coordinates
``(pi/2 - x, y, -z)`` (which are locally equivalent to the target).

The module also provides the per-gate duration models used by the evaluation
(Table 3, Figure 6, and the pulse-duration circuit metric).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.instruction import Instruction
from repro.circuits.metrics import BASELINE_CNOT_DURATION
from repro.gates.gate import UnitaryGate
from repro.linalg.weyl import canonicalize_coordinates, weyl_coordinates
from repro.microarch.hamiltonian import CouplingHamiltonian

__all__ = [
    "SubScheme",
    "DurationBreakdown",
    "optimal_duration",
    "haar_average_duration",
    "su4_duration_model",
    "fixed_basis_duration",
]

_EPS = 1e-12


class SubScheme(enum.Enum):
    """The three micro-op execution modes of the genAshN scheme."""

    ND = "no-detuning"
    EA_PLUS = "equal-amplitude+"
    EA_MINUS = "equal-amplitude-"


def _safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` treating 0/0 as 0 and x/0 as +inf."""
    if denominator > _EPS:
        return numerator / denominator
    if numerator <= _EPS:
        return 0.0
    return math.inf


@dataclass(frozen=True)
class DurationBreakdown:
    """Result of the duration computation for one target gate."""

    duration: float
    mirrored: bool
    effective_coordinates: Tuple[float, float, float]
    subscheme: SubScheme
    tau_components: Tuple[float, float, float]

    @property
    def tau_nd(self) -> float:
        """Duration constraint from the ND sector."""
        return self.tau_components[0]

    @property
    def tau_ea_plus(self) -> float:
        """Duration constraint from the EA+ sector."""
        return self.tau_components[1]

    @property
    def tau_ea_minus(self) -> float:
        """Duration constraint from the EA- sector."""
        return self.tau_components[2]


def optimal_duration(
    coordinates: Sequence[float],
    coupling: CouplingHamiltonian,
) -> DurationBreakdown:
    """Time-optimal duration for a gate with the given Weyl coordinates.

    Returns the duration, whether the mirrored representative
    ``(pi/2 - x, y, -z)`` is used, the effective coordinates actually
    synthesized and the selected subscheme.
    """
    x, y, z = canonicalize_coordinates(*coordinates)
    a, b, c = coupling.coefficients

    tau0 = _safe_ratio(x, a)
    tau_plus = _safe_ratio(x + y - z, a + b - c)
    tau_minus = _safe_ratio(x + y + z, a + b + c)
    tau1 = max(tau0, tau_plus, tau_minus)

    xp = math.pi / 2.0 - x
    tau0_p = _safe_ratio(xp, a)
    tau_plus_p = _safe_ratio(xp + y + z, a + b - c)
    tau_minus_p = _safe_ratio(xp + y - z, a + b + c)
    tau2 = max(tau0_p, tau_plus_p, tau_minus_p)

    if tau2 < tau1:
        mirrored = True
        duration = tau2
        effective = (xp, y, -z)
        components = (tau0_p, tau_plus_p, tau_minus_p)
    else:
        mirrored = False
        duration = tau1
        effective = (x, y, z)
        components = (tau0, tau_plus, tau_minus)

    # The binding constraint selects the subscheme (ties resolved in the
    # order ND, EA+, EA- which matches the partition in Figure 6).
    binding = max(components)
    if abs(components[0] - binding) < 1e-12:
        subscheme = SubScheme.ND
    elif abs(components[1] - binding) < 1e-12:
        subscheme = SubScheme.EA_PLUS
    else:
        subscheme = SubScheme.EA_MINUS
    return DurationBreakdown(
        duration=float(duration),
        mirrored=mirrored,
        effective_coordinates=tuple(float(v) for v in effective),
        subscheme=subscheme,
        tau_components=tuple(float(v) for v in components),
    )


def gate_duration(
    coordinates: Sequence[float], coupling: CouplingHamiltonian
) -> float:
    """Shorthand for ``optimal_duration(...).duration``."""
    return optimal_duration(coordinates, coupling).duration


def haar_average_duration(
    coupling: CouplingHamiltonian,
    num_samples: int = 2000,
    seed: Optional[int] = 0,
) -> float:
    """Average time-optimal duration over Haar-random SU(4) targets.

    This is the quantity reported in Table 3 for the "SU(4)" rows.  Haar
    sampling of the full unitary is equivalent to sampling the Weyl-chamber
    distribution induced by the Haar measure, which is what matters here.
    """
    from repro.linalg.random import haar_random_su4

    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(num_samples):
        target = haar_random_su4(rng)
        coords = weyl_coordinates(target)
        total += optimal_duration(coords, coupling).duration
    return total / num_samples


def fixed_basis_duration(
    basis_coordinates: Sequence[float],
    coupling: CouplingHamiltonian,
    haar_average_count: float,
) -> Tuple[float, float]:
    """Single-gate and Haar-average synthesis durations for a fixed 2Q basis.

    ``haar_average_count`` is the average number of basis-gate applications
    needed to synthesize an arbitrary SU(4) (3 for CNOT/iSWAP, 2.21 for
    SQiSW, 2 for B — Section 1 / Table 3).
    """
    single = optimal_duration(basis_coordinates, coupling).duration
    return single, single * haar_average_count


def su4_duration_model(
    coupling: CouplingHamiltonian,
    one_qubit_duration: float = 0.0,
) -> Callable[[Instruction], float]:
    """Per-instruction duration model for circuits run on the genAshN scheme.

    Every two-qubit gate (``can`` gates, fused unitary blocks and named 2Q
    gates alike) is costed by its time-optimal genAshN duration under
    ``coupling``.  Named gates are cached by name and parameters.
    """
    cache = {}

    def model(instruction: Instruction) -> float:
        gate = instruction.gate
        if gate.num_qubits == 1:
            return one_qubit_duration
        if gate.num_qubits != 2:
            raise ValueError(
                f"duration model expects <=2-qubit gates, got {gate.num_qubits}"
            )
        if gate.name == "can":
            key = ("can", tuple(round(p, 10) for p in gate.params))
        elif isinstance(gate, UnitaryGate):
            key = None
        else:
            key = (gate.name, tuple(round(p, 10) for p in gate.params))
        if key is not None and key in cache:
            return cache[key]
        if gate.name == "can":
            coords = gate.params
        else:
            coords = weyl_coordinates(gate.matrix)
        value = optimal_duration(coords, coupling).duration
        if key is not None:
            cache[key] = value
        return value

    return model
