"""Calibration models (Section 4.5 / 6.5).

Two complementary notions of "calibration" live here:

* **Calibration cost accounting** (:class:`CalibrationModel`): each
  *distinct* SU(4) instruction appearing in a compiled program must be
  calibrated on hardware, and the total calibration cost scales linearly
  with the number of distinct gates — the accounting behind the
  calibration-efficiency experiment (Figure 13) and the ReQISC-Eff /
  ReQISC-Full trade-off discussion.
* **Measured device parameters** (:class:`CalibrationData`): per-edge
  two-qubit error rates and gate durations plus per-qubit 1Q/readout error
  rates, attached to a :class:`~repro.target.target.Target` and consumed by
  the noise-aware routing and scheduling passes (see ``docs/noise.md``).
  ``CalibrationData`` round-trips through JSON, validates itself against a
  coupling map (every device edge must be calibrated, every rate must be a
  probability) and can estimate the end-to-end success probability of a
  routed circuit.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.metrics import count_distinct_two_qubit_gates, count_two_qubit_gates

__all__ = [
    "CalibrationData",
    "CalibrationError",
    "CalibrationModel",
    "CalibrationReport",
    "EdgeCalibration",
    "distinct_su4_report",
]


@dataclass
class CalibrationReport:
    """Calibration accounting for one compiled program."""

    total_two_qubit_gates: int
    distinct_two_qubit_gates: int
    calibration_cost: float

    @property
    def reuse_factor(self) -> float:
        """Average number of uses per calibrated gate."""
        if self.distinct_two_qubit_gates == 0:
            return 0.0
        return self.total_two_qubit_gates / self.distinct_two_qubit_gates


@dataclass
class CalibrationModel:
    """Linear calibration cost model.

    ``per_gate_cost`` is the experimental cost (arbitrary units, e.g. minutes)
    of calibrating one distinct SU(4) instruction; ``baseline_gates`` is the
    number of gates that are always maintained regardless of the program
    (the CNOT-ISA baseline calibrates exactly one 2Q gate per pair).
    """

    per_gate_cost: float = 1.0
    baseline_gates: int = 1

    def report(self, circuit: QuantumCircuit) -> CalibrationReport:
        """Calibration report for a compiled circuit."""
        distinct = count_distinct_two_qubit_gates(circuit)
        total = count_two_qubit_gates(circuit)
        cost = self.per_gate_cost * max(distinct, self.baseline_gates)
        return CalibrationReport(
            total_two_qubit_gates=total,
            distinct_two_qubit_gates=distinct,
            calibration_cost=cost,
        )

    def compare(
        self, circuits: Dict[str, QuantumCircuit]
    ) -> Dict[str, CalibrationReport]:
        """Reports for a set of labelled compiled circuits."""
        return {label: self.report(circuit) for label, circuit in circuits.items()}


# ---------------------------------------------------------------------------
# Measured device parameters (the noise-aware compilation axis).
# ---------------------------------------------------------------------------


class CalibrationError(ValueError):
    """Structured validation error for calibration payloads.

    ``code`` is a stable machine-readable identifier (``"negative-rate"``,
    ``"missing-edge"``, ``"unknown-edge"``, ``"bad-shape"``) and ``detail``
    carries the offending field/edge, so CLI and service layers can report
    *which* entry of a ``--target`` JSON calibration block is broken instead
    of a bare message.
    """

    def __init__(self, code: str, message: str, detail: Optional[Dict[str, Any]] = None):
        super().__init__(f"calibration {code}: {message}")
        self.code = code
        self.detail = dict(detail or {})


@dataclass(frozen=True)
class EdgeCalibration:
    """Measured parameters of one coupling edge ``(a, b)`` with ``a < b``."""

    a: int
    b: int
    #: Two-qubit depolarizing error probability of a gate on this edge.
    error: float
    #: Two-qubit gate duration on this edge (same arbitrary units as the
    #: target's duration model; the seeded presets use the baseline CNOT
    #: pulse length as the unit).
    duration: float


def _normalized_pair(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True, eq=False)
class CalibrationData:
    """Per-device measured error rates and durations.

    Frozen and hashable by identity (like :class:`~repro.target.target.Target`);
    derived lookup tables and noise-routing models are memoized per instance.
    """

    #: Per-edge 2Q calibration, sorted by (a, b).
    two_qubit: Tuple[EdgeCalibration, ...]
    #: Per-qubit 1Q gate error probability, indexed by physical qubit.
    one_qubit_error: Tuple[float, ...]
    #: Per-qubit readout error probability, indexed by physical qubit.
    readout_error: Tuple[float, ...]
    #: Free-form provenance (preset name, seed, vendor id, ...).
    metadata: Tuple[Tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        if isinstance(self.metadata, dict):
            object.__setattr__(self, "metadata", tuple(sorted(self.metadata.items())))
        edges = tuple(
            sorted(self.two_qubit, key=lambda entry: (entry.a, entry.b))
        )
        object.__setattr__(self, "two_qubit", edges)
        if len(self.one_qubit_error) != len(self.readout_error):
            raise CalibrationError(
                "bad-shape",
                f"one_qubit_error has {len(self.one_qubit_error)} entries but "
                f"readout_error has {len(self.readout_error)}",
            )
        seen = set()
        for entry in edges:
            if entry.a == entry.b:
                raise CalibrationError(
                    "bad-shape", f"edge ({entry.a}, {entry.b}) joins a qubit to itself",
                    {"edge": [entry.a, entry.b]},
                )
            if entry.a > entry.b or entry.a < 0:
                raise CalibrationError(
                    "bad-shape", f"edge ({entry.a}, {entry.b}) must satisfy 0 <= a < b",
                    {"edge": [entry.a, entry.b]},
                )
            pair = (entry.a, entry.b)
            if pair in seen:
                raise CalibrationError(
                    "bad-shape", f"edge {pair} is calibrated twice", {"edge": list(pair)}
                )
            seen.add(pair)
            if not 0.0 <= entry.error < 1.0:
                raise CalibrationError(
                    "negative-rate" if entry.error < 0.0 else "bad-shape",
                    f"edge {pair} error rate {entry.error!r} is not a probability in [0, 1)",
                    {"edge": list(pair), "value": entry.error},
                )
            if not entry.duration >= 0.0:
                raise CalibrationError(
                    "negative-rate",
                    f"edge {pair} duration {entry.duration!r} is negative",
                    {"edge": list(pair), "value": entry.duration},
                )
        for name, rates in (
            ("one_qubit_error", self.one_qubit_error),
            ("readout_error", self.readout_error),
        ):
            for qubit, rate in enumerate(rates):
                if not 0.0 <= rate < 1.0:
                    raise CalibrationError(
                        "negative-rate" if rate < 0.0 else "bad-shape",
                        f"{name}[{qubit}] = {rate!r} is not a probability in [0, 1)",
                        {"field": name, "qubit": qubit, "value": rate},
                    )
        object.__setattr__(
            self,
            "_edge_table",
            {(entry.a, entry.b): entry for entry in edges},
        )
        object.__setattr__(self, "_routing_models", {})

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_routing_models", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.__dict__["_routing_models"] = {}

    # -- views ---------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.one_qubit_error)

    def edge(self, a: int, b: int) -> EdgeCalibration:
        """Calibration of edge ``(a, b)`` (order-insensitive); raises if absent."""
        entry = self._edge_table.get(_normalized_pair(a, b))
        if entry is None:
            raise CalibrationError(
                "missing-edge", f"edge ({a}, {b}) has no calibration entry",
                {"edge": sorted((a, b))},
            )
        return entry

    def has_edge(self, a: int, b: int) -> bool:
        return _normalized_pair(a, b) in self._edge_table

    def validate_against(self, coupling_map) -> None:
        """Check this data covers ``coupling_map`` exactly.

        Every device edge must carry a calibration entry (``missing-edge``),
        every calibrated edge must exist on the device (``unknown-edge``) and
        the per-qubit arrays must match the device size (``bad-shape``).
        """
        if self.num_qubits != coupling_map.num_qubits:
            raise CalibrationError(
                "bad-shape",
                f"calibration covers {self.num_qubits} qubits but the coupling "
                f"map has {coupling_map.num_qubits}",
            )
        device_edges = {tuple(sorted(edge)) for edge in coupling_map.edges}
        calibrated = set(self._edge_table)
        missing = sorted(device_edges - calibrated)
        if missing:
            raise CalibrationError(
                "missing-edge",
                f"device edges with no calibration entry: {missing[:8]}"
                + (" ..." if len(missing) > 8 else ""),
                {"edges": [list(edge) for edge in missing]},
            )
        unknown = sorted(calibrated - device_edges)
        if unknown:
            raise CalibrationError(
                "unknown-edge",
                f"calibrated edges not on the device: {unknown[:8]}"
                + (" ..." if len(unknown) > 8 else ""),
                {"edges": [list(edge) for edge in unknown]},
            )

    def is_uniform(self) -> bool:
        """True when every edge/qubit carries identical parameters."""
        return (
            len({(e.error, e.duration) for e in self.two_qubit}) <= 1
            and len(set(self.one_qubit_error)) <= 1
            and len(set(self.readout_error)) <= 1
        )

    # -- fidelity estimation --------------------------------------------------
    def estimated_log_fidelity(self, circuit: QuantumCircuit) -> float:
        """Log of the product of per-gate/readout success probabilities.

        The circuit must act on *physical* wires (i.e. be routed): every 2Q
        gate contributes ``log(1 - error(edge))``, every 1Q gate
        ``log(1 - one_qubit_error[q])``, and each device qubit one readout
        term.  Log-space keeps deep programs from underflowing to 0.0.
        """
        total = 0.0
        for instruction in circuit:
            qubits = instruction.qubits
            if len(qubits) == 2:
                total += math.log1p(-self.edge(qubits[0], qubits[1]).error)
            else:
                total += math.log1p(-self.one_qubit_error[qubits[0]])
        for rate in self.readout_error:
            total += math.log1p(-rate)
        return total

    def estimated_fidelity(self, circuit: QuantumCircuit) -> float:
        """``exp`` of :meth:`estimated_log_fidelity` (may underflow to 0.0)."""
        return math.exp(self.estimated_log_fidelity(circuit))

    def routing_model(self, coupling_map, duration_weight: float = 0.0, swap_bias: float = 0.4):
        """Memoized :class:`~repro.compiler.routing.noise.NoiseRoutingModel`."""
        key = (id(coupling_map), float(duration_weight), float(swap_bias))
        model = self._routing_models.get(key)
        if model is None:
            from repro.compiler.routing.noise import build_noise_model

            model = build_noise_model(
                coupling_map, self, duration_weight=duration_weight, swap_bias=swap_bias
            )
            # Keep the map alive alongside its model so the id() key can
            # never be recycled while the cache entry exists.
            self._routing_models[key] = (coupling_map, model)
            return model
        return model[1]

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload; the inverse of :meth:`from_dict`."""
        return {
            "two_qubit": [
                {"edge": [entry.a, entry.b], "error": entry.error, "duration": entry.duration}
                for entry in self.two_qubit
            ],
            "one_qubit_error": list(self.one_qubit_error),
            "readout_error": list(self.readout_error),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CalibrationData":
        """Rebuild from a :meth:`to_dict` payload, validating every entry."""
        if not isinstance(payload, dict):
            raise CalibrationError(
                "bad-shape", f"calibration block must be an object, got {type(payload).__name__}"
            )
        entries: List[EdgeCalibration] = []
        for raw in payload.get("two_qubit", []):
            try:
                a, b = (int(q) for q in raw["edge"])
                entries.append(
                    EdgeCalibration(
                        *_normalized_pair(a, b),
                        error=float(raw["error"]),
                        duration=float(raw.get("duration", 1.0)),
                    )
                )
            except CalibrationError:
                raise
            except (KeyError, TypeError, ValueError) as exc:
                raise CalibrationError(
                    "bad-shape", f"malformed two_qubit entry {raw!r}: {exc}"
                ) from None
        try:
            one_qubit = tuple(float(rate) for rate in payload.get("one_qubit_error", ()))
            readout = tuple(float(rate) for rate in payload.get("readout_error", ()))
        except (TypeError, ValueError) as exc:
            raise CalibrationError("bad-shape", f"malformed per-qubit rates: {exc}") from None
        return cls(
            two_qubit=tuple(entries),
            one_qubit_error=one_qubit,
            readout_error=readout,
            metadata=tuple(sorted(dict(payload.get("metadata", {})).items())),
        )

    def fingerprint(self) -> str:
        """Stable content hash (memo keys for noise-aware routing)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- constructors ----------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        coupling_map,
        two_qubit_error: float = 7e-3,
        two_qubit_duration: float = 1.0,
        one_qubit_error: float = 1e-4,
        readout_error: float = 2e-2,
    ) -> "CalibrationData":
        """Identical parameters on every edge/qubit.

        Noise-aware routing under a uniform calibration is bit-identical to
        distance-only routing (the property test of ``docs/noise.md``).
        """
        n = coupling_map.num_qubits
        return cls(
            two_qubit=tuple(
                EdgeCalibration(*_normalized_pair(a, b), error=two_qubit_error,
                                duration=two_qubit_duration)
                for a, b in coupling_map.edges
            ),
            one_qubit_error=(one_qubit_error,) * n,
            readout_error=(readout_error,) * n,
            metadata=(("kind", "uniform"),),
        )

    @classmethod
    def seeded(
        cls,
        coupling_map,
        seed: int,
        median_two_qubit_error: float = 7e-3,
        median_two_qubit_duration: float = 1.0,
        spread: float = 0.6,
    ) -> "CalibrationData":
        """Deterministic heterogeneous calibration (log-normal spread).

        Models a realistic non-uniform device: edge error rates and durations
        are log-normally distributed around the given medians (``spread`` is
        the sigma of the underlying normal), 1Q error sits two orders of
        magnitude below the 2Q median and readout error one order above it —
        the usual hierarchy on superconducting hardware.
        """
        rng = np.random.default_rng(seed)
        edges = [tuple(sorted(edge)) for edge in coupling_map.edges]
        edge_errors = median_two_qubit_error * np.exp(
            rng.normal(0.0, spread, len(edges))
        )
        edge_durations = median_two_qubit_duration * np.exp(
            rng.normal(0.0, spread / 2.0, len(edges))
        )
        n = coupling_map.num_qubits
        one_qubit = (median_two_qubit_error / 50.0) * np.exp(rng.normal(0.0, spread, n))
        readout = np.clip(
            (median_two_qubit_error * 3.0) * np.exp(rng.normal(0.0, spread, n)),
            0.0, 0.5,
        )
        return cls(
            two_qubit=tuple(
                EdgeCalibration(a, b, error=float(min(error, 0.5)), duration=float(duration))
                for (a, b), error, duration in zip(edges, edge_errors, edge_durations)
            ),
            one_qubit_error=tuple(float(min(rate, 0.1)) for rate in one_qubit),
            readout_error=tuple(float(rate) for rate in readout),
            metadata=(("kind", "seeded"), ("seed", seed)),
        )


def distinct_su4_report(
    labelled_circuits: Iterable[Tuple[str, QuantumCircuit]],
) -> List[Dict[str, float]]:
    """Rows of (label, #2Q, distinct SU(4)) for the Figure 13 style summary."""
    rows: List[Dict[str, float]] = []
    for label, circuit in labelled_circuits:
        rows.append(
            {
                "benchmark": label,
                "num_2q": count_two_qubit_gates(circuit),
                "distinct_su4": count_distinct_two_qubit_gates(circuit),
            }
        )
    return rows
