"""Calibration cost model (Section 4.5 / 6.5).

Each *distinct* SU(4) instruction appearing in a compiled program must be
calibrated on hardware; the total calibration cost scales linearly with the
number of distinct gates.  This module provides the accounting used by the
calibration-efficiency experiment (Figure 13) and by the ReQISC-Eff /
ReQISC-Full trade-off discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.metrics import count_distinct_two_qubit_gates, count_two_qubit_gates

__all__ = ["CalibrationModel", "CalibrationReport", "distinct_su4_report"]


@dataclass
class CalibrationReport:
    """Calibration accounting for one compiled program."""

    total_two_qubit_gates: int
    distinct_two_qubit_gates: int
    calibration_cost: float

    @property
    def reuse_factor(self) -> float:
        """Average number of uses per calibrated gate."""
        if self.distinct_two_qubit_gates == 0:
            return 0.0
        return self.total_two_qubit_gates / self.distinct_two_qubit_gates


@dataclass
class CalibrationModel:
    """Linear calibration cost model.

    ``per_gate_cost`` is the experimental cost (arbitrary units, e.g. minutes)
    of calibrating one distinct SU(4) instruction; ``baseline_gates`` is the
    number of gates that are always maintained regardless of the program
    (the CNOT-ISA baseline calibrates exactly one 2Q gate per pair).
    """

    per_gate_cost: float = 1.0
    baseline_gates: int = 1

    def report(self, circuit: QuantumCircuit) -> CalibrationReport:
        """Calibration report for a compiled circuit."""
        distinct = count_distinct_two_qubit_gates(circuit)
        total = count_two_qubit_gates(circuit)
        cost = self.per_gate_cost * max(distinct, self.baseline_gates)
        return CalibrationReport(
            total_two_qubit_gates=total,
            distinct_two_qubit_gates=distinct,
            calibration_cost=cost,
        )

    def compare(
        self, circuits: Dict[str, QuantumCircuit]
    ) -> Dict[str, CalibrationReport]:
        """Reports for a set of labelled compiled circuits."""
        return {label: self.report(circuit) for label, circuit in circuits.items()}


def distinct_su4_report(
    labelled_circuits: Iterable[Tuple[str, QuantumCircuit]],
) -> List[Dict[str, float]]:
    """Rows of (label, #2Q, distinct SU(4)) for the Figure 13 style summary."""
    rows: List[Dict[str, float]] = []
    for label, circuit in labelled_circuits:
        rows.append(
            {
                "benchmark": label,
                "num_2q": count_two_qubit_gates(circuit),
                "distinct_su4": count_distinct_two_qubit_gates(circuit),
            }
        )
    return rows
