"""The no-detuning (ND) subscheme solver (Algorithm 1, lines 12-15).

In the ND sector the binding duration constraint is ``tau = x / a`` and the
pulse parameters admit a quasi-analytic solution: the drive amplitudes are
obtained from the two sinc-type equations::

    sin(y - z) = (b - c) * sin(S1 tau) / S1,   S1 = sqrt(4 Omega1^2 + (b-c)^2)
    sin(y + z) = (b + c) * sin(S2 tau) / S2,   S2 = sqrt(4 Omega2^2 + (b+c)^2)

with the detuning ``delta = 0``.  The smallest admissible roots ``S1, S2`` are
selected so that the drive amplitudes (and thus calibration burden and
leakage) are minimized, as described in Section 4.2.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import brentq

__all__ = ["solve_nd", "smallest_sinc_root"]

_EPS = 1e-12


def _sinc_like(s: float, tau: float) -> float:
    """``sin(s * tau) / s`` with the ``s -> 0`` limit handled."""
    if abs(s) < _EPS:
        return tau
    return math.sin(s * tau) / s


def smallest_sinc_root(target: float, s_min: float, tau: float) -> float:
    """Smallest ``S >= s_min`` with ``sin(S tau) / S == target``.

    ``target`` must satisfy ``0 <= target <= sin(s_min tau)/s_min`` (guaranteed
    by the frontier conditions of the ND sector); the root is bracketed
    between ``s_min`` and the first zero of ``sin(S tau)``.
    """
    if tau <= _EPS:
        return s_min
    start_value = _sinc_like(s_min, tau)
    if target > start_value + 1e-9:
        raise ValueError(
            f"ND equation infeasible: target {target:.6g} exceeds value at "
            f"S_min ({start_value:.6g})"
        )
    if abs(target - start_value) < 1e-14:
        return s_min

    def objective(s: float) -> float:
        return _sinc_like(s, tau) - target

    # Bracket: the function starts >= 0 at s_min and reaches -target <= 0 at
    # the first zero of sin(S tau) past s_min.
    upper = max(s_min + _EPS, math.pi / tau)
    if objective(upper) > 0:
        # Walk outwards until a sign change is found (rare; happens only for
        # extreme tau values near the chamber boundary).
        step = math.pi / tau
        for _ in range(64):
            upper += step
            if objective(upper) <= 0:
                break
        else:
            raise ValueError("could not bracket the ND sinc equation root")
    return float(brentq(objective, s_min, upper, xtol=1e-15, rtol=1e-15))


def solve_nd(
    coordinates: Tuple[float, float, float],
    coefficients: Tuple[float, float, float],
    tau: float,
) -> Tuple[float, float, float]:
    """Solve the ND subscheme for ``(Omega1, Omega2, delta=0)``.

    Parameters
    ----------
    coordinates:
        Effective Weyl coordinates ``(x, y, z)`` to synthesize (already
        mirrored if the mirrored branch was selected).
    coefficients:
        Canonical coupling coefficients ``(a, b, c)``.
    tau:
        The optimal interaction duration (``x / a`` in this sector).
    """
    _, y, z = coordinates
    _, b, c = coefficients

    omegas = []
    for difference, s_min in ((y - z, b - c), (y + z, b + c)):
        target = math.sin(difference)
        if s_min < _EPS:
            # Degenerate coupling direction: the equation collapses to
            # sin(difference) == 0, which the frontier conditions guarantee.
            if abs(target) > 1e-7:
                raise ValueError(
                    "ND subscheme infeasible: vanishing coupling direction with "
                    f"non-zero interaction angle {difference:.3g}"
                )
            omegas.append(0.0)
            continue
        # Solve sin(S tau)/S = sin(difference)/s_min  for the smallest S >= s_min.
        root = smallest_sinc_root(target / s_min, s_min, tau)
        omega = 0.5 * math.sqrt(max(root**2 - s_min**2, 0.0))
        omegas.append(omega)
    omega1, omega2 = omegas
    return float(omega1), float(omega2), 0.0
