"""Equal-amplitude (EA+/EA-) subscheme solvers (Algorithm 1, lines 16-31).

In the EA sectors the binding duration constraint involves ``(a + b -+ c)``
and the pulse parameters ``(Omega, delta)`` obey transcendental equations
with no closed-form solution.  Following Section 4.2 the solver combines:

#. a coarse grid search over the ``(alpha, beta)`` eigenvalue
   reparameterization of the paper (mapped to drive amplitudes through the
   expressions of Algorithm 1, lines 23-24 / 29-30), plus a direct grid over
   ``(Omega, delta)``;
#. local refinement with ``scipy.optimize.least_squares`` on a smooth residual
   — the mismatch of the Makhlin local invariants between the realized
   evolution and the target canonical gate (invariants are used instead of
   Weyl coordinates because they do not fold at chamber boundaries);
#. selection of the root minimizing the physical-implementation penalty
   ``|Omega| + |delta|``.

The solver is self-verifying: every candidate is validated by re-deriving the
Weyl coordinates of the realized evolution, so the returned parameters are
correct independent of sign conventions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import expm
from scipy.optimize import least_squares

from repro.linalg.constants import XX, YY, ZZ, PAULI_X, PAULI_Z, IDENTITY2
from repro.linalg.weyl import (
    canonical_gate,
    local_equivalence_distance,
    makhlin_invariants,
    weyl_coordinates,
)
from repro.microarch.durations import SubScheme

__all__ = [
    "trial_unitary",
    "invariant_residual",
    "solve_ea",
    "alpha_beta_to_drives",
    "alpha_beta_residual_map",
    "EaSolution",
]

_XI = np.kron(PAULI_X, IDENTITY2)
_IX = np.kron(IDENTITY2, PAULI_X)
_ZI = np.kron(PAULI_Z, IDENTITY2)
_IZ = np.kron(IDENTITY2, PAULI_Z)


def trial_unitary(
    coefficients: Sequence[float],
    tau: float,
    omega1: float,
    omega2: float,
    delta: float,
) -> np.ndarray:
    """Evolution ``exp(-i tau (H_c + H_1 + H_2))`` for given pulse parameters.

    ``H_1 = (Omega1 + Omega2) XI + delta ZI`` and
    ``H_2 = (Omega1 - Omega2) IX + delta IZ`` (Eq. (4) of the paper).
    """
    a, b, c = coefficients
    hamiltonian = (
        a * XX
        + b * YY
        + c * ZZ
        + (omega1 + omega2) * _XI
        + (omega1 - omega2) * _IX
        + delta * (_ZI + _IZ)
    )
    return expm(-1j * tau * hamiltonian)


def invariant_residual(
    trial: np.ndarray, target_invariants: Tuple[complex, float]
) -> np.ndarray:
    """Residual vector between Makhlin invariants of ``trial`` and the target."""
    g1, g2 = makhlin_invariants(trial)
    g1_t, g2_t = target_invariants
    return np.array([(g1 - g1_t).real, (g1 - g1_t).imag, g2 - g2_t])


def spectral_coefficients(matrix: np.ndarray) -> Tuple[complex, complex]:
    """First two elementary-symmetric coefficients of the spectrum of ``U YY``.

    For a *symmetric* two-qubit unitary ``U`` (which every genAshN evolution
    is, since its generator is real) the spectrum of ``U (Y (x) Y)`` is a
    local invariant with full first-order sensitivity to the Weyl coordinates,
    even at chamber corners where the Makhlin invariants flatten out.  It is
    used as the high-precision polishing residual of the EA solver
    (Appendix A.1.4 of the paper).
    """
    v = np.asarray(matrix, dtype=complex) @ YY
    c1 = np.trace(v)
    c2 = (c1**2 - np.trace(v @ v)) / 2.0
    return complex(c1), complex(c2)


def spectral_residual(
    trial: np.ndarray, target_coefficients: Tuple[complex, complex]
) -> np.ndarray:
    """Residual between the spectral coefficients of ``trial`` and the target."""
    c1, c2 = spectral_coefficients(trial)
    t1, t2 = target_coefficients
    return np.array([(c1 - t1).real, (c1 - t1).imag, (c2 - t2).real, (c2 - t2).imag])


@dataclass(frozen=True)
class EaSolution:
    """A solved equal-amplitude pulse configuration."""

    omega1: float
    omega2: float
    delta: float
    residual: float
    penalty: float


def alpha_beta_to_drives(
    alpha: float,
    beta: float,
    coefficients: Sequence[float],
    subscheme: SubScheme,
) -> Tuple[float, float, float]:
    """Map the ``(alpha, beta)`` reparameterization to ``(Omega1, Omega2, delta)``.

    Implements Algorithm 1 lines 23-24 (EA+) and lines 29-30 (EA-).  Values
    outside the admissible region are clipped into it so the map can be used
    to seed the grid search everywhere.
    """
    a, b, c = coefficients
    if subscheme is SubScheme.EA_PLUS:
        scale = a + c
        eta = (a - b) / scale if scale > 1e-12 else 0.0
    else:
        scale = a - c
        eta = (a - b) / scale if scale > 1e-12 else 0.0
    alpha = min(max(alpha, 0.0), 1.0)
    beta = max(beta, 0.0)
    radicand_omega = max((1.0 - alpha) * beta * (1.0 - eta + alpha + beta), 0.0)
    radicand_delta = max(alpha * (1.0 + beta) * (alpha + beta - eta), 0.0)
    omega = scale * math.sqrt(radicand_omega)
    delta = scale * math.sqrt(radicand_delta)
    if subscheme is SubScheme.EA_PLUS:
        return 0.0, omega, -delta
    return omega, 0.0, delta


def _refine(
    coefficients: Sequence[float],
    tau: float,
    subscheme: SubScheme,
    target_invariants: Tuple[complex, float],
    spectral_targets: Sequence[Tuple[complex, complex]],
    omega0: float,
    delta0: float,
    bound: float,
) -> Optional[EaSolution]:
    """Two-stage local refinement from a starting guess.

    Stage 1 minimizes the Makhlin-invariant residual (coarse but smooth
    everywhere); stage 2 polishes against the spectral coefficients of the
    closest admissible representative, which keeps full sensitivity at
    chamber boundaries (the SWAP corner in particular).
    """

    def _trial(params: np.ndarray) -> np.ndarray:
        omega, delta = params
        if subscheme is SubScheme.EA_PLUS:
            return trial_unitary(coefficients, tau, 0.0, omega, delta)
        return trial_unitary(coefficients, tau, omega, 0.0, delta)

    def invariant_objective(params: np.ndarray) -> np.ndarray:
        return invariant_residual(_trial(params), target_invariants)

    try:
        stage1 = least_squares(
            invariant_objective,
            x0=np.array([omega0, delta0]),
            bounds=([0.0, -bound], [bound, bound]),
            xtol=1e-14,
            ftol=1e-14,
            gtol=1e-14,
            max_nfev=250,
        )
    except ValueError:
        return None
    if float(np.linalg.norm(invariant_objective(stage1.x))) > 1e-6:
        return None

    # Stage 2: polish against whichever spectral representative is closest.
    current = _trial(stage1.x)
    best_target = min(
        spectral_targets,
        key=lambda coeffs: float(np.linalg.norm(spectral_residual(current, coeffs))),
    )

    def spectral_objective(params: np.ndarray) -> np.ndarray:
        return spectral_residual(_trial(params), best_target)

    try:
        stage2 = least_squares(
            spectral_objective,
            x0=stage1.x,
            bounds=([0.0, -bound], [bound, bound]),
            xtol=1e-15,
            ftol=1e-15,
            gtol=1e-15,
            max_nfev=200,
        )
        final = stage2.x
    except ValueError:
        final = stage1.x
    if float(np.linalg.norm(spectral_objective(final))) > float(
        np.linalg.norm(spectral_objective(stage1.x))
    ):
        final = stage1.x

    omega, delta = final
    res_norm = float(np.linalg.norm(invariant_objective(final)))
    if subscheme is SubScheme.EA_PLUS:
        return EaSolution(0.0, float(omega), float(delta), res_norm, abs(omega) + abs(delta))
    return EaSolution(float(omega), 0.0, float(delta), res_norm, abs(omega) + abs(delta))


def solve_ea(
    coordinates: Sequence[float],
    coefficients: Sequence[float],
    tau: float,
    subscheme: SubScheme,
    grid_size: int = 9,
    residual_tolerance: float = 1e-9,
) -> Tuple[float, float, float]:
    """Solve the EA+ or EA- subscheme for ``(Omega1, Omega2, delta)``.

    The returned parameters realize a gate locally equivalent to
    ``Can(*coordinates)`` when evolved for ``tau`` (verified through the Weyl
    coordinates of the realized unitary).
    """
    if subscheme is SubScheme.ND:
        raise ValueError("solve_ea handles only the EA+ and EA- subschemes")
    x, y, z = coordinates
    target = canonical_gate(x, y, z)
    target_invariants = makhlin_invariants(target)
    # Spectral targets for the high-precision polish: the requested
    # representative and its chamber mirror (locally equivalent on the
    # x = pi/4 boundary, where round-off can land the solver on either side).
    mirror = canonical_gate(math.pi / 2.0 - x, y, -z)
    spectral_targets = (
        spectral_coefficients(target),
        spectral_coefficients(mirror),
    )
    a, b, c = coefficients
    strength = a + b + abs(c)
    bound = max(6.0 * strength, 2.0)

    seeds: List[Tuple[float, float]] = []
    # Seeds from the paper's (alpha, beta) reparameterization.
    for alpha in np.linspace(0.0, 1.0, grid_size):
        for beta in np.linspace(0.0, 2.5, grid_size):
            omega1, omega2, delta = alpha_beta_to_drives(
                alpha, beta, coefficients, subscheme
            )
            omega = omega2 if subscheme is SubScheme.EA_PLUS else omega1
            seeds.append((abs(omega), delta))
    # Direct seeds over the (Omega, delta) rectangle.
    for omega in np.linspace(0.0, 2.0 * strength, grid_size):
        for delta in np.linspace(-2.0 * strength, 2.0 * strength, grid_size):
            seeds.append((omega, delta))

    # Rank the seeds by their coarse residual and refine only the most
    # promising ones (grid search followed by two-stage local refinement).
    def coarse_residual(seed: Tuple[float, float]) -> float:
        omega0, delta0 = seed
        if subscheme is SubScheme.EA_PLUS:
            trial = trial_unitary(coefficients, tau, 0.0, omega0, delta0)
        else:
            trial = trial_unitary(coefficients, tau, omega0, 0.0, delta0)
        return float(np.linalg.norm(invariant_residual(trial, target_invariants)))

    seen = set()
    unique_seeds: List[Tuple[float, float]] = []
    for omega0, delta0 in seeds:
        key = (round(omega0, 3), round(delta0, 3))
        if key in seen:
            continue
        seen.add(key)
        unique_seeds.append((omega0, delta0))
    ranked = sorted(unique_seeds, key=coarse_residual)

    solutions: List[EaSolution] = []
    for omega0, delta0 in ranked[: max(12, grid_size)]:
        candidate = _refine(
            coefficients,
            tau,
            subscheme,
            target_invariants,
            spectral_targets,
            omega0,
            delta0,
            bound,
        )
        if candidate is None or candidate.residual > residual_tolerance:
            continue
        solutions.append(candidate)
        if len(solutions) >= 6:
            break

    if not solutions:
        raise RuntimeError(
            f"EA solver failed to converge for coordinates {tuple(coordinates)} "
            f"under coupling {tuple(coefficients)} (tau={tau:.4f})"
        )

    # Keep only candidates that truly realize the target class, then pick the
    # one with the smallest physical-implementation penalty.
    verified: List[EaSolution] = []
    for candidate in solutions:
        trial = trial_unitary(
            coefficients, tau, candidate.omega1, candidate.omega2, candidate.delta
        )
        if local_equivalence_distance(trial, target) < 1e-7:
            verified.append(candidate)
    if not verified:
        raise RuntimeError("EA solver candidates failed local-equivalence verification")
    best = min(verified, key=lambda sol: sol.penalty)
    return best.omega1, best.omega2, best.delta


def alpha_beta_residual_map(
    coordinates: Sequence[float],
    coefficients: Sequence[float],
    tau: float,
    subscheme: SubScheme,
    alphas: np.ndarray,
    betas: np.ndarray,
) -> np.ndarray:
    """Residual landscape over the ``(alpha, beta)`` plane (Figure 4).

    For every grid point the ``(alpha, beta)`` pair is mapped to drive
    parameters and the norm of the invariant residual of the realized
    evolution is returned.  Zero-level curves of this landscape are the valid
    solutions of the EA transcendental equations.
    """
    target = canonical_gate(*coordinates)
    target_invariants = makhlin_invariants(target)
    landscape = np.zeros((len(betas), len(alphas)))
    for i, beta in enumerate(betas):
        for j, alpha in enumerate(alphas):
            omega1, omega2, delta = alpha_beta_to_drives(
                alpha, beta, coefficients, subscheme
            )
            trial = trial_unitary(coefficients, tau, omega1, omega2, delta)
            landscape[i, j] = float(
                np.linalg.norm(invariant_residual(trial, target_invariants))
            )
    return landscape
