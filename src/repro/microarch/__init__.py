"""The ReQISC microarchitecture (genAshN gate scheme).

Implements Algorithm 1 of the paper: given a two-qubit coupling Hamiltonian
and a target SU(4) gate, compute the time-optimal interaction duration and
the simple pulse parameters (drive amplitudes ``Omega1``, ``Omega2`` and
detuning ``delta``) that realize the gate up to single-qubit corrections.
"""

from repro.microarch.hamiltonian import CouplingHamiltonian
from repro.microarch.durations import (
    DurationBreakdown,
    SubScheme,
    optimal_duration,
    su4_duration_model,
)
from repro.microarch.scheme import GenAshNScheme, PulseProgram
from repro.microarch.calibration import (
    CalibrationData,
    CalibrationError,
    CalibrationModel,
    EdgeCalibration,
    distinct_su4_report,
)

__all__ = [
    "CouplingHamiltonian",
    "DurationBreakdown",
    "SubScheme",
    "optimal_duration",
    "su4_duration_model",
    "GenAshNScheme",
    "PulseProgram",
    "CalibrationData",
    "CalibrationError",
    "CalibrationModel",
    "EdgeCalibration",
    "distinct_su4_report",
]
