"""Standard gate library.

Provides matrix builders and convenience constructors for the gates used by
the paper: the CNOT-based ISA (``{CX, U3}``), the ReQISC SU(4) ISA
(``{Can, U3}``), the fixed 2Q basis gates compared in Table 3 (``iSWAP``,
``SQiSW``, ``B``) and the reversible-logic gates appearing in the benchmark
suite (``CCX``, ``MCX``, ``CSWAP`` ...).
"""

from __future__ import annotations

import cmath
import math
from typing import Sequence

import numpy as np

from repro.gates.gate import Gate, UnitaryGate, register_matrix_builder
from repro.linalg.su2 import rx_matrix, ry_matrix, rz_matrix, u3_matrix
from repro.linalg.weyl import canonical_gate

__all__ = [
    "i_gate",
    "x_gate",
    "y_gate",
    "z_gate",
    "h_gate",
    "s_gate",
    "sdg_gate",
    "t_gate",
    "tdg_gate",
    "sx_gate",
    "rx_gate",
    "ry_gate",
    "rz_gate",
    "p_gate",
    "u3_gate",
    "cx_gate",
    "cy_gate",
    "cz_gate",
    "ch_gate",
    "cp_gate",
    "crz_gate",
    "swap_gate",
    "iswap_gate",
    "sqisw_gate",
    "b_gate",
    "can_gate",
    "rxx_gate",
    "ryy_gate",
    "rzz_gate",
    "cv_gate",
    "cvdg_gate",
    "ccx_gate",
    "ccz_gate",
    "cswap_gate",
    "mcx_gate",
    "unitary_gate",
    "TWO_QUBIT_NAMES",
]

# ---------------------------------------------------------------------------
# Matrix builders (registered by name so Gate.matrix can find them).
# ---------------------------------------------------------------------------

_SQ2 = 1.0 / math.sqrt(2.0)


def _mat_i() -> np.ndarray:
    return np.eye(2, dtype=complex)


def _mat_x() -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def _mat_y() -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def _mat_z() -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def _mat_h() -> np.ndarray:
    return _SQ2 * np.array([[1, 1], [1, -1]], dtype=complex)


def _mat_s() -> np.ndarray:
    return np.diag([1.0, 1j]).astype(complex)


def _mat_sdg() -> np.ndarray:
    return np.diag([1.0, -1j]).astype(complex)


def _mat_t() -> np.ndarray:
    return np.diag([1.0, cmath.exp(1j * math.pi / 4)]).astype(complex)


def _mat_tdg() -> np.ndarray:
    return np.diag([1.0, cmath.exp(-1j * math.pi / 4)]).astype(complex)


def _mat_sx() -> np.ndarray:
    return 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)


def _mat_p(angle: float) -> np.ndarray:
    return np.diag([1.0, cmath.exp(1j * angle)]).astype(complex)


def _controlled(target_matrix: np.ndarray) -> np.ndarray:
    """Two-qubit controlled version (control = qubit 0, big-endian)."""
    result = np.eye(4, dtype=complex)
    result[2:, 2:] = target_matrix
    return result


def _mat_cx() -> np.ndarray:
    return _controlled(_mat_x())


def _mat_cy() -> np.ndarray:
    return _controlled(_mat_y())


def _mat_cz() -> np.ndarray:
    return _controlled(_mat_z())


def _mat_ch() -> np.ndarray:
    return _controlled(_mat_h())


def _mat_cp(angle: float) -> np.ndarray:
    return _controlled(_mat_p(angle))


def _mat_crz(angle: float) -> np.ndarray:
    return _controlled(rz_matrix(angle))


def _mat_cv() -> np.ndarray:
    """Controlled square-root-of-X."""
    return _controlled(_mat_sx())


def _mat_cvdg() -> np.ndarray:
    return _controlled(_mat_sx().conj().T)


def _mat_swap() -> np.ndarray:
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    )


def _mat_iswap() -> np.ndarray:
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
    )


def _mat_sqisw() -> np.ndarray:
    """Square root of iSWAP (the SQiSW gate of Huang et al.)."""
    return np.array(
        [
            [1, 0, 0, 0],
            [0, _SQ2, 1j * _SQ2, 0],
            [0, 1j * _SQ2, _SQ2, 0],
            [0, 0, 0, 1],
        ],
        dtype=complex,
    )


def _mat_b() -> np.ndarray:
    """The B gate (Zhang et al. 2004), locally equivalent to Can(pi/4, pi/8, 0)."""
    return canonical_gate(math.pi / 4.0, math.pi / 8.0, 0.0)


def _mat_can(x: float, y: float, z: float) -> np.ndarray:
    return canonical_gate(x, y, z)


def _mat_rxx(angle: float) -> np.ndarray:
    return canonical_gate(angle / 2.0, 0.0, 0.0)


def _mat_ryy(angle: float) -> np.ndarray:
    return canonical_gate(0.0, angle / 2.0, 0.0)


def _mat_rzz(angle: float) -> np.ndarray:
    return canonical_gate(0.0, 0.0, angle / 2.0)


def _mat_ccx() -> np.ndarray:
    mat = np.eye(8, dtype=complex)
    mat[6, 6], mat[6, 7], mat[7, 6], mat[7, 7] = 0, 1, 1, 0
    return mat


def _mat_ccz() -> np.ndarray:
    mat = np.eye(8, dtype=complex)
    mat[7, 7] = -1
    return mat


def _mat_cswap() -> np.ndarray:
    mat = np.eye(8, dtype=complex)
    mat[5, 5], mat[5, 6], mat[6, 5], mat[6, 6] = 0, 1, 1, 0
    return mat


def _mat_mcx(num_controls: float) -> np.ndarray:
    controls = int(round(num_controls))
    dim = 2 ** (controls + 1)
    mat = np.eye(dim, dtype=complex)
    mat[dim - 2, dim - 2], mat[dim - 2, dim - 1] = 0, 1
    mat[dim - 1, dim - 2], mat[dim - 1, dim - 1] = 1, 0
    return mat


_BUILDERS = {
    "id": _mat_i,
    "x": _mat_x,
    "y": _mat_y,
    "z": _mat_z,
    "h": _mat_h,
    "s": _mat_s,
    "sdg": _mat_sdg,
    "t": _mat_t,
    "tdg": _mat_tdg,
    "sx": _mat_sx,
    "rx": rx_matrix,
    "ry": ry_matrix,
    "rz": rz_matrix,
    "p": _mat_p,
    "u3": u3_matrix,
    "cx": _mat_cx,
    "cy": _mat_cy,
    "cz": _mat_cz,
    "ch": _mat_ch,
    "cp": _mat_cp,
    "crz": _mat_crz,
    "cv": _mat_cv,
    "cvdg": _mat_cvdg,
    "swap": _mat_swap,
    "iswap": _mat_iswap,
    "sqisw": _mat_sqisw,
    "b": _mat_b,
    "can": _mat_can,
    "rxx": _mat_rxx,
    "ryy": _mat_ryy,
    "rzz": _mat_rzz,
    "ccx": _mat_ccx,
    "ccz": _mat_ccz,
    "cswap": _mat_cswap,
    "mcx": _mat_mcx,
}

for _name, _builder in _BUILDERS.items():
    register_matrix_builder(_name, _builder)

#: Non-parametric standard gates.  Their matrices are constants, so they are
#: interned eagerly at import time: every ``Gate.matrix`` lookup for them —
#: including the very first on a hot path — is a read-only cache hit.
_CONSTANT_NAMES = (
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
    "cx", "cy", "cz", "ch", "cv", "cvdg", "swap", "iswap", "sqisw", "b",
    "ccx", "ccz", "cswap",
)

#: Names of standard two-qubit gates (used by circuit metrics and passes).
TWO_QUBIT_NAMES = frozenset(
    {
        "cx",
        "cy",
        "cz",
        "ch",
        "cp",
        "crz",
        "cv",
        "cvdg",
        "swap",
        "iswap",
        "sqisw",
        "b",
        "can",
        "rxx",
        "ryy",
        "rzz",
    }
)

_ARITY = {
    "id": 1,
    "x": 1,
    "y": 1,
    "z": 1,
    "h": 1,
    "s": 1,
    "sdg": 1,
    "t": 1,
    "tdg": 1,
    "sx": 1,
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "p": 1,
    "u3": 1,
    "cx": 2,
    "cy": 2,
    "cz": 2,
    "ch": 2,
    "cp": 2,
    "crz": 2,
    "cv": 2,
    "cvdg": 2,
    "swap": 2,
    "iswap": 2,
    "sqisw": 2,
    "b": 2,
    "can": 2,
    "rxx": 2,
    "ryy": 2,
    "rzz": 2,
    "ccx": 3,
    "ccz": 3,
    "cswap": 3,
}

# Populate the intern pool for every constant standard gate (read-only
# matrices shared by all Gate instances of that name).
for _name in _CONSTANT_NAMES:
    Gate(_name, _ARITY[_name]).matrix


def named_gate(name: str, params: Sequence[float] = ()) -> Gate:
    """Construct a standard gate by name."""
    if name == "mcx":
        raise ValueError("use mcx_gate(num_controls) for multi-controlled X gates")
    try:
        arity = _ARITY[name]
    except KeyError:
        raise KeyError(f"unknown standard gate {name!r}") from None
    return Gate(name, arity, params)


# -- 1Q constructors ---------------------------------------------------------


def i_gate() -> Gate:
    """Identity gate."""
    return Gate("id", 1)


def x_gate() -> Gate:
    """Pauli-X gate."""
    return Gate("x", 1)


def y_gate() -> Gate:
    """Pauli-Y gate."""
    return Gate("y", 1)


def z_gate() -> Gate:
    """Pauli-Z gate."""
    return Gate("z", 1)


def h_gate() -> Gate:
    """Hadamard gate."""
    return Gate("h", 1)


def s_gate() -> Gate:
    """Phase gate S."""
    return Gate("s", 1)


def sdg_gate() -> Gate:
    """Adjoint phase gate."""
    return Gate("sdg", 1)


def t_gate() -> Gate:
    """T gate."""
    return Gate("t", 1)


def tdg_gate() -> Gate:
    """Adjoint T gate."""
    return Gate("tdg", 1)


def sx_gate() -> Gate:
    """Square-root-of-X gate."""
    return Gate("sx", 1)


def rx_gate(angle: float) -> Gate:
    """Rotation about X."""
    return Gate("rx", 1, (angle,))


def ry_gate(angle: float) -> Gate:
    """Rotation about Y."""
    return Gate("ry", 1, (angle,))


def rz_gate(angle: float) -> Gate:
    """Rotation about Z."""
    return Gate("rz", 1, (angle,))


def p_gate(angle: float) -> Gate:
    """Phase rotation gate."""
    return Gate("p", 1, (angle,))


def u3_gate(theta: float, phi: float, lam: float) -> Gate:
    """Generic single-qubit gate ``U3(theta, phi, lam)``."""
    return Gate("u3", 1, (theta, phi, lam))


# -- 2Q constructors ---------------------------------------------------------


def cx_gate() -> Gate:
    """CNOT gate (control on the first qubit)."""
    return Gate("cx", 2)


def cy_gate() -> Gate:
    """Controlled-Y gate."""
    return Gate("cy", 2)


def cz_gate() -> Gate:
    """Controlled-Z gate."""
    return Gate("cz", 2)


def ch_gate() -> Gate:
    """Controlled-Hadamard gate."""
    return Gate("ch", 2)


def cp_gate(angle: float) -> Gate:
    """Controlled phase gate."""
    return Gate("cp", 2, (angle,))


def crz_gate(angle: float) -> Gate:
    """Controlled RZ gate."""
    return Gate("crz", 2, (angle,))


def cv_gate() -> Gate:
    """Controlled square-root-of-X (used by the 5-gate Toffoli template)."""
    return Gate("cv", 2)


def cvdg_gate() -> Gate:
    """Adjoint controlled square-root-of-X."""
    return Gate("cvdg", 2)


def swap_gate() -> Gate:
    """SWAP gate."""
    return Gate("swap", 2)


def iswap_gate() -> Gate:
    """iSWAP gate."""
    return Gate("iswap", 2)


def sqisw_gate() -> Gate:
    """Square-root-of-iSWAP gate."""
    return Gate("sqisw", 2)


def b_gate() -> Gate:
    """The B gate, Can(pi/4, pi/8, 0)."""
    return Gate("b", 2)


def can_gate(x: float, y: float, z: float) -> Gate:
    """Canonical gate ``Can(x, y, z)`` — the 2Q half of the ReQISC ISA."""
    return Gate("can", 2, (x, y, z))


def rxx_gate(angle: float) -> Gate:
    """XX rotation ``exp(-i angle XX / 2)``."""
    return Gate("rxx", 2, (angle,))


def ryy_gate(angle: float) -> Gate:
    """YY rotation ``exp(-i angle YY / 2)``."""
    return Gate("ryy", 2, (angle,))


def rzz_gate(angle: float) -> Gate:
    """ZZ rotation ``exp(-i angle ZZ / 2)``."""
    return Gate("rzz", 2, (angle,))


# -- 3Q and multi-controlled constructors ------------------------------------


def ccx_gate() -> Gate:
    """Toffoli gate."""
    return Gate("ccx", 3)


def ccz_gate() -> Gate:
    """Doubly-controlled Z gate."""
    return Gate("ccz", 3)


def cswap_gate() -> Gate:
    """Fredkin (controlled-SWAP) gate."""
    return Gate("cswap", 3)


def mcx_gate(num_controls: int) -> Gate:
    """Multi-controlled X gate with ``num_controls`` control qubits."""
    if num_controls < 1:
        raise ValueError("mcx requires at least one control")
    return Gate("mcx", num_controls + 1, (float(num_controls),))


def unitary_gate(matrix: np.ndarray, label: str = "unitary") -> UnitaryGate:
    """Wrap an explicit unitary matrix as a gate."""
    return UnitaryGate(matrix, label=label)
