"""Core gate abstractions.

A :class:`Gate` is an immutable description of a quantum operation: a name,
the number of qubits it acts on, an optional tuple of real parameters and a
unitary matrix.  Named gates obtain their matrix from the builder registry in
:mod:`repro.gates.standard`; fused blocks produced by the compiler carry an
explicit matrix (:class:`UnitaryGate`).

Matrix interning
----------------
Building a gate matrix is pure in ``(name, params)``, and the same gates
recur millions of times across a benchmark suite (every ``cx``, every
``swap`` inserted by routing, repeated rotation angles inside one circuit).
``Gate.matrix`` therefore resolves through a module-level intern pool:

* non-parametric gates live in :data:`_CONSTANT_MATRICES`, prebuilt for the
  whole standard library at import time and kept forever;
* parametrized gates are cached in a bounded FIFO pool keyed by
  ``(name, params)``.

Every interned (and every explicit) matrix is frozen
(``writeable=False``), so a cached array can never be corrupted in place by
a pass or simulator — callers that need a scratch copy must ``.copy()``.
:func:`matrix_cache_stats` exposes hit/miss counters for the perf harness,
both in aggregate and per gate family (per name), so the batch collectors in
:mod:`repro.kernels` can report what fraction of their inputs were interned
and the FIFO pool bound can be sized against real workloads.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Gate",
    "UnitaryGate",
    "register_matrix_builder",
    "matrix_cache_stats",
    "reset_matrix_cache_stats",
]

#: Registry mapping gate names to functions ``params -> unitary matrix``.
_MATRIX_BUILDERS: Dict[str, Callable[..., np.ndarray]] = {}

#: Interned matrices of non-parametric gates (never evicted).
_CONSTANT_MATRICES: Dict[str, np.ndarray] = {}

#: Bounded FIFO intern pool for parametrized gate matrices.
_PARAM_MATRICES: Dict[Tuple[str, Tuple[float, ...]], np.ndarray] = {}
_PARAM_POOL_CAPACITY = 4096

_CACHE_HITS = 0
_CACHE_MISSES = 0

#: Per-gate-family (per gate name) hit/miss counters.
_FAMILY_HITS: Dict[str, int] = {}
_FAMILY_MISSES: Dict[str, int] = {}


def register_matrix_builder(name: str, builder: Callable[..., np.ndarray]) -> None:
    """Register the matrix builder for a named gate.

    Re-registering a name drops any interned matrices built by the previous
    builder.
    """
    _MATRIX_BUILDERS[name] = builder
    _CONSTANT_MATRICES.pop(name, None)
    for key in [key for key in _PARAM_MATRICES if key[0] == name]:
        del _PARAM_MATRICES[key]


def matrix_cache_stats() -> Dict[str, Any]:
    """Intern-pool counters: hits, misses, current sizes and per-family rates.

    ``families`` maps each gate name that resolved a matrix since the last
    reset to its own ``{"hits", "misses", "hit_rate"}`` record, so callers
    (the perf harness, the batch collectors) can see *which* gate families
    benefit from interning rather than one aggregate number.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for name in sorted(_FAMILY_HITS.keys() | _FAMILY_MISSES.keys()):
        hits = _FAMILY_HITS.get(name, 0)
        misses = _FAMILY_MISSES.get(name, 0)
        families[name] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }
    return {
        "hits": _CACHE_HITS,
        "misses": _CACHE_MISSES,
        "constant_entries": len(_CONSTANT_MATRICES),
        "parametrized_entries": len(_PARAM_MATRICES),
        "families": families,
    }


def reset_matrix_cache_stats() -> None:
    """Zero the hit/miss counters (the perf harness brackets runs with this)."""
    global _CACHE_HITS, _CACHE_MISSES
    _CACHE_HITS = 0
    _CACHE_MISSES = 0
    _FAMILY_HITS.clear()
    _FAMILY_MISSES.clear()


def _freeze(matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` as a read-only complex array (copy iff writable)."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.flags.writeable:
        matrix = matrix.copy()
        matrix.setflags(write=False)
    return matrix


def _interned_matrix(name: str, params: Tuple[float, ...]) -> np.ndarray:
    """Resolve the read-only interned matrix for ``(name, params)``."""
    global _CACHE_HITS, _CACHE_MISSES
    if not params:
        cached = _CONSTANT_MATRICES.get(name)
        if cached is not None:
            _CACHE_HITS += 1
            _FAMILY_HITS[name] = _FAMILY_HITS.get(name, 0) + 1
            return cached
    else:
        cached = _PARAM_MATRICES.get((name, params))
        if cached is not None:
            _CACHE_HITS += 1
            _FAMILY_HITS[name] = _FAMILY_HITS.get(name, 0) + 1
            return cached
    try:
        builder = _MATRIX_BUILDERS[name]
    except KeyError:
        raise KeyError(f"no matrix builder registered for gate {name!r}") from None
    _CACHE_MISSES += 1
    _FAMILY_MISSES[name] = _FAMILY_MISSES.get(name, 0) + 1
    matrix = _freeze(builder(*params))
    if not params:
        _CONSTANT_MATRICES[name] = matrix
    else:
        if len(_PARAM_MATRICES) >= _PARAM_POOL_CAPACITY:
            del _PARAM_MATRICES[next(iter(_PARAM_MATRICES))]
        _PARAM_MATRICES[(name, params)] = matrix
    return matrix


class Gate:
    """An immutable named quantum gate.

    Parameters
    ----------
    name:
        Lower-case gate mnemonic (``"cx"``, ``"u3"``, ``"can"``, ...).
    num_qubits:
        Arity of the gate.
    params:
        Real parameters (rotation angles, canonical coordinates, ...).
    """

    # ``_content`` interns the gate's canonical fingerprint bytes (computed
    # lazily by repro.incremental.fingerprint; gates are immutable so the
    # bytes never go stale).  Read it with ``getattr(..., None)``: gates
    # unpickled from pre-1.4 payloads may not carry the slot's value.
    __slots__ = ("name", "num_qubits", "params", "_matrix", "_content")

    def __init__(
        self,
        name: str,
        num_qubits: int,
        params: Sequence[float] = (),
        matrix: Optional[np.ndarray] = None,
    ) -> None:
        self.name = name
        self.num_qubits = int(num_qubits)
        self.params: Tuple[float, ...] = tuple(float(p) for p in params)
        self._matrix = None if matrix is None else _freeze(matrix)
        self._content: Optional[bytes] = None

    # -- matrix ------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """Unitary matrix of the gate (``2^n x 2^n``, read-only, interned)."""
        if self._matrix is None:
            self._matrix = _interned_matrix(self.name, self.params)
        return self._matrix

    # -- helpers -----------------------------------------------------------
    @property
    def is_two_qubit(self) -> bool:
        """True for gates acting on exactly two qubits."""
        return self.num_qubits == 2

    @property
    def is_parametrized(self) -> bool:
        """True when the gate carries continuous parameters."""
        return bool(self.params)

    def dagger(self) -> "Gate":
        """Return the adjoint gate as an explicit-matrix gate."""
        return UnitaryGate(self.matrix.conj().T, label=f"{self.name}_dg")

    def with_params(self, params: Sequence[float]) -> "Gate":
        """Return a copy of this gate with different parameters."""
        return Gate(self.name, self.num_qubits, params)

    def copy(self) -> "Gate":
        """Shallow copy (gates are immutable, so this shares the matrix)."""
        return Gate(self.name, self.num_qubits, self.params, self._matrix)

    # -- equality / repr ----------------------------------------------------
    def approx_equal(self, other: "Gate", atol: float = 1e-9) -> bool:
        """Structural equality: same name, arity and parameters within atol."""
        return (
            self.name == other.name
            and self.num_qubits == other.num_qubits
            and len(self.params) == len(other.params)
            and all(abs(a - b) <= atol for a, b in zip(self.params, other.params))
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        return self.approx_equal(other, atol=0.0)

    def __hash__(self) -> int:
        return hash((self.name, self.num_qubits, self.params))

    def __repr__(self) -> str:
        if self.params:
            params = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({params})"
        return self.name


class UnitaryGate(Gate):
    """A gate defined directly by its unitary matrix.

    Used for fused SU(4)/SU(8) blocks produced by the compiler passes and for
    synthesized templates.  The ``label`` keeps a human-readable provenance
    tag (e.g. ``"su4"`` or ``"block"``).  The stored matrix is frozen at
    construction (copied if the caller's array was writable), so later
    mutation of the source array cannot corrupt the gate.
    """

    def __init__(self, matrix: np.ndarray, label: str = "unitary") -> None:
        matrix = np.asarray(matrix, dtype=complex)
        dim = matrix.shape[0]
        if matrix.shape != (dim, dim) or dim & (dim - 1):
            raise ValueError(f"matrix shape {matrix.shape} is not a power-of-two square")
        num_qubits = int(np.log2(dim))
        super().__init__(label, num_qubits, (), matrix)

    def __repr__(self) -> str:
        return f"{self.name}[{self.num_qubits}q]"

    def __hash__(self) -> int:
        return hash((self.name, self.num_qubits, self.matrix.tobytes()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        return (
            self.name == other.name
            and self.num_qubits == other.num_qubits
            and np.array_equal(self.matrix, other.matrix)
        )
