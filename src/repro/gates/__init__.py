"""Gate library: standard 1Q/2Q/3Q gates, canonical gates and fused unitaries."""

from repro.gates.gate import Gate, UnitaryGate
from repro.gates import standard

__all__ = ["Gate", "UnitaryGate", "standard"]
