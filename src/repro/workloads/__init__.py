"""Benchmark-suite workload generators (Table 1 categories)."""

from repro.workloads.arithmetic import (
    alu_circuit,
    bit_adder,
    comparator,
    encoding_circuit,
    modulo_adder,
    multiplier,
    ripple_carry_adder,
    square_circuit,
)
from repro.workloads.algorithms import (
    grover_circuit,
    hamiltonian_simulation,
    qaoa_maxcut,
    qft_circuit,
    uccsd_like,
)
from repro.workloads.reversible import (
    hidden_weighted_bit,
    random_reversible,
    symmetric_function,
    toffoli_chain,
)
from repro.workloads.suite import BenchmarkCase, benchmark_suite, suite_categories

__all__ = [
    "alu_circuit",
    "bit_adder",
    "comparator",
    "encoding_circuit",
    "modulo_adder",
    "multiplier",
    "ripple_carry_adder",
    "square_circuit",
    "grover_circuit",
    "hamiltonian_simulation",
    "qaoa_maxcut",
    "qft_circuit",
    "uccsd_like",
    "hidden_weighted_bit",
    "random_reversible",
    "symmetric_function",
    "toffoli_chain",
    "BenchmarkCase",
    "benchmark_suite",
    "suite_categories",
]
