"""Reversible-function workloads (hwb, sym, urf, tof categories).

The original benchmarks come from RevLib ``.real`` files; the generators here
produce structurally equivalent circuit families (MCT cascades over a fixed
register) at configurable sizes, as documented in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit

__all__ = [
    "toffoli_chain",
    "hidden_weighted_bit",
    "symmetric_function",
    "random_reversible",
]


def toffoli_chain(num_qubits: int = 5) -> QuantumCircuit:
    """The tof_n family: a ladder of overlapping Toffoli gates."""
    circuit = QuantumCircuit(num_qubits, f"tof_{num_qubits}")
    for i in range(num_qubits - 2):
        circuit.ccx(i, i + 1, i + 2)
    for i in reversed(range(num_qubits - 2)):
        circuit.ccx(i, i + 1, i + 2)
    return circuit


def hidden_weighted_bit(num_qubits: int = 4, seed: int = 13) -> QuantumCircuit:
    """hwb-style benchmark: weight-dependent bit permutation as an MCT cascade."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"hwb_{num_qubits}")
    for weight in range(1, num_qubits):
        controls = list(rng.choice(num_qubits, size=min(weight, num_qubits - 1), replace=False))
        target = int(rng.choice([q for q in range(num_qubits) if q not in controls]))
        if len(controls) == 1:
            circuit.cx(int(controls[0]), target)
        elif len(controls) == 2:
            circuit.ccx(int(controls[0]), int(controls[1]), target)
        else:
            circuit.mcx([int(c) for c in controls[:2]], target)
        circuit.x(target)
        circuit.cx(target, int(controls[0]))
    return circuit


def symmetric_function(num_qubits: int = 6, seed: int = 17) -> QuantumCircuit:
    """sym-style benchmark: threshold/symmetric functions via CCX cascades."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"sym_{num_qubits}")
    data = num_qubits - 2
    for i in range(data):
        circuit.ccx(i, (i + 1) % data, data)
        circuit.cx(data, data + 1)
        circuit.ccx((i + 1) % data, (i + 2) % data, data + 1)
    for _ in range(data):
        a, b = rng.choice(data, size=2, replace=False)
        circuit.ccx(int(a), int(b), data)
    return circuit


def random_reversible(
    num_qubits: int = 6, num_gates: int = 30, seed: int = 19
) -> QuantumCircuit:
    """urf-style benchmark: long random MCT cascades (random reversible functions)."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"urf_{num_qubits}")
    for _ in range(num_gates):
        kind = rng.integers(3)
        if kind == 0:
            circuit.x(int(rng.integers(num_qubits)))
        elif kind == 1:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
        else:
            a, b, c = rng.choice(num_qubits, size=3, replace=False)
            circuit.ccx(int(a), int(b), int(c))
    return circuit
