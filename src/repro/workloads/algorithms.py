"""Algorithmic workloads: QFT, Grover, QAOA, Hamiltonian simulation, UCCSD-like.

The Trotterized / variational families (pf, qaoa, uccsd) are the paper's
"type-2" programs: sequences of Pauli-rotation gadgets, which the ReQISC
pipeline ingests after high-level Pauli-level optimization.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.circuits.circuit import QuantumCircuit

__all__ = [
    "qft_circuit",
    "grover_circuit",
    "qaoa_maxcut",
    "hamiltonian_simulation",
    "uccsd_like",
]


def qft_circuit(num_qubits: int = 4, include_swaps: bool = False) -> QuantumCircuit:
    """Quantum Fourier transform (controlled-phase ladder)."""
    circuit = QuantumCircuit(num_qubits, f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            circuit.cp(angle, control, target)
    if include_swaps:
        for i in range(num_qubits // 2):
            circuit.swap(i, num_qubits - 1 - i)
    return circuit


def grover_circuit(num_qubits: int = 4, iterations: int = 1, marked: int = None) -> QuantumCircuit:
    """Grover search with an MCX oracle and the standard diffusion operator."""
    if marked is None:
        marked = (1 << num_qubits) - 1
    circuit = QuantumCircuit(num_qubits + max(0, num_qubits - 3), f"grover_{num_qubits}")
    data = list(range(num_qubits))
    for qubit in data:
        circuit.h(qubit)
    for _ in range(iterations):
        # Oracle: phase-flip the marked bitstring.
        for qubit in data:
            if not (marked >> (num_qubits - 1 - qubit)) & 1:
                circuit.x(qubit)
        circuit.h(data[-1])
        if num_qubits > 2:
            circuit.mcx(data[:-1], data[-1])
        else:
            circuit.cx(data[0], data[-1])
        circuit.h(data[-1])
        for qubit in data:
            if not (marked >> (num_qubits - 1 - qubit)) & 1:
                circuit.x(qubit)
        # Diffusion.
        for qubit in data:
            circuit.h(qubit)
            circuit.x(qubit)
        circuit.h(data[-1])
        if num_qubits > 2:
            circuit.mcx(data[:-1], data[-1])
        else:
            circuit.cx(data[0], data[-1])
        circuit.h(data[-1])
        for qubit in data:
            circuit.x(qubit)
            circuit.h(qubit)
    return circuit


def qaoa_maxcut(
    num_qubits: int = 6,
    layers: int = 2,
    degree: int = 3,
    seed: int = 7,
    parameters: Optional[Sequence[Tuple[float, float]]] = None,
) -> QuantumCircuit:
    """QAOA MaxCut ansatz on a random regular graph."""
    degree = min(degree, num_qubits - 1)
    if (num_qubits * degree) % 2:
        degree -= 1
    graph = nx.random_regular_graph(max(degree, 1), num_qubits, seed=seed)
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"qaoa_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for layer in range(layers):
        if parameters is not None:
            gamma, beta = parameters[layer]
        else:
            gamma, beta = rng.uniform(0.1, 1.0, size=2)
        for a, b in sorted(graph.edges):
            circuit.rzz(2.0 * gamma, int(a), int(b))
        for qubit in range(num_qubits):
            circuit.rx(2.0 * beta, qubit)
    return circuit


def hamiltonian_simulation(
    num_qubits: int = 5,
    steps: int = 2,
    time: float = 1.0,
    model: str = "heisenberg",
) -> QuantumCircuit:
    """First-order Trotter product formula (the pf benchmark family)."""
    dt = time / steps
    circuit = QuantumCircuit(num_qubits, f"pf_{model}_{num_qubits}")
    for _ in range(steps):
        for qubit in range(num_qubits - 1):
            if model == "heisenberg":
                circuit.rxx(2.0 * dt, qubit, qubit + 1)
                circuit.ryy(2.0 * dt, qubit, qubit + 1)
                circuit.rzz(2.0 * dt, qubit, qubit + 1)
            else:  # transverse-field Ising
                circuit.rzz(2.0 * dt, qubit, qubit + 1)
        for qubit in range(num_qubits):
            circuit.rx(2.0 * dt, qubit)
    return circuit


def _pauli_gadget(circuit: QuantumCircuit, pauli: str, qubits: Sequence[int], angle: float) -> None:
    """Append ``exp(-i angle/2 * P)`` for a Pauli string ``P`` via a CX ladder."""
    active = [(q, p) for q, p in zip(qubits, pauli) if p != "I"]
    if not active:
        return
    for qubit, p in active:
        if p == "X":
            circuit.h(qubit)
        elif p == "Y":
            circuit.sdg(qubit)
            circuit.h(qubit)
    chain = [q for q, _ in active]
    for a, b in zip(chain, chain[1:]):
        circuit.cx(a, b)
    circuit.rz(angle, chain[-1])
    for a, b in reversed(list(zip(chain, chain[1:]))):
        circuit.cx(a, b)
    for qubit, p in active:
        if p == "X":
            circuit.h(qubit)
        elif p == "Y":
            circuit.h(qubit)
            circuit.s(qubit)


def uccsd_like(num_qubits: int = 4, num_excitations: int = 3, seed: int = 5) -> QuantumCircuit:
    """UCCSD-style ansatz: a sequence of Pauli-string exponentials.

    Each (randomly parameterized) double excitation expands into the familiar
    ladder of CX gates around an RZ rotation, reproducing the structure of
    the uccsd benchmark category.
    """
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"uccsd_{num_qubits}")
    paulis = ["XXXY", "XXYX", "XYXX", "YXXX", "XYYY", "YXYY", "YYXY", "YYYX"]
    for index in range(num_excitations):
        qubits = sorted(rng.choice(num_qubits, size=min(4, num_qubits), replace=False))
        pauli = paulis[index % len(paulis)][: len(qubits)]
        angle = float(rng.uniform(0.1, 1.0))
        _pauli_gadget(circuit, pauli, [int(q) for q in qubits], angle)
    return circuit
