"""Arithmetic / digital-logic workloads (the paper's "type-1" programs).

These generators produce the reversible-logic circuit families of the RevLib
style benchmark categories (alu, adders, comparator, modulo, mult, square,
encoding) from ``{X, CX, CCX, MCX}`` subroutines.  Sizes are parameterized so
the evaluation harness can scale them to the available compute budget.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit

__all__ = [
    "ripple_carry_adder",
    "bit_adder",
    "comparator",
    "alu_circuit",
    "modulo_adder",
    "multiplier",
    "square_circuit",
    "encoding_circuit",
]


def ripple_carry_adder(num_bits: int = 3) -> QuantumCircuit:
    """Cuccaro ripple-carry adder on two ``num_bits`` registers.

    Register layout: ``[carry_in, b0, a0, b1, a1, ..., carry_out]``.
    """
    num_qubits = 2 * num_bits + 2
    circuit = QuantumCircuit(num_qubits, f"rip_add_{num_qubits}")

    def a(i):
        return 2 + 2 * i

    def b(i):
        return 1 + 2 * i

    carry_in = 0
    carry_out = num_qubits - 1

    def maj(x, y, z):
        circuit.cx(z, y)
        circuit.cx(z, x)
        circuit.ccx(x, y, z)

    def uma(x, y, z):
        circuit.ccx(x, y, z)
        circuit.cx(z, x)
        circuit.cx(x, y)

    maj(carry_in, b(0), a(0))
    for i in range(1, num_bits):
        maj(a(i - 1), b(i), a(i))
    circuit.cx(a(num_bits - 1), carry_out)
    for i in reversed(range(1, num_bits)):
        uma(a(i - 1), b(i), a(i))
    uma(carry_in, b(0), a(0))
    return circuit


def bit_adder(num_bits: int = 2) -> QuantumCircuit:
    """VBE-style carry-propagate adder built from CARRY/SUM blocks."""
    # Layout: a[0..n-1], b[0..n-1], carry[0..n]
    n = num_bits
    num_qubits = 3 * n + 1
    circuit = QuantumCircuit(num_qubits, f"bit_adder_{num_qubits}")

    def a(i):
        return i

    def b(i):
        return n + i

    def c(i):
        return 2 * n + i

    def carry(c0, ai, bi, c1):
        circuit.ccx(ai, bi, c1)
        circuit.cx(ai, bi)
        circuit.ccx(c0, bi, c1)

    def carry_dg(c0, ai, bi, c1):
        circuit.ccx(c0, bi, c1)
        circuit.cx(ai, bi)
        circuit.ccx(ai, bi, c1)

    for i in range(n):
        carry(c(i), a(i), b(i), c(i + 1))
    circuit.cx(a(n - 1), b(n - 1))
    for i in reversed(range(n)):
        if i < n - 1:
            carry_dg(c(i), a(i), b(i), c(i + 1))
            circuit.cx(a(i), b(i))
        circuit.cx(c(i), b(i))
    return circuit


def comparator(num_bits: int = 2) -> QuantumCircuit:
    """Bitwise comparator setting a flag qubit when ``a > b``."""
    n = num_bits
    num_qubits = 2 * n + 2  # a, b, flag, scratch
    circuit = QuantumCircuit(num_qubits, f"comparator_{num_qubits}")
    flag = 2 * n
    scratch = 2 * n + 1
    for i in reversed(range(n)):
        a, b = i, n + i
        circuit.x(b)
        circuit.ccx(a, b, scratch)
        circuit.x(b)
        circuit.cx(scratch, flag)
        circuit.ccx(a, b, scratch)
    return circuit


def alu_circuit(num_qubits: int = 5, depth: int = 6, seed: int = 11) -> QuantumCircuit:
    """ALU-style reversible logic: interleaved CCX/CX/X slices.

    Mirrors the alu-v* RevLib family: a cascade of controlled additions and
    conditional inversions over a handful of qubits.
    """
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"alu_{num_qubits}")
    for _ in range(depth):
        a, b, c = rng.choice(num_qubits, size=3, replace=False)
        circuit.ccx(int(a), int(b), int(c))
        d, e = rng.choice(num_qubits, size=2, replace=False)
        circuit.cx(int(d), int(e))
        circuit.x(int(rng.integers(num_qubits)))
    return circuit


def modulo_adder(num_bits: int = 2, modulus: int = 3) -> QuantumCircuit:
    """Constant-increment modulo adder (controlled increments + corrections)."""
    n = num_bits
    num_qubits = n + 2
    circuit = QuantumCircuit(num_qubits, f"modulo_{num_qubits}")
    control = n
    ancilla = n + 1
    # Controlled increment chains (MCX cascades), repeated modulus times.
    for _ in range(modulus % 4 + 1):
        for i in reversed(range(1, n)):
            circuit.mcx(list(range(i)), i)
        circuit.x(0)
        circuit.cx(control, ancilla)
    return circuit


def multiplier(num_bits: int = 2) -> QuantumCircuit:
    """Shift-and-add multiplier on two ``num_bits`` inputs."""
    n = num_bits
    num_qubits = 4 * n
    circuit = QuantumCircuit(num_qubits, f"mult_{num_qubits}")

    def a(i):
        return i

    def b(i):
        return n + i

    def p(i):
        return 2 * n + i

    for i in range(n):
        for j in range(n):
            if i + j < 2 * n:
                circuit.ccx(a(i), b(j), p(min(i + j, 2 * n - 1)))
        # Carry propagation for this partial product row.
        for k in range(n - 1):
            circuit.ccx(p(k), b((k + i) % n), p(k + 1))
    return circuit


def square_circuit(num_bits: int = 2) -> QuantumCircuit:
    """Squaring circuit (multiplier with both inputs tied)."""
    base = multiplier(num_bits)
    circuit = QuantumCircuit(base.num_qubits, f"square_{base.num_qubits}")
    for i in range(num_bits):
        circuit.cx(i, num_bits + i)
    circuit.compose(base)
    return circuit


def encoding_circuit(num_qubits: int = 5, seed: int = 3) -> QuantumCircuit:
    """Binary encoder/decoder pattern: CX fan-outs plus CCX parity checks."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"encoding_{num_qubits}")
    for target in range(1, num_qubits):
        circuit.cx(0, target)
    for _ in range(num_qubits):
        a, b, c = rng.choice(num_qubits, size=3, replace=False)
        circuit.ccx(int(a), int(b), int(c))
        circuit.cx(int(b), int(a))
    return circuit
