"""The benchmark suite: one generator call per Table 1 category.

Three scales are provided; ``"tiny"`` keeps every circuit small enough for
exact unitary checks, ``"small"`` (default) mirrors the structure of the
paper's suite at laptop-friendly sizes, ``"medium"`` grows the programs for
the topology-aware and scalability experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.workloads import algorithms, arithmetic, reversible

__all__ = ["BenchmarkCase", "benchmark_suite", "qasm_cases", "suite_categories"]


@dataclass
class BenchmarkCase:
    """One benchmark program with its category label."""

    name: str
    category: str
    circuit: QuantumCircuit
    is_variational: bool = False

    @property
    def num_qubits(self) -> int:
        """Number of qubits of the program."""
        return self.circuit.num_qubits


_SCALES = ("tiny", "small", "medium")


def _builders(scale: str) -> Dict[str, Callable[[], QuantumCircuit]]:
    sizes = {
        "tiny": dict(alu=4, adder_bits=1, comp=1, enc=4, grover=3, hwb=4, mod=2, mult=1,
                     pf=4, qaoa=4, qft=4, rip=1, square=1, sym=5, tof=4, uccsd=4, urf=4, urf_gates=14),
        "small": dict(alu=5, adder_bits=2, comp=2, enc=5, grover=4, hwb=5, mod=2, mult=2,
                      pf=5, qaoa=6, qft=5, rip=2, square=2, sym=6, tof=5, uccsd=4, urf=6, urf_gates=24),
        "medium": dict(alu=6, adder_bits=3, comp=3, enc=7, grover=5, hwb=6, mod=3, mult=2,
                       pf=7, qaoa=8, qft=7, rip=3, square=2, sym=7, tof=7, uccsd=6, urf=8, urf_gates=40),
    }[scale]
    return {
        "alu": lambda: arithmetic.alu_circuit(sizes["alu"], depth=5),
        "bit_adder": lambda: arithmetic.bit_adder(sizes["adder_bits"]),
        "comparator": lambda: arithmetic.comparator(sizes["comp"]),
        "encoding": lambda: arithmetic.encoding_circuit(sizes["enc"]),
        "grover": lambda: algorithms.grover_circuit(sizes["grover"], iterations=1),
        "hwb": lambda: reversible.hidden_weighted_bit(sizes["hwb"]),
        "modulo": lambda: arithmetic.modulo_adder(sizes["mod"]),
        "mult": lambda: arithmetic.multiplier(sizes["mult"]),
        "pf": lambda: algorithms.hamiltonian_simulation(sizes["pf"], steps=2),
        "qaoa": lambda: algorithms.qaoa_maxcut(sizes["qaoa"], layers=2),
        "qft": lambda: algorithms.qft_circuit(sizes["qft"]),
        "ripple_add": lambda: arithmetic.ripple_carry_adder(sizes["rip"]),
        "square": lambda: arithmetic.square_circuit(sizes["square"]),
        "sym": lambda: reversible.symmetric_function(sizes["sym"]),
        "tof": lambda: reversible.toffoli_chain(sizes["tof"]),
        "uccsd": lambda: algorithms.uccsd_like(sizes["uccsd"], num_excitations=3),
        "urf": lambda: reversible.random_reversible(sizes["urf"], num_gates=sizes["urf_gates"]),
    }


_VARIATIONAL = {"qaoa", "uccsd", "pf"}


def suite_categories() -> List[str]:
    """Names of the Table 1 benchmark categories."""
    return sorted(_builders("small"))


def qasm_cases(
    paths: Sequence,
    max_qubits: Optional[int] = None,
) -> List[BenchmarkCase]:
    """Load external OpenQASM 2.0 files as benchmark cases.

    Each path becomes a :class:`BenchmarkCase` in category ``"qasm"``,
    named after the file stem — the ingestion point for external corpora
    (MQT Bench, QASMBench, Qiskit exports).  Parse problems surface as
    :class:`~repro.qasm.QasmError` carrying the filename and source
    position.
    """
    import os

    from repro.qasm import load

    if isinstance(paths, (str, os.PathLike)):
        paths = [paths]
    cases: List[BenchmarkCase] = []
    for path in paths:
        circuit = load(path)
        if max_qubits is not None and circuit.num_qubits > max_qubits:
            continue
        cases.append(BenchmarkCase(name=circuit.name, category="qasm", circuit=circuit))
    return cases


def benchmark_suite(
    scale: str = "small",
    categories: Optional[Sequence[str]] = None,
    max_qubits: Optional[int] = None,
) -> List[BenchmarkCase]:
    """Build the benchmark suite at the requested scale.

    ``categories`` restricts the output; ``max_qubits`` drops programs larger
    than the given register (useful for exact-verification experiments).
    """
    if scale not in _SCALES:
        raise ValueError(f"scale must be one of {_SCALES}")
    builders = _builders(scale)
    selected = categories if categories is not None else sorted(builders)
    cases: List[BenchmarkCase] = []
    for category in selected:
        if category not in builders:
            raise KeyError(f"unknown benchmark category {category!r}")
        circuit = builders[category]()
        if max_qubits is not None and circuit.num_qubits > max_qubits:
            continue
        cases.append(
            BenchmarkCase(
                name=circuit.name,
                category=category,
                circuit=circuit,
                is_variational=category in _VARIATIONAL,
            )
        )
    return cases
