"""Module entry point: ``python -m repro`` dispatches to the service CLI."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
