"""SABRE stall-scoring backends (pure-Python reference + native dispatch).

At every routing stall :class:`~repro.compiler.routing.sabre.SabreRouter`
evaluates the SWAP heuristic for all candidate coupling edges at once.  That
evaluation — gather the physical front/lookahead pairs through the layout,
collect the incident candidate edges, compute the trial distance sums and
the decay-weighted costs — is a pure function of small integer arrays, and
it is the routing hot loop.  This module packages it behind a narrow scorer
interface so the compiled backend in :mod:`repro.kernels._sabre_native` can
replace it transparently:

``scorer(layout, pair_qubits, num_front, num_ext, lookahead_weight, decay)``
returns ``(ids, costs, base_cost)`` where ``ids`` is the ascending list of
candidate edge ids, ``costs`` the per-candidate heuristic costs (aligned
with ``ids``) and ``base_cost`` the pre-SWAP cost.  Candidate *selection*
(argmin / stable argsort + absorption) stays in the router, so tie-breaking
semantics are untouched by the backend choice.

Both backends are bit-identical: every sum is over small integer distances
(exact in both int64 numpy reductions and C ``long long``), and the float
arithmetic (``sum/F``, ``+ w*(sum/E)``, ``* max(decay)``) is performed in
the same order with the same IEEE-754 double operations.

Noise-aware scoring (see :mod:`repro.compiler.routing.noise`) reuses the
same arithmetic over a *weighted* int64 distance matrix and adds a per-edge
integer SWAP surcharge (``+ penalty[edge]``, applied after the lookahead
term and before the decay multiply, never to the base cost).  The penalty is
exact in both backends — an int64 cast to double below 2**53.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = ["make_scorer", "score_stall_py"]

#: Scorer signature: (layout, pair_qubits, num_front, num_ext,
#: lookahead_weight, decay) -> (ids, costs, base_cost)
Scorer = Callable[
    [np.ndarray, np.ndarray, int, int, float, np.ndarray],
    Tuple[List[int], Optional[np.ndarray], float],
]


def score_stall_py(
    layout: np.ndarray,
    pair_qubits: np.ndarray,
    num_front: int,
    num_ext: int,
    lookahead_weight: float,
    decay: np.ndarray,
    incident_edge_ids: List[List[int]],
    edge_array: np.ndarray,
    distance: np.ndarray,
    penalty: Optional[np.ndarray] = None,
) -> Tuple[List[int], Optional[np.ndarray], float]:
    """Pure-numpy stall scoring (the reference arithmetic, verbatim).

    This is the historical in-router implementation: candidate SWAPs are the
    coupling edges incident to a front physical qubit, as sorted edge ids
    (edge ids are assigned in lexicographic edge order, so sorted ids == the
    reference's lexicographically sorted edge list); every sum is over small
    integer distances, so the vectorized reductions are exact.
    """
    num_pairs = num_front + num_ext
    physical_pairs = layout[pair_qubits]  # (2P,): q0 block then q1 block
    candidate_ids = set()
    for physical in physical_pairs[:num_front].tolist():
        candidate_ids.update(incident_edge_ids[physical])
    for physical in physical_pairs[num_pairs : num_pairs + num_front].tolist():
        candidate_ids.update(incident_edge_ids[physical])
    ids = sorted(candidate_ids)
    if not ids:
        return ids, None, 0.0
    cand = edge_array[ids]
    cand_a = cand[:, :1]
    cand_b = cand[:, 1:]

    trial = np.where(
        physical_pairs == cand_a,
        cand_b,
        np.where(physical_pairs == cand_b, cand_a, physical_pairs),
    )  # (C, 2P) physical positions after each candidate SWAP
    trial_distance = distance[trial[:, :num_pairs], trial[:, num_pairs:]]
    base_distance = distance[physical_pairs[:num_pairs], physical_pairs[num_pairs:]]
    base_cost = base_distance[:num_front].sum() / num_front
    costs = trial_distance[:, :num_front].sum(axis=1) / num_front
    if num_ext:
        base_cost = base_cost + lookahead_weight * (
            base_distance[num_front:].sum() / num_ext
        )
        costs = costs + lookahead_weight * (
            trial_distance[:, num_front:].sum(axis=1) / num_ext
        )
    if penalty is not None:
        costs = costs + penalty[ids]
    costs = costs * decay[cand].max(axis=1)
    return ids, costs, float(base_cost)


def make_scorer(coupling_map, backend: str, noise=None) -> Scorer:
    """Build a stall scorer bound to ``coupling_map`` for ``backend``.

    ``backend`` must be ``"py"`` or ``"native"`` (already resolved by
    :func:`repro.kernels.select_backend`); the native path raises
    ``RuntimeError`` if the extension cannot be imported.  ``noise`` (a
    :class:`~repro.compiler.routing.noise.NoiseRoutingModel`) swaps the
    hop-count matrix for the calibration-weighted one and adds the per-edge
    SWAP surcharge; ``None`` keeps the historical distance-only arithmetic
    byte-for-byte.
    """
    if noise is not None:
        distance = noise.distance
        penalty = noise.swap_penalty
    else:
        distance = coupling_map.distance_matrix()
        penalty = None
    edge_array = coupling_map.edge_array()
    if backend == "native":
        from repro.kernels import _native_module

        native = _native_module()
        incident_ptr, incident_ids = coupling_map.incident_edge_csr()
        num_physical = coupling_map.num_qubits
        num_edges = edge_array.shape[0]
        # Scratch buffers reused across stalls: a per-edge mark byte for the
        # candidate set, plus the id/cost output arrays.
        mark = np.zeros(num_edges, dtype=np.uint8)
        ids_out = np.empty(num_edges, dtype=np.int64)
        costs_out = np.empty(num_edges, dtype=np.float64)

        if noise is not None:

            def scorer(layout, pair_qubits, num_front, num_ext, lookahead_weight, decay):
                count, base_cost = native.score_stall_noise(
                    layout,
                    pair_qubits,
                    edge_array,
                    incident_ptr,
                    incident_ids,
                    distance,
                    penalty,
                    decay,
                    num_front,
                    num_ext,
                    num_physical,
                    lookahead_weight,
                    mark,
                    ids_out,
                    costs_out,
                )
                return ids_out[:count].tolist(), costs_out[:count], base_cost

            return scorer

        def scorer(layout, pair_qubits, num_front, num_ext, lookahead_weight, decay):
            count, base_cost = native.score_stall(
                layout,
                pair_qubits,
                edge_array,
                incident_ptr,
                incident_ids,
                distance,
                decay,
                num_front,
                num_ext,
                num_physical,
                lookahead_weight,
                mark,
                ids_out,
                costs_out,
            )
            return ids_out[:count].tolist(), costs_out[:count], base_cost

        return scorer

    incident_edge_ids = coupling_map.incident_edge_ids()

    def scorer(layout, pair_qubits, num_front, num_ext, lookahead_weight, decay):
        return score_stall_py(
            layout,
            pair_qubits,
            num_front,
            num_ext,
            lookahead_weight,
            decay,
            incident_edge_ids,
            edge_array,
            distance,
            penalty,
        )

    return scorer
