/* Compiled SABRE stall-scoring kernel.
 *
 * One call evaluates a full routing stall: gather the physical positions of
 * the front/lookahead logical pairs through the layout, collect the
 * candidate coupling edges incident to a front physical qubit (as ascending
 * edge ids, via a per-edge scratch mark array), and compute the pre-SWAP
 * base cost plus the decay-weighted heuristic cost of every candidate.
 *
 * Bit-identity contract with the numpy path (repro.kernels.sabre_score):
 *  - distance sums are over small non-negative int32 hop counts, accumulated
 *    in long long — exact in both backends;
 *  - the float arithmetic replicates numpy's elementwise order exactly:
 *    cost = (double)sum_front / F, then += w * ((double)sum_ext / E), then
 *    *= max(decay[a], decay[b]);
 *  - trial positions substitute edge endpoint a before b, matching the
 *    nested np.where;
 *  - candidate ids are emitted in ascending order (the scan over the mark
 *    array), matching sorted(set(...)).
 *
 * The kernel uses only the buffer protocol (no numpy C API), so it builds
 * against any CPython >= 3.9 with no third-party headers.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>

#define PP_STACK_SLOTS 256

static PyObject *
score_stall(PyObject *self, PyObject *args)
{
    Py_buffer layout, pair_qubits, edge_array, incident_ptr, incident_ids;
    Py_buffer distance, decay, mark, ids_out, costs_out;
    Py_ssize_t num_front, num_ext, num_physical;
    double lookahead_weight;

    if (!PyArg_ParseTuple(
            args, "y*y*y*y*y*y*y*nnndw*w*w*:score_stall",
            &layout, &pair_qubits, &edge_array, &incident_ptr, &incident_ids,
            &distance, &decay, &num_front, &num_ext, &num_physical,
            &lookahead_weight, &mark, &ids_out, &costs_out))
        return NULL;

    PyObject *result = NULL;
    int64_t pp_stack[PP_STACK_SLOTS];
    int64_t *pp = pp_stack;

    const int64_t *lay = (const int64_t *)layout.buf;
    const int64_t *pq = (const int64_t *)pair_qubits.buf;
    const int64_t *edges = (const int64_t *)edge_array.buf;
    const int64_t *iptr = (const int64_t *)incident_ptr.buf;
    const int64_t *iids = (const int64_t *)incident_ids.buf;
    const int32_t *dist = (const int32_t *)distance.buf;
    const double *dec = (const double *)decay.buf;
    uint8_t *mk = (uint8_t *)mark.buf;
    int64_t *ids = (int64_t *)ids_out.buf;
    double *costs = (double *)costs_out.buf;

    Py_ssize_t num_pairs = num_front + num_ext;
    Py_ssize_t num_edges = mark.len; /* itemsize 1 */

    if (num_front <= 0
        || pair_qubits.len < (Py_ssize_t)(2 * num_pairs * sizeof(int64_t))
        || incident_ptr.len < (Py_ssize_t)((num_physical + 1) * sizeof(int64_t))
        || distance.len < (Py_ssize_t)(num_physical * num_physical * sizeof(int32_t))
        || decay.len < (Py_ssize_t)(num_physical * sizeof(double))
        || edge_array.len < (Py_ssize_t)(2 * num_edges * sizeof(int64_t))
        || ids_out.len < (Py_ssize_t)(num_edges * sizeof(int64_t))
        || costs_out.len < (Py_ssize_t)(num_edges * sizeof(double))) {
        PyErr_SetString(PyExc_ValueError, "score_stall: inconsistent buffer sizes");
        goto done;
    }

    if (2 * num_pairs > PP_STACK_SLOTS) {
        pp = (int64_t *)PyMem_Malloc(2 * num_pairs * sizeof(int64_t));
        if (pp == NULL) {
            PyErr_NoMemory();
            goto done;
        }
    }
    for (Py_ssize_t i = 0; i < 2 * num_pairs; i++)
        pp[i] = lay[pq[i]];

    /* Candidate edges incident to a front physical qubit, ascending. */
    for (Py_ssize_t i = 0; i < num_front; i++) {
        int64_t p = pp[i];
        for (int64_t j = iptr[p]; j < iptr[p + 1]; j++)
            mk[iids[j]] = 1;
        p = pp[num_pairs + i];
        for (int64_t j = iptr[p]; j < iptr[p + 1]; j++)
            mk[iids[j]] = 1;
    }
    Py_ssize_t count = 0;
    for (Py_ssize_t e = 0; e < num_edges; e++) {
        if (mk[e]) {
            ids[count++] = (int64_t)e;
            mk[e] = 0;
        }
    }

    long long base_front = 0, base_ext = 0;
    for (Py_ssize_t i = 0; i < num_pairs; i++) {
        int32_t d = dist[pp[i] * num_physical + pp[num_pairs + i]];
        if (i < num_front)
            base_front += d;
        else
            base_ext += d;
    }
    double base_cost = (double)base_front / (double)num_front;
    if (num_ext)
        base_cost += lookahead_weight * ((double)base_ext / (double)num_ext);

    for (Py_ssize_t c = 0; c < count; c++) {
        int64_t a = edges[2 * ids[c]];
        int64_t b = edges[2 * ids[c] + 1];
        long long sum_front = 0, sum_ext = 0;
        for (Py_ssize_t i = 0; i < num_pairs; i++) {
            int64_t p0 = pp[i];
            int64_t p1 = pp[num_pairs + i];
            p0 = (p0 == a) ? b : ((p0 == b) ? a : p0);
            p1 = (p1 == a) ? b : ((p1 == b) ? a : p1);
            int32_t d = dist[p0 * num_physical + p1];
            if (i < num_front)
                sum_front += d;
            else
                sum_ext += d;
        }
        double cost = (double)sum_front / (double)num_front;
        if (num_ext)
            cost += lookahead_weight * ((double)sum_ext / (double)num_ext);
        double da = dec[a], db = dec[b];
        cost *= (da > db) ? da : db;
        costs[c] = cost;
    }

    result = Py_BuildValue("nd", count, base_cost);

done:
    if (pp != pp_stack)
        PyMem_Free(pp);
    PyBuffer_Release(&layout);
    PyBuffer_Release(&pair_qubits);
    PyBuffer_Release(&edge_array);
    PyBuffer_Release(&incident_ptr);
    PyBuffer_Release(&incident_ids);
    PyBuffer_Release(&distance);
    PyBuffer_Release(&decay);
    PyBuffer_Release(&mark);
    PyBuffer_Release(&ids_out);
    PyBuffer_Release(&costs_out);
    return result;
}

/* Calibration-weighted variant of score_stall.
 *
 * Identical control flow and float-operation order, with two differences
 * mirroring repro.compiler.routing.noise:
 *  - the distance matrix holds quantized *weighted* shortest-path lengths as
 *    int64 (still exact in long long sums: entries stay below ~2**36);
 *  - each candidate pays an int64 per-edge SWAP surcharge, added after the
 *    lookahead term and before the decay multiply.  The base cost never
 *    includes a penalty (it is the cost of *not* swapping).
 * Under a uniform calibration every distance is exactly (1 << 20) times the
 * hop count and every penalty is zero, so the costs are exact power-of-two
 * multiples of score_stall's and candidate selection is bit-identical.
 */
static PyObject *
score_stall_noise(PyObject *self, PyObject *args)
{
    Py_buffer layout, pair_qubits, edge_array, incident_ptr, incident_ids;
    Py_buffer distance, penalty, decay, mark, ids_out, costs_out;
    Py_ssize_t num_front, num_ext, num_physical;
    double lookahead_weight;

    if (!PyArg_ParseTuple(
            args, "y*y*y*y*y*y*y*y*nnndw*w*w*:score_stall_noise",
            &layout, &pair_qubits, &edge_array, &incident_ptr, &incident_ids,
            &distance, &penalty, &decay, &num_front, &num_ext, &num_physical,
            &lookahead_weight, &mark, &ids_out, &costs_out))
        return NULL;

    PyObject *result = NULL;
    int64_t pp_stack[PP_STACK_SLOTS];
    int64_t *pp = pp_stack;

    const int64_t *lay = (const int64_t *)layout.buf;
    const int64_t *pq = (const int64_t *)pair_qubits.buf;
    const int64_t *edges = (const int64_t *)edge_array.buf;
    const int64_t *iptr = (const int64_t *)incident_ptr.buf;
    const int64_t *iids = (const int64_t *)incident_ids.buf;
    const int64_t *dist = (const int64_t *)distance.buf;
    const int64_t *pen = (const int64_t *)penalty.buf;
    const double *dec = (const double *)decay.buf;
    uint8_t *mk = (uint8_t *)mark.buf;
    int64_t *ids = (int64_t *)ids_out.buf;
    double *costs = (double *)costs_out.buf;

    Py_ssize_t num_pairs = num_front + num_ext;
    Py_ssize_t num_edges = mark.len; /* itemsize 1 */

    if (num_front <= 0
        || pair_qubits.len < (Py_ssize_t)(2 * num_pairs * sizeof(int64_t))
        || incident_ptr.len < (Py_ssize_t)((num_physical + 1) * sizeof(int64_t))
        || distance.len < (Py_ssize_t)(num_physical * num_physical * sizeof(int64_t))
        || penalty.len < (Py_ssize_t)(num_edges * sizeof(int64_t))
        || decay.len < (Py_ssize_t)(num_physical * sizeof(double))
        || edge_array.len < (Py_ssize_t)(2 * num_edges * sizeof(int64_t))
        || ids_out.len < (Py_ssize_t)(num_edges * sizeof(int64_t))
        || costs_out.len < (Py_ssize_t)(num_edges * sizeof(double))) {
        PyErr_SetString(PyExc_ValueError,
                        "score_stall_noise: inconsistent buffer sizes");
        goto done;
    }

    if (2 * num_pairs > PP_STACK_SLOTS) {
        pp = (int64_t *)PyMem_Malloc(2 * num_pairs * sizeof(int64_t));
        if (pp == NULL) {
            PyErr_NoMemory();
            goto done;
        }
    }
    for (Py_ssize_t i = 0; i < 2 * num_pairs; i++)
        pp[i] = lay[pq[i]];

    /* Candidate edges incident to a front physical qubit, ascending. */
    for (Py_ssize_t i = 0; i < num_front; i++) {
        int64_t p = pp[i];
        for (int64_t j = iptr[p]; j < iptr[p + 1]; j++)
            mk[iids[j]] = 1;
        p = pp[num_pairs + i];
        for (int64_t j = iptr[p]; j < iptr[p + 1]; j++)
            mk[iids[j]] = 1;
    }
    Py_ssize_t count = 0;
    for (Py_ssize_t e = 0; e < num_edges; e++) {
        if (mk[e]) {
            ids[count++] = (int64_t)e;
            mk[e] = 0;
        }
    }

    long long base_front = 0, base_ext = 0;
    for (Py_ssize_t i = 0; i < num_pairs; i++) {
        int64_t d = dist[pp[i] * num_physical + pp[num_pairs + i]];
        if (i < num_front)
            base_front += d;
        else
            base_ext += d;
    }
    double base_cost = (double)base_front / (double)num_front;
    if (num_ext)
        base_cost += lookahead_weight * ((double)base_ext / (double)num_ext);

    for (Py_ssize_t c = 0; c < count; c++) {
        int64_t a = edges[2 * ids[c]];
        int64_t b = edges[2 * ids[c] + 1];
        long long sum_front = 0, sum_ext = 0;
        for (Py_ssize_t i = 0; i < num_pairs; i++) {
            int64_t p0 = pp[i];
            int64_t p1 = pp[num_pairs + i];
            p0 = (p0 == a) ? b : ((p0 == b) ? a : p0);
            p1 = (p1 == a) ? b : ((p1 == b) ? a : p1);
            int64_t d = dist[p0 * num_physical + p1];
            if (i < num_front)
                sum_front += d;
            else
                sum_ext += d;
        }
        double cost = (double)sum_front / (double)num_front;
        if (num_ext)
            cost += lookahead_weight * ((double)sum_ext / (double)num_ext);
        cost += (double)pen[ids[c]];
        double da = dec[a], db = dec[b];
        cost *= (da > db) ? da : db;
        costs[c] = cost;
    }

    result = Py_BuildValue("nd", count, base_cost);

done:
    if (pp != pp_stack)
        PyMem_Free(pp);
    PyBuffer_Release(&layout);
    PyBuffer_Release(&pair_qubits);
    PyBuffer_Release(&edge_array);
    PyBuffer_Release(&incident_ptr);
    PyBuffer_Release(&incident_ids);
    PyBuffer_Release(&distance);
    PyBuffer_Release(&penalty);
    PyBuffer_Release(&decay);
    PyBuffer_Release(&mark);
    PyBuffer_Release(&ids_out);
    PyBuffer_Release(&costs_out);
    return result;
}

static PyMethodDef sabre_native_methods[] = {
    {"score_stall", score_stall, METH_VARARGS,
     "Evaluate one SABRE routing stall: candidate edge ids + heuristic costs.\n"
     "Returns (count, base_cost); ids/costs land in the caller's out buffers."},
    {"score_stall_noise", score_stall_noise, METH_VARARGS,
     "Calibration-weighted stall scoring: int64 weighted distances plus a\n"
     "per-edge SWAP surcharge.  Same contract as score_stall."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef sabre_native_module = {
    PyModuleDef_HEAD_INIT,
    "_sabre_native",
    "Compiled SABRE stall-scoring kernel (buffer-protocol only).",
    -1,
    sabre_native_methods,
};

PyMODINIT_FUNC
PyInit__sabre_native(void)
{
    return PyModule_Create(&sabre_native_module);
}
