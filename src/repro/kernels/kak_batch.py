"""Batched SU(4)/KAK numerics.

:func:`kak_decompose_batch` decomposes N two-qubit unitaries with vectorized
(gufunc) linear algebra — one ``det``/``eigh``/``svd``/matmul call over the
``(N, 4, 4)`` stack instead of N scalar calls — eliminating the per-call
numpy dispatch overhead that dominates one-at-a-time
:func:`repro.linalg.weyl.kak_decompose`.

Two properties make the batch path safe to wire into the compiler:

* **Composition independence.**  Every batched operation (stacked LAPACK
  gufuncs, broadcast matmuls, elementwise ufuncs) processes each item
  independently, so an item's decomposition never depends on which other
  matrices share its batch.  Callers (the finalize pass, block
  consolidation) may therefore group work differently between runs — e.g. a
  from-scratch compile batches every block while an incremental recompile
  batches only the memo misses — without perturbing any result.
* **Exact-bytes interning.**  Inputs are deduplicated on their exact matrix
  bytes before any numerics run (identical fused blocks recur heavily across
  benchmark programs), and the per-family interning statistics are exposed
  through :func:`batch_stats` for the perf harness.

The per-item arithmetic mirrors the scalar ``kak_decompose`` step for step
(same mixing angle, same residue fix, same canonicalization), and the two
paths agree to 1e-12 on every coordinate/local factor across the benchmark
suite (property-tested).  Batch results are nevertheless kept out of the
scalar path's synthesis-cache namespace (context tag ``("kak", "batch")``
instead of ``("kak",)``) so the two populations can never alias on a
platform where stacked and scalar LAPACK calls round differently.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from repro.linalg.constants import COORD_TO_PHASE, MAGIC_BASIS, MAGIC_BASIS_DAG
from repro.linalg import weyl as _weyl
from repro.linalg.weyl import (
    KAKDecomposition,
    _canonicalize_record,
    _DecompositionRecord,
    _phases_to_coordinates,
    _simultaneously_diagonalize,
)

__all__ = ["kak_decompose_batch", "batch_stats", "reset_batch_stats"]

#: First mixing angle of the simultaneous diagonalization — must match the
#: deterministic attempt-0 angle of ``weyl._simultaneously_diagonalize`` so
#: the batched first attempt is the same computation as the scalar one.
_FIRST_ANGLE = 0.61803398875

_STATS: Dict[str, int] = {
    "batches": 0,
    "inputs": 0,
    "unique": 0,
    "interned": 0,
    "cache_hits": 0,
}


def batch_stats() -> Dict[str, int]:
    """Counters of the batch collector (inputs, exact-bytes dedup, cache).

    ``interned`` counts inputs that were deduplicated against another batch
    member by exact matrix bytes; ``cache_hits`` counts unique matrices that
    were served from an installed KAK cache without running the numerics.
    """
    return dict(_STATS)


def reset_batch_stats() -> None:
    """Zero the batch counters (the perf harness brackets runs with this)."""
    for key in _STATS:
        _STATS[key] = 0


def _diagonalize_batch(m2: np.ndarray) -> np.ndarray:
    """Batched :func:`weyl._simultaneously_diagonalize` over ``(N, 4, 4)``.

    The deterministic first attempt (fixed mixing angle) is evaluated for
    the whole stack in one ``eigh`` call; the measure-zero items it fails to
    separate fall back to the scalar retry loop with the same seeded rng the
    scalar path would use.
    """
    real = np.real(m2)
    imag = np.imag(m2)
    mix = math.cos(_FIRST_ANGLE) * real + math.sin(_FIRST_ANGLE) * imag
    _, p = np.linalg.eigh(mix)
    diag = p.transpose(0, 2, 1) @ m2 @ p
    off = np.abs(diag)
    index = np.arange(4)
    off[:, index, index] = 0.0
    ok = off.reshape(len(m2), -1).max(axis=1) < 1e-9
    dets = np.linalg.det(p)
    flip = ok & (dets < 0)
    p[flip, :, 0] = -p[flip, :, 0]
    for i in np.nonzero(~ok)[0]:
        rng = np.random.default_rng(20260614)
        p[i] = _simultaneously_diagonalize(m2[i], rng)
    return p


def _decompose_tensor_product_batch(matrices: np.ndarray, atol: float = 1e-6):
    """Batched :func:`weyl.decompose_tensor_product` over ``(N, 4, 4)``."""
    n = matrices.shape[0]
    m = np.asarray(matrices, dtype=complex)
    rearranged = m.reshape(n, 2, 2, 2, 2).transpose(0, 1, 3, 2, 4).reshape(n, 4, 4)
    u, s, vh = np.linalg.svd(rearranged)
    limit = max(atol, 1e-7) * np.maximum(s[:, 0], 1.0)
    if np.any(s[:, 1] > limit):
        index = int(np.argmax(s[:, 1] - limit))
        raise ValueError(
            "matrix is not a tensor product of single-qubit operators "
            f"(batch item {index}, second singular value {s[index, 1]:.3e})"
        )
    root = np.sqrt(s[:, 0])
    a = (u[:, :, 0] * root[:, None]).reshape(n, 2, 2)
    b = (vh[:, 0, :] * root[:, None]).reshape(n, 2, 2)
    det_a = np.linalg.det(a)
    det_b = np.linalg.det(b)
    if np.any(np.abs(det_a) < 1e-12) or np.any(np.abs(det_b) < 1e-12):
        raise ValueError("degenerate tensor-product factor")
    a = a / np.sqrt(det_a)[:, None, None]
    b = b / np.sqrt(det_b)[:, None, None]
    kron = np.einsum("nij,nkl->nikjl", a, b).reshape(n, 4, 4)
    phase = np.trace(kron.conj().transpose(0, 2, 1) @ m, axis1=1, axis2=2) / 4.0
    norm = np.abs(phase)
    if np.any(norm < 1e-12):
        raise ValueError("tensor-product phase could not be determined")
    phase = phase / norm
    return phase, a, b


def _reconstruct_batch(records: Sequence[KAKDecomposition]) -> np.ndarray:
    """Stack of reconstructed unitaries of ``records`` (validation only)."""
    n = len(records)
    l1 = np.stack([rec.l1 for rec in records])
    l2 = np.stack([rec.l2 for rec in records])
    r1 = np.stack([rec.r1 for rec in records])
    r2 = np.stack([rec.r2 for rec in records])
    left = np.einsum("nij,nkl->nikjl", l1, l2).reshape(n, 4, 4)
    right = np.einsum("nij,nkl->nikjl", r1, r2).reshape(n, 4, 4)
    coords = np.array([[rec.x, rec.y, rec.z] for rec in records], dtype=float)
    phases = coords @ COORD_TO_PHASE.T  # (N, 4)
    can = MAGIC_BASIS @ (np.exp(-1j * phases)[:, :, None] * MAGIC_BASIS_DAG)
    gp = np.array([rec.global_phase for rec in records], dtype=complex)
    return gp[:, None, None] * (left @ can @ right)


def _kak_decompose_stack(stack: np.ndarray, validate: bool) -> List[KAKDecomposition]:
    """Decompose a deduplicated ``(N, 4, 4)`` stack (the batched numerics)."""
    n = stack.shape[0]
    dets = np.linalg.det(stack)
    if np.any(np.abs(np.abs(dets) - 1.0) > 1e-6):
        raise ValueError("matrix is not unitary (|det| != 1)")
    det_root = dets ** (-0.25)
    u_su = stack * det_root[:, None, None]
    global_phase = 1.0 / det_root

    um = MAGIC_BASIS_DAG @ u_su @ MAGIC_BASIS
    m2 = um.transpose(0, 2, 1) @ um
    p = _diagonalize_batch(m2)
    d = np.einsum("nii->ni", p.transpose(0, 2, 1) @ m2 @ p)
    thetas = np.angle(d) / 2.0
    # Enforce sum(thetas) == 0 (mod 2 pi) per item — scalar Python floats so
    # the residue branch is the exact computation of the scalar path.
    for i in range(n):
        total = float(np.sum(thetas[i]))
        residue = (total + math.pi) % (2.0 * math.pi) - math.pi
        if abs(residue) > 1e-6:
            thetas[i, 3] += math.pi if residue < 0 else -math.pi

    a_diag = np.exp(1j * thetas)
    conj = a_diag.conj()
    diag_mats = np.zeros((n, 4, 4), dtype=complex)
    index = np.arange(4)
    diag_mats[:, index, index] = conj
    k1 = um @ p @ diag_mats
    if np.max(np.abs(np.imag(k1))) > 1e-6:
        raise np.linalg.LinAlgError("KAK factor K1 is not real orthogonal")
    k1 = np.real(k1)

    left_local = MAGIC_BASIS @ k1 @ MAGIC_BASIS_DAG
    right_local = MAGIC_BASIS @ p.transpose(0, 2, 1) @ MAGIC_BASIS_DAG
    phase_left, l1s, l2s = _decompose_tensor_product_batch(left_local)
    phase_right, r1s, r2s = _decompose_tensor_product_batch(right_local)

    results: List[KAKDecomposition] = []
    for i in range(n):
        coords = _phases_to_coordinates(thetas[i])
        gp = global_phase[i] * phase_left[i] * phase_right[i]
        record = _DecompositionRecord(gp, l1s[i], l2s[i], coords, r1s[i], r2s[i])
        _canonicalize_record(record)
        cx, cy, cz = record.coords
        results.append(
            KAKDecomposition(
                global_phase=complex(record.phase),
                l1=record.l1,
                l2=record.l2,
                r1=record.r1,
                r2=record.r2,
                x=float(cx),
                y=float(cy),
                z=float(cz),
            )
        )
    if validate:
        errors = np.linalg.norm(
            (_reconstruct_batch(results) - stack).reshape(n, -1), axis=1
        )
        if np.any(errors > 1e-6):
            worst = float(errors.max())
            raise ValueError(f"KAK reconstruction error too large: {worst:.3e}")
    return results


def kak_decompose_batch(
    unitaries: Sequence[np.ndarray], validate: bool = True
) -> List[KAKDecomposition]:
    """Decompose N two-qubit unitaries in vectorized linear-algebra calls.

    Semantically equivalent to ``[kak_decompose(u) for u in unitaries]`` —
    each returned :class:`KAKDecomposition` satisfies the same reconstruction
    bound and lands on the same Weyl-chamber representative — but the batch
    runs the dense numerics once over the deduplicated ``(N, 4, 4)`` stack.
    Exact-bytes duplicates share one decomposition object; an installed KAK
    cache (:func:`repro.linalg.weyl.install_kak_cache`) is consulted under
    the batch-specific key context ``("kak", "batch")``.
    """
    matrices = [np.ascontiguousarray(u, dtype=complex) for u in unitaries]
    for matrix in matrices:
        if matrix.shape != (4, 4):
            raise ValueError(f"expected a 4x4 matrix, got shape {matrix.shape}")
    _STATS["batches"] += 1
    _STATS["inputs"] += len(matrices)
    if not matrices:
        return []

    unique: Dict[bytes, List[int]] = {}
    for position, matrix in enumerate(matrices):
        unique.setdefault(matrix.tobytes(), []).append(position)
    _STATS["unique"] += len(unique)
    _STATS["interned"] += len(matrices) - len(unique)

    results: List[KAKDecomposition] = [None] * len(matrices)  # type: ignore[list-item]
    cache = _weyl.installed_kak_cache()
    pending: List[tuple] = []  # (cache_key, member positions)
    if cache is not None:
        from repro.service.cache import unitary_fingerprint

        for positions in unique.values():
            matrix = matrices[positions[0]]
            cache_key = unitary_fingerprint(matrix, "kak", "batch")
            cached = cache.get(cache_key)
            if cached is not None:
                if validate and cached.reconstruction_error(matrix) > 1e-6:
                    raise ValueError("cached KAK reconstruction error too large")
                _STATS["cache_hits"] += 1
                for position in positions:
                    results[position] = cached
            else:
                pending.append((cache_key, positions))
    else:
        pending = [(None, positions) for positions in unique.values()]

    if pending:
        stack = np.stack([matrices[positions[0]] for _, positions in pending])
        decompositions = _kak_decompose_stack(stack, validate)
        for (cache_key, positions), decomposition in zip(pending, decompositions):
            if cache is not None and cache_key is not None:
                cache.put(cache_key, decomposition)
            for position in positions:
                results[position] = decomposition
    return results
