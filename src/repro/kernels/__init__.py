"""Optional native-speed kernels behind a pure-Python fallback.

This package hosts the compiler's hot numeric kernels in a form the rest of
the stack selects transparently (the CXLMemUring co-design pattern: an
optimized fast path layered behind an unchanged software interface with a
portable fallback):

* **SABRE stall scoring** — the candidate-edge gather/score loop of
  :class:`~repro.compiler.routing.sabre.SabreRouter`, available as a small C
  extension (:mod:`repro.kernels._sabre_native`, built opportunistically at
  install time) and as the reference numpy implementation
  (:mod:`repro.kernels.sabre_score`).  Both are bit-identical; candidate
  selection stays in the router.
* **Batched SU(4)/KAK numerics** — :func:`kak_decompose_batch` in
  :mod:`repro.kernels.kak_batch`, decomposing N interned 4x4 matrices per
  vectorized linalg call.
* **Batched gate application** — ``apply_gate_sequence`` lives with the
  simulator (:mod:`repro.simulators.statevector`) but is part of the same
  kernel layer: one cached-permutation transpose per gate instead of two.

Backend selection
-----------------
The ``REPRO_KERNELS`` environment variable picks the SABRE scoring backend:

* ``auto`` (default, also when unset): the native extension when it imports,
  otherwise the pure-Python fallback — a source install without a C compiler
  silently degrades to ``py``.
* ``py``: force the pure-Python fallback even when the extension exists
  (CI pins one job to this so the fallback never rots).
* ``native``: require the extension; raise ``RuntimeError`` if unavailable.

The variable is re-read on every selection (router construction), so tests
can flip backends with a plain ``monkeypatch.setenv``.  Use
:func:`backend_info` for introspection.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.kernels.kak_batch import (
    batch_stats,
    kak_decompose_batch,
    reset_batch_stats,
)
from repro.kernels.sabre_score import make_scorer, score_stall_py

__all__ = [
    "backend_info",
    "batch_stats",
    "kak_decompose_batch",
    "make_sabre_scorer",
    "reset_batch_stats",
    "score_stall_py",
    "select_backend",
]

_ENV_VAR = "REPRO_KERNELS"
_VALID_REQUESTS = ("auto", "py", "native")

#: Cached import of the native extension: unset / (module, None) / (None, err).
_NATIVE: Optional[tuple] = None


def _native_module():
    """Import (once) and return the native extension; raise if unavailable."""
    global _NATIVE
    if _NATIVE is None:
        try:
            from repro.kernels import _sabre_native  # type: ignore[attr-defined]

            _NATIVE = (_sabre_native, None)
        except ImportError as exc:  # pragma: no cover - depends on the build
            _NATIVE = (None, str(exc))
    module, error = _NATIVE
    if module is None:
        raise RuntimeError(
            f"the repro.kernels native extension is not available ({error}); "
            "build it with 'python setup.py build_ext --inplace' or set "
            f"{_ENV_VAR}=py"
        )
    return module


def _native_available() -> bool:
    try:
        _native_module()
    except RuntimeError:
        return False
    return True


def select_backend(override: Optional[str] = None) -> str:
    """Resolve the active scoring backend name (``"py"`` or ``"native"``).

    ``override`` takes precedence over the ``REPRO_KERNELS`` environment
    variable; ``"native"`` raises ``RuntimeError`` when the extension cannot
    be imported, ``"auto"`` degrades to ``"py"``.
    """
    requested = override if override is not None else os.environ.get(_ENV_VAR, "auto")
    requested = requested.strip().lower() or "auto"
    if requested not in _VALID_REQUESTS:
        raise ValueError(
            f"invalid {_ENV_VAR} value {requested!r}; expected one of {_VALID_REQUESTS}"
        )
    if requested == "py":
        return "py"
    if requested == "native":
        _native_module()  # raises with the import error when missing
        return "native"
    return "native" if _native_available() else "py"


def backend_info() -> Dict[str, Any]:
    """Introspection of the kernel layer for tooling and the perf harness."""
    requested = os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
    available = _native_available()
    module, error = _NATIVE if _NATIVE is not None else (None, None)
    try:
        backend = select_backend()
    except (RuntimeError, ValueError):
        backend = "py"
    return {
        "requested": requested,
        "backend": backend,
        "native_available": available,
        "native_module": getattr(module, "__file__", None),
        "native_error": error,
    }


def make_sabre_scorer(coupling_map, backend: Optional[str] = None, noise=None):
    """Stall scorer bound to ``coupling_map`` on the selected backend.

    See :mod:`repro.kernels.sabre_score` for the scorer contract.  The
    backend is resolved per call (cheap — once per routing run), so the
    environment override is honoured without reloads.  ``noise`` (a
    :class:`~repro.compiler.routing.noise.NoiseRoutingModel`) selects the
    calibration-weighted scoring path; a stale native extension built before
    ``score_stall_noise`` existed degrades to the pure-Python path under
    ``auto`` and raises under an explicit ``native`` request.
    """
    resolved = select_backend(backend)
    if noise is not None and resolved == "native":
        module = _native_module()
        if not hasattr(module, "score_stall_noise"):
            requested = (
                backend
                if backend is not None
                else os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
            )
            if requested == "native":
                raise RuntimeError(
                    "the repro.kernels native extension predates noise-aware "
                    "scoring (no score_stall_noise); rebuild it with "
                    f"'python setup.py build_ext --inplace' or set {_ENV_VAR}=py"
                )
            resolved = "py"
    return make_scorer(coupling_map, resolved, noise=noise)
