"""OpenQASM 2.0 interchange: dependency-free import/export.

This package makes external circuit corpora (MQT Bench, QASMBench,
Qiskit-exported programs) first-class inputs of the stack and lets any
compiled circuit leave it in a widely readable format:

* :func:`dumps` / :func:`dump` — serialize a
  :class:`~repro.circuits.circuit.QuantumCircuit` to OpenQASM 2.0 text /
  a file.  Deterministic, and exact: ``loads(dumps(c))`` is gate-for-gate
  identical to ``c`` (names, qubits, parameter floats).
* :func:`loads` / :func:`load` — parse OpenQASM 2.0 text / a file through
  a hand-written tokenizer and recursive-descent parser into a circuit.
  :func:`parse` returns the full :class:`~repro.qasm.parser.QasmProgram`
  including the ``creg``/``measure``/``barrier`` passthrough record.
* :class:`QasmError` — structured parse/serialization error with 1-based
  ``line``/``column`` (a :class:`ValueError` subclass).

See ``docs/qasm.md`` for the supported subset and the gate mapping table.
"""

from __future__ import annotations

import os
from typing import IO, Union

from repro.circuits.circuit import QuantumCircuit
from repro.qasm.emitter import dump, dumps
from repro.qasm.errors import QasmError
from repro.qasm.parser import QasmProgram, parse

__all__ = ["QasmError", "QasmProgram", "dump", "dumps", "load", "loads", "parse"]


def loads(text: str, name: str = "qasm") -> QuantumCircuit:
    """Parse OpenQASM 2.0 ``text`` into a :class:`QuantumCircuit`.

    ``measure``/``barrier`` statements are validated and dropped (use
    :func:`parse` to inspect them); everything unsupported raises
    :class:`QasmError` with the source line/column.
    """
    return parse(text, name=name).circuit


def load(file: Union[str, "os.PathLike[str]", IO[str]], name: str = None) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 file (path or text file object) into a circuit.

    The circuit is named after the file stem unless ``name`` is given;
    parse errors carry the filename.
    """
    if hasattr(file, "read"):
        text = file.read()
        filename = getattr(file, "name", None)
    else:
        filename = os.fspath(file)
        with open(filename, "r", encoding="utf-8") as handle:
            text = handle.read()
    if name is None:
        stem = os.path.splitext(os.path.basename(filename))[0] if filename else ""
        name = stem or "qasm"
    try:
        return loads(text, name=name)
    except QasmError as exc:
        if filename and exc.filename is None:
            raise exc.with_filename(filename) from None
        raise
