"""Recursive-descent importer for OpenQASM 2.0.

The grammar covered is the practical OpenQASM 2 subset used by benchmark
corpora (MQT Bench, QASMBench, Qiskit exports) and by this project's own
emitter:

* ``OPENQASM 2.0;`` header (optional) and ``include`` statements (the
  include file is not read; the qelib1 gate set is built in);
* ``qreg``/``creg`` declarations — multiple quantum registers are
  flattened onto one contiguous qubit index space in declaration order;
* gate applications over the built-in gate table (the qelib1 standard
  gates plus this project's extensions — see ``docs/qasm.md``), with full
  register broadcasting (``h q;``, ``cx q, r;``);
* parameter expressions: literals, ``pi``, ``+ - * / ^``, unary minus,
  parentheses and the qelib functions ``sin cos tan exp ln sqrt``;
* ``gate`` macro definitions, inlined at application time (definitions
  whose name collides with a built-in gate are parsed and ignored — the
  built-in semantics win, which keeps files that textually inline
  ``qelib1.inc`` round-trip exact);
* ``barrier`` and ``measure`` passthrough: both are validated and
  recorded on the returned :class:`QasmProgram` but do not appear in the
  circuit (the circuit IR is measurement-free);
* ``opaque`` declarations; applying an opaque gate with no known unitary
  raises :class:`QasmError` unless a ``// repro.unitary`` pragma supplies
  its matrix, in which case it becomes a
  :class:`~repro.gates.gate.UnitaryGate` (bit-exact round-trip for fused
  blocks).

Everything else (``reset``, ``if``) raises a :class:`QasmError` carrying
the 1-based source line/column.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.gates import standard
from repro.gates.gate import Gate, UnitaryGate
from repro.qasm.errors import QasmError
from repro.qasm.lexer import Token, tokenize

__all__ = ["QasmProgram", "parse", "UNITARY_PRAGMA"]

#: Line prefix of the matrix pragma written by the emitter for
#: :class:`UnitaryGate` instructions (see ``repro.qasm.emitter``).
UNITARY_PRAGMA = "// repro.unitary"

_MAX_MACRO_DEPTH = 64


# ---------------------------------------------------------------------------
# Built-in gate table: qelib1 names, project extensions and common aliases.
# Each entry maps a QASM mnemonic to (num_params, arity, constructor).
# ---------------------------------------------------------------------------

_PI_2 = math.pi / 2.0

_BUILTINS: Dict[str, Tuple[int, int, Callable[..., Gate]]] = {
    # qelib1 single-qubit gates.
    "id": (0, 1, standard.i_gate),
    "x": (0, 1, standard.x_gate),
    "y": (0, 1, standard.y_gate),
    "z": (0, 1, standard.z_gate),
    "h": (0, 1, standard.h_gate),
    "s": (0, 1, standard.s_gate),
    "sdg": (0, 1, standard.sdg_gate),
    "t": (0, 1, standard.t_gate),
    "tdg": (0, 1, standard.tdg_gate),
    "sx": (0, 1, standard.sx_gate),
    "rx": (1, 1, standard.rx_gate),
    "ry": (1, 1, standard.ry_gate),
    "rz": (1, 1, standard.rz_gate),
    "p": (1, 1, standard.p_gate),
    "u1": (1, 1, standard.p_gate),
    "u2": (2, 1, lambda phi, lam: standard.u3_gate(_PI_2, phi, lam)),
    "u3": (3, 1, standard.u3_gate),
    "u": (3, 1, standard.u3_gate),
    "U": (3, 1, standard.u3_gate),
    # qelib1 multi-qubit gates.
    "cx": (0, 2, standard.cx_gate),
    "CX": (0, 2, standard.cx_gate),
    "cy": (0, 2, standard.cy_gate),
    "cz": (0, 2, standard.cz_gate),
    "ch": (0, 2, standard.ch_gate),
    "cp": (1, 2, standard.cp_gate),
    "cu1": (1, 2, standard.cp_gate),
    "crz": (1, 2, standard.crz_gate),
    "swap": (0, 2, standard.swap_gate),
    "rxx": (1, 2, standard.rxx_gate),
    "rzz": (1, 2, standard.rzz_gate),
    "ccx": (0, 3, standard.ccx_gate),
    "cswap": (0, 3, standard.cswap_gate),
    # Project extensions (declared as `opaque` by the emitter).
    "iswap": (0, 2, standard.iswap_gate),
    "sqisw": (0, 2, standard.sqisw_gate),
    "b": (0, 2, standard.b_gate),
    "cv": (0, 2, standard.cv_gate),
    "cvdg": (0, 2, standard.cvdg_gate),
    "ryy": (1, 2, standard.ryy_gate),
    "can": (3, 2, standard.can_gate),
    "ccz": (0, 3, standard.ccz_gate),
}

#: Multi-controlled X aliases with fixed control counts (qelib1 extras).
_MCX_ALIASES = {"c3x": 3, "c4x": 4}

#: Per-arity multi-controlled X symbols emitted by this project's exporter
#: (``mcx_3`` = 3 controls + 1 target), declared ``opaque`` in the header.
_MCX_NAME = re.compile(r"mcx_([1-9][0-9]*)")

_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
}

# ---------------------------------------------------------------------------
# Public result type.
# ---------------------------------------------------------------------------


@dataclass
class QasmProgram:
    """A parsed OpenQASM 2 program.

    ``circuit`` holds the gate content on the flattened qubit space;
    ``qregs``/``cregs`` record the declared registers in order (name ->
    size); ``measurements`` are the ``measure`` statements as
    ``(qubit, creg_name, creg_index)`` triples and ``barriers`` the
    qubit tuples of each ``barrier`` statement — both validated and
    passed through without entering the circuit.
    """

    circuit: QuantumCircuit
    qregs: Dict[str, int] = field(default_factory=dict)
    cregs: Dict[str, int] = field(default_factory=dict)
    measurements: List[Tuple[int, str, int]] = field(default_factory=list)
    barriers: List[Tuple[int, ...]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Macro bookkeeping.
# ---------------------------------------------------------------------------


@dataclass
class _MacroStmt:
    """One body statement of a ``gate`` definition (barriers are dropped)."""

    name: str
    param_exprs: List[Any]
    qarg_names: List[str]
    line: int
    column: int


@dataclass
class _GateMacro:
    name: str
    params: List[str]
    qargs: List[str]
    body: List[_MacroStmt]


#: Machine shape of a pragma line: ``// repro.unitary <symbol> <label> <hex>``.
#: Comments that merely *mention* the pragma (prose, wrong field count,
#: non-hex payload) must stay inert like any other QASM comment.
_PRAGMA_SHAPE = re.compile(
    r"([A-Za-z_][A-Za-z0-9_]*)\s+(\S+)\s+((?:[0-9a-fA-F]{2})+)"
)


def _scan_unitary_pragmas(text: str) -> Dict[str, UnitaryGate]:
    """Extract ``// repro.unitary <sym> <label> <hex>`` pragma comments."""
    import numpy as np

    unitaries: Dict[str, UnitaryGate] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        rest = line[len(UNITARY_PRAGMA):]
        # Token boundary: '// repro.unitaryish ...' is an ordinary comment.
        if not line.startswith(UNITARY_PRAGMA) or not rest[:1].isspace():
            continue
        match = _PRAGMA_SHAPE.fullmatch(rest.strip())
        if match is None:
            continue  # an ordinary comment mentioning the pragma
        symbol, label, payload = match.groups()
        raw_bytes = bytes.fromhex(payload)
        if len(raw_bytes) == 0 or len(raw_bytes) % 16:  # complex128 entries
            raise QasmError(
                f"repro.unitary pragma payload is {len(raw_bytes)} bytes, "
                "not a whole number of complex128 entries",
                lineno,
                1,
            )
        flat = np.frombuffer(raw_bytes, dtype=complex)
        dim = math.isqrt(flat.size)
        if dim * dim != flat.size or dim < 2 or dim & (dim - 1):
            raise QasmError(
                f"repro.unitary pragma matrix has {flat.size} entries, "
                "not a power-of-two square",
                lineno,
                1,
            )
        unitaries[symbol] = UnitaryGate(flat.reshape(dim, dim), label=label)
    return unitaries


# ---------------------------------------------------------------------------
# The parser.
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str, name: str = "qasm") -> None:
        self.tokens = tokenize(text)
        self.pos = 0
        self.name = name
        self.qregs: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: Dict[str, int] = {}
        self.macros: Dict[str, _GateMacro] = {}
        self.opaques: Dict[str, Tuple[int, int]] = {}  # name -> (n_params, arity)
        self.unitaries = _scan_unitary_pragmas(text)
        self.num_qubits = 0
        self.instructions: List[Instruction] = []
        self.measurements: List[Tuple[int, str, int]] = []
        self.barriers: List[Tuple[int, ...]] = []

    # -- token plumbing -----------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _next(self) -> Token:
        token = self.tokens[self.pos]
        if token.type != "eof":
            self.pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> "QasmError":
        token = token or self._peek()
        return QasmError(message, token.line, token.column)

    def _expect(self, type_: str, value: Optional[str] = None) -> Token:
        token = self._peek()
        if token.type != type_ or (value is not None and token.value != value):
            want = value if value is not None else type_
            got = token.value if token.type != "eof" else "end of input"
            raise self._error(f"expected {want!r}, found {got!r}", token)
        return self._next()

    def _expect_symbol(self, value: str) -> Token:
        return self._expect("symbol", value)

    # -- driver -------------------------------------------------------------
    def parse(self) -> QasmProgram:
        if self._peek().type == "id" and self._peek().value == "OPENQASM":
            self._parse_version()
        while self._peek().type != "eof":
            self._parse_statement()
        if not self.qregs:
            raise QasmError("QASM program declares no qubit register")
        circuit = QuantumCircuit(self.num_qubits, name=self.name)
        circuit.instructions.extend(self.instructions)
        return QasmProgram(
            circuit=circuit,
            qregs={name: size for name, (_, size) in self.qregs.items()},
            cregs=dict(self.cregs),
            measurements=self.measurements,
            barriers=self.barriers,
        )

    def _parse_version(self) -> None:
        self._expect("id", "OPENQASM")
        token = self._next()
        if token.type not in ("real", "nat") or float(token.value) != 2.0:
            raise self._error(
                f"unsupported OpenQASM version {token.value!r} (only 2.0 is supported)",
                token,
            )
        self._expect_symbol(";")

    def _parse_statement(self) -> None:
        token = self._peek()
        if token.type != "id":
            raise self._error(f"expected a statement, found {token.value!r}", token)
        keyword = token.value
        if keyword == "include":
            self._next()
            self._expect("string")
            self._expect_symbol(";")
        elif keyword in ("qreg", "creg"):
            self._parse_register(keyword)
        elif keyword == "gate":
            self._parse_gate_definition()
        elif keyword == "opaque":
            self._parse_opaque()
        elif keyword == "barrier":
            self._parse_barrier()
        elif keyword == "measure":
            self._parse_measure()
        elif keyword == "reset":
            raise self._error("reset statements are not supported (measurement-free IR)", token)
        elif keyword == "if":
            raise self._error("classically controlled operations (if) are not supported", token)
        elif keyword == "OPENQASM":
            raise self._error("OPENQASM header must be the first statement", token)
        else:
            self._parse_application()

    # -- declarations -------------------------------------------------------
    def _parse_register(self, kind: str) -> None:
        self._expect("id", kind)
        name_token = self._expect("id")
        name = name_token.value
        if name in self.qregs or name in self.cregs:
            raise self._error(f"register {name!r} is already declared", name_token)
        self._expect_symbol("[")
        size_token = self._expect("nat")
        size = int(size_token.value)
        if size < 1:
            raise self._error("register size must be at least 1", size_token)
        self._expect_symbol("]")
        self._expect_symbol(";")
        if kind == "qreg":
            self.qregs[name] = (self.num_qubits, size)
            self.num_qubits += size
        else:
            self.cregs[name] = size

    def _parse_idlist(self) -> List[Token]:
        names = [self._expect("id")]
        while self._peek().type == "symbol" and self._peek().value == ",":
            self._next()
            names.append(self._expect("id"))
        return names

    def _parse_gate_definition(self) -> None:
        self._expect("id", "gate")
        name_token = self._expect("id")
        name = name_token.value
        params: List[str] = []
        if self._peek().type == "symbol" and self._peek().value == "(":
            self._next()
            if not (self._peek().type == "symbol" and self._peek().value == ")"):
                params = [token.value for token in self._parse_idlist()]
            self._expect_symbol(")")
        qargs = [token.value for token in self._parse_idlist()]
        if len(set(qargs)) != len(qargs):
            raise self._error(f"duplicate qubit argument in gate {name!r}", name_token)
        self._expect_symbol("{")
        body: List[_MacroStmt] = []
        formals = set(qargs)
        bound = set(params)
        while not (self._peek().type == "symbol" and self._peek().value == "}"):
            token = self._peek()
            if token.type != "id":
                raise self._error(f"expected a gate body statement, found {token.value!r}", token)
            if token.value == "barrier":
                self._next()
                for arg in self._parse_idlist():
                    if arg.value not in formals:
                        raise self._error(
                            f"unknown qubit argument {arg.value!r} in gate body", arg
                        )
                self._expect_symbol(";")
                continue
            stmt = self._parse_macro_statement(formals, bound)
            body.append(stmt)
        self._expect_symbol("}")
        shadowed = name in _BUILTINS or name in _MCX_ALIASES or name == "mcx"
        if not shadowed:
            if name in self.macros:
                raise self._error(f"gate {name!r} is already defined", name_token)
            self.macros[name] = _GateMacro(name, params, qargs, body)

    def _parse_macro_statement(self, formals: set, bound_params: set) -> _MacroStmt:
        name_token = self._expect("id")
        name = name_token.value
        param_exprs: List[Any] = []
        if self._peek().type == "symbol" and self._peek().value == "(":
            self._next()
            if not (self._peek().type == "symbol" and self._peek().value == ")"):
                param_exprs.append(self._parse_expression())
                while self._peek().type == "symbol" and self._peek().value == ",":
                    self._next()
                    param_exprs.append(self._parse_expression())
            self._expect_symbol(")")
        qarg_tokens = self._parse_idlist()
        self._expect_symbol(";")
        for expr in param_exprs:
            for free_name, free_token in _free_identifiers(expr):
                if free_name not in bound_params:
                    raise QasmError(
                        f"undefined parameter {free_name!r} in gate body",
                        free_token.line,
                        free_token.column,
                    )
        qarg_names = []
        for token in qarg_tokens:
            if token.value not in formals:
                raise self._error(f"unknown qubit argument {token.value!r} in gate body", token)
            qarg_names.append(token.value)
        # Declaration-before-use: the callee must already be resolvable, which
        # also makes recursive (cyclic) macro definitions impossible.
        if not self._resolvable(name):
            raise self._error(f"unknown gate {name!r} in gate body", name_token)
        return _MacroStmt(
            name=name,
            param_exprs=param_exprs,
            qarg_names=qarg_names,
            line=name_token.line,
            column=name_token.column,
        )

    def _resolvable(self, name: str) -> bool:
        return (
            name in self.macros
            or name in _BUILTINS
            or name in _MCX_ALIASES
            or name == "mcx"
            or _MCX_NAME.fullmatch(name) is not None
            or name in self.unitaries
            or name in self.opaques
        )

    def _parse_opaque(self) -> None:
        self._expect("id", "opaque")
        name_token = self._expect("id")
        params: List[Token] = []
        if self._peek().type == "symbol" and self._peek().value == "(":
            self._next()
            if not (self._peek().type == "symbol" and self._peek().value == ")"):
                params = self._parse_idlist()
            self._expect_symbol(")")
        qargs = self._parse_idlist()
        self._expect_symbol(";")
        name = name_token.value
        if (
            name not in _BUILTINS
            and name not in _MCX_ALIASES
            and name != "mcx"
            and _MCX_NAME.fullmatch(name) is None
        ):
            self.opaques.setdefault(name, (len(params), len(qargs)))

    # -- passthrough statements --------------------------------------------
    def _parse_barrier(self) -> None:
        self._expect("id", "barrier")
        args = self._parse_arguments()
        self._expect_symbol(";")
        qubits: List[int] = []
        for reg_token, index in args:
            qubits.extend(self._resolve_qubits(reg_token, index))
        self.barriers.append(tuple(qubits))

    def _parse_measure(self) -> None:
        self._expect("id", "measure")
        q_token, q_index = self._parse_argument()
        self._expect_symbol("->")
        c_token, c_index = self._parse_argument()
        self._expect_symbol(";")
        qubits = self._resolve_qubits(q_token, q_index)
        creg = c_token.value
        if creg not in self.cregs:
            raise self._error(f"unknown classical register {creg!r}", c_token)
        size = self.cregs[creg]
        if c_index is None:
            bits = list(range(size))
        else:
            if c_index >= size:
                raise self._error(
                    f"index {c_index} out of range for register {creg!r} of size {size}",
                    c_token,
                )
            bits = [c_index]
        if len(qubits) != len(bits):
            raise self._error(
                f"measure width mismatch: {len(qubits)} qubit(s) -> {len(bits)} bit(s)",
                q_token,
            )
        self.measurements.extend(
            (qubit, creg, bit) for qubit, bit in zip(qubits, bits)
        )

    # -- gate applications ---------------------------------------------------
    def _parse_argument(self) -> Tuple[Token, Optional[int]]:
        token = self._expect("id")
        index: Optional[int] = None
        if self._peek().type == "symbol" and self._peek().value == "[":
            self._next()
            index_token = self._expect("nat")
            index = int(index_token.value)
            self._expect_symbol("]")
        return token, index

    def _parse_arguments(self) -> List[Tuple[Token, Optional[int]]]:
        args = [self._parse_argument()]
        while self._peek().type == "symbol" and self._peek().value == ",":
            self._next()
            args.append(self._parse_argument())
        return args

    def _resolve_qubits(self, token: Token, index: Optional[int]) -> List[int]:
        name = token.value
        if name not in self.qregs:
            raise self._error(f"unknown quantum register {name!r}", token)
        offset, size = self.qregs[name]
        if index is None:
            return list(range(offset, offset + size))
        if index >= size:
            raise self._error(
                f"index {index} out of range for register {name!r} of size {size}", token
            )
        return [offset + index]

    def _parse_application(self) -> None:
        name_token = self._expect("id")
        name = name_token.value
        params: List[float] = []
        if self._peek().type == "symbol" and self._peek().value == "(":
            self._next()
            if not (self._peek().type == "symbol" and self._peek().value == ")"):
                params.append(self._evaluate_top(self._parse_expression()))
                while self._peek().type == "symbol" and self._peek().value == ",":
                    self._next()
                    params.append(self._evaluate_top(self._parse_expression()))
            self._expect_symbol(")")
        args = self._parse_arguments()
        self._expect_symbol(";")

        # Register broadcasting: full-register args must agree on size n and
        # the statement expands to n instructions; indexed args are repeated.
        resolved = [
            (self._resolve_qubits(token, index), index is None and self.qregs[token.value][1] > 1)
            for token, index in args
        ]
        widths = {len(qubits) for qubits, broadcast in resolved if broadcast}
        if len(widths) > 1:
            raise self._error(
                f"mismatched register sizes in broadcast: {sorted(widths)}", name_token
            )
        repeat = widths.pop() if widths else 1
        for step in range(repeat):
            qubits = [
                qubit_list[step] if len(qubit_list) > 1 else qubit_list[0]
                for qubit_list, _ in resolved
            ]
            self._emit(name, params, qubits, name_token, depth=0)

    def _evaluate_top(self, expr: Any) -> float:
        return _evaluate(expr, {})

    def _emit(
        self,
        name: str,
        params: Sequence[float],
        qubits: Sequence[int],
        token: Token,
        depth: int,
    ) -> None:
        if depth > _MAX_MACRO_DEPTH:
            raise self._error(f"gate expansion deeper than {_MAX_MACRO_DEPTH} levels", token)
        macro = self.macros.get(name)
        if macro is not None:
            if len(params) != len(macro.params):
                raise self._error(
                    f"gate {name!r} takes {len(macro.params)} parameter(s), "
                    f"got {len(params)}",
                    token,
                )
            if len(qubits) != len(macro.qargs):
                raise self._error(
                    f"gate {name!r} acts on {len(macro.qargs)} qubit(s), got {len(qubits)}",
                    token,
                )
            env = dict(zip(macro.params, params))
            qubit_map = dict(zip(macro.qargs, qubits))
            for stmt in macro.body:
                values = [_evaluate(expr, env) for expr in stmt.param_exprs]
                body_token = Token("id", stmt.name, stmt.line, stmt.column)
                body_qubits = [qubit_map[qarg] for qarg in stmt.qarg_names]
                self._emit(stmt.name, values, body_qubits, body_token, depth + 1)
            return
        if name in _BUILTINS:
            n_params, arity, constructor = _BUILTINS[name]
            self._check_shape(name, token, len(params), n_params, len(qubits), arity)
            self._append(constructor(*params), qubits, token)
            return
        controls = _MCX_ALIASES.get(name)
        if controls is None:
            match = _MCX_NAME.fullmatch(name)
            if match:
                controls = int(match.group(1))
        if name == "mcx":
            controls = len(qubits) - 1
            if params:
                # An explicit control count is accepted but must agree.
                if len(params) != 1 or int(round(params[0])) != controls:
                    raise self._error(
                        f"mcx on {len(qubits)} qubits expects {controls} controls, "
                        f"got parameter(s) {tuple(params)}",
                        token,
                    )
            if controls < 1:
                raise self._error("mcx needs at least one control and one target", token)
        if controls is not None:
            if name != "mcx" and params:
                raise self._error(f"gate {name!r} takes no parameters", token)
            if len(qubits) != controls + 1:
                raise self._error(
                    f"gate {name!r} acts on {controls + 1} qubit(s), got {len(qubits)}",
                    token,
                )
            self._append(standard.mcx_gate(controls), qubits, token)
            return
        if name in self.unitaries:
            gate = self.unitaries[name]
            self._check_shape(name, token, len(params), 0, len(qubits), gate.num_qubits)
            self._append(gate, qubits, token)
            return
        if name in self.opaques:
            raise self._error(
                f"opaque gate {name!r} has no known unitary and cannot be imported",
                token,
            )
        raise self._error(f"unknown gate {name!r}", token)

    def _check_shape(
        self,
        name: str,
        token: Token,
        got_params: int,
        want_params: int,
        got_qubits: int,
        want_qubits: int,
    ) -> None:
        if got_params != want_params:
            raise self._error(
                f"gate {name!r} takes {want_params} parameter(s), got {got_params}", token
            )
        if got_qubits != want_qubits:
            raise self._error(
                f"gate {name!r} acts on {want_qubits} qubit(s), got {got_qubits}", token
            )

    def _append(self, gate: Gate, qubits: Sequence[int], token: Token) -> None:
        for param in gate.params:
            if not math.isfinite(param):
                raise self._error(f"non-finite gate parameter {param!r}", token)
        try:
            instruction = Instruction(gate, tuple(qubits))
        except ValueError as exc:
            raise self._error(str(exc), token) from None
        self.instructions.append(instruction)

    # -- parameter expressions ----------------------------------------------
    # AST nodes are tuples tagged with the source token:
    #   ("num", value, token) | ("param", name, token)
    #   ("neg", expr, token)  | ("call", fn_name, expr, token)
    #   ("binop", op, left, right, token)
    def _parse_expression(self) -> Any:
        expr = self._parse_term()
        while self._peek().type == "symbol" and self._peek().value in ("+", "-"):
            op_token = self._next()
            right = self._parse_term()
            expr = ("binop", op_token.value, expr, right, op_token)
        return expr

    def _parse_term(self) -> Any:
        expr = self._parse_factor()
        while self._peek().type == "symbol" and self._peek().value in ("*", "/"):
            op_token = self._next()
            right = self._parse_factor()
            expr = ("binop", op_token.value, expr, right, op_token)
        return expr

    def _parse_factor(self) -> Any:
        token = self._peek()
        if token.type == "symbol" and token.value in ("-", "+"):
            self._next()
            inner = self._parse_factor()
            return inner if token.value == "+" else ("neg", inner, token)
        return self._parse_power()

    def _parse_power(self) -> Any:
        base = self._parse_atom()
        if self._peek().type == "symbol" and self._peek().value == "^":
            op_token = self._next()
            exponent = self._parse_factor()  # right-associative
            return ("binop", "^", base, exponent, op_token)
        return base

    def _parse_atom(self) -> Any:
        token = self._next()
        if token.type in ("real", "nat"):
            return ("num", float(token.value), token)
        if token.type == "symbol" and token.value == "(":
            expr = self._parse_expression()
            self._expect_symbol(")")
            return expr
        if token.type == "id":
            if token.value == "pi":
                return ("num", math.pi, token)
            if token.value in _FUNCTIONS:
                self._expect_symbol("(")
                inner = self._parse_expression()
                self._expect_symbol(")")
                return ("call", token.value, inner, token)
            return ("param", token.value, token)
        raise self._error(
            f"expected a parameter expression, found {token.value or 'end of input'!r}",
            token,
        )


def _free_identifiers(expr: Any):
    """Yield ``(name, token)`` for every unbound identifier in an AST."""
    tag = expr[0]
    if tag == "param":
        yield expr[1], expr[2]
    elif tag == "neg":
        yield from _free_identifiers(expr[1])
    elif tag == "call":
        yield from _free_identifiers(expr[2])
    elif tag == "binop":
        yield from _free_identifiers(expr[2])
        yield from _free_identifiers(expr[3])


def _evaluate(expr: Any, env: Dict[str, float]) -> float:
    tag, token = expr[0], expr[-1]
    try:
        if tag == "num":
            return expr[1]
        if tag == "param":
            name = expr[1]
            if name not in env:
                raise QasmError(f"undefined parameter {name!r}", token.line, token.column)
            return env[name]
        if tag == "neg":
            return -_evaluate(expr[1], env)
        if tag == "call":
            return _FUNCTIONS[expr[1]](_evaluate(expr[2], env))
        op, left, right = expr[1], expr[2], expr[3]
        a = _evaluate(left, env)
        b = _evaluate(right, env)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0.0:
                raise QasmError("division by zero in parameter expression", token.line, token.column)
            return a / b
        result = a ** b
        if isinstance(result, complex):  # negative base, fractional exponent
            raise QasmError(
                "parameter expression has a complex value", token.line, token.column
            )
        return result
    except (ValueError, OverflowError, ZeroDivisionError) as exc:
        if isinstance(exc, QasmError):
            raise
        raise QasmError(
            f"invalid parameter expression: {exc}", token.line, token.column
        ) from None


def parse(text: str, name: str = "qasm") -> QasmProgram:
    """Parse OpenQASM 2.0 ``text`` into a :class:`QasmProgram`."""
    return _Parser(text, name=name).parse()
