"""The :class:`QasmError` exception.

Subclasses :class:`ValueError` so callers that used the pre-package
``repro.circuits.qasm`` helpers (which raised plain ``ValueError``) keep
working, while new code can catch ``QasmError`` and read the structured
``line``/``column`` attributes.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["QasmError"]


class QasmError(ValueError):
    """An OpenQASM 2 parse, validation or serialization error.

    ``line`` and ``column`` are 1-based source positions (``None`` for
    errors with no location, e.g. serialization failures); ``filename``
    is attached by :func:`repro.qasm.load` when parsing from a file.
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
        filename: Optional[str] = None,
    ) -> None:
        self.message = message
        self.line = line
        self.column = column
        self.filename = filename
        super().__init__(self._format())

    def _format(self) -> str:
        prefix = self.filename or ""
        if self.line is not None:
            prefix += f"{':' if prefix else 'line '}{self.line}"
            if self.column is not None:
                prefix += f":{self.column}" if self.filename else f", column {self.column}"
        return f"{prefix}: {self.message}" if prefix else self.message

    def with_filename(self, filename: str) -> "QasmError":
        """Copy of this error carrying the source ``filename``."""
        return QasmError(self.message, self.line, self.column, filename)
