"""OpenQASM 2.0 exporter.

Serializes a :class:`~repro.circuits.circuit.QuantumCircuit` so that
``loads(dumps(circuit))`` reproduces it gate for gate: same gate names,
same qubits, parameters recovered exactly (floats are printed with
``repr``, whose shortest-round-trip form parses back bit-identically).

Layout of the emitted program::

    OPENQASM 2.0;
    include "qelib1.inc";
    // <extension-gate notes>
    opaque can(x,y,z) a,b;          // one decl per non-qelib1 gate used
    // repro.unitary ru0 su4 <hex>  // matrix pragma per distinct UnitaryGate
    opaque ru0 a,b;
    qreg q[N];
    <one line per instruction>

Gates with no qelib1 definition (``can``, ``iswap``, ``sqisw``, ``b``,
``cv``, ``cvdg``, ``ryy``, ``ccz``) are declared ``opaque`` so external
parsers see well-formed QASM; this project's importer knows them natively.
``mcx`` gates are emitted as per-arity ``mcx_<k>`` symbols (k controls,
target last), each with its own opaque declaration; the importer maps
them back onto ``mcx_gate(k)``.  :class:`~repro.gates.gate.UnitaryGate`
instructions are emitted as opaque applications whose exact matrix bytes
ride in a ``// repro.unitary`` pragma, giving fused SU(4)/SU(8) blocks a
bit-exact round trip.
"""

from __future__ import annotations

import math
import os
from typing import IO, Dict, List, Tuple, Union

from repro.circuits.circuit import QuantumCircuit
from repro.gates.gate import UnitaryGate
from repro.qasm.errors import QasmError

__all__ = ["dumps", "dump"]

#: Gate names assumed to be defined by ``qelib1.inc`` (the Qiskit
#: distribution of the include file) — no declaration is emitted for these.
_QELIB1_NAMES = frozenset(
    {
        "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
        "rx", "ry", "rz", "p", "u1", "u2", "u3", "u",
        "cx", "cy", "cz", "ch", "cp", "cu1", "cu3", "crz", "swap",
        "rxx", "rzz", "ccx", "cswap", "c3x", "c4x",
    }
)

#: Opaque declarations for this project's extension gates, emitted when used.
_EXTENSION_DECLS: Dict[str, str] = {
    "iswap": "opaque iswap a,b;",
    "sqisw": "opaque sqisw a,b;",
    "b": "opaque b a,b;",
    "cv": "opaque cv a,b;",
    "cvdg": "opaque cvdg a,b;",
    "ryy": "opaque ryy(theta) a,b;",
    "can": "opaque can(x,y,z) a,b;",
    "ccz": "opaque ccz a,b,c;",
}

#: Human-readable definitions for the extension comment block.
_EXTENSION_NOTES: Dict[str, str] = {
    "can": "can(x,y,z) = exp(-i (x XX + y YY + z ZZ)); the ReQISC SU(4) primitive",
    "sqisw": "sqisw = sqrt(iSWAP)",
    "b": "b = Can(pi/4, pi/8, 0) (the Berkeley gate)",
    "cv": "cv = controlled-sqrt(X); cvdg is its adjoint",
    "cvdg": "cvdg = adjoint of cv",
    "ryy": "ryy(theta) = exp(-i theta YY / 2)",
    "iswap": "iswap = the iSWAP gate",
    "ccz": "ccz = doubly-controlled Z",
    "mcx": "mcx_<k> = multi-controlled X with k controls (controls first, target last)",
}

#: Names the emitter knows how to print as plain named-gate lines.
_NAMED_EMITTABLE = frozenset(
    {
        "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
        "rx", "ry", "rz", "p", "u3",
        "cx", "cy", "cz", "ch", "cp", "crz", "swap", "iswap", "sqisw", "b",
        "cv", "cvdg", "can", "rxx", "ryy", "rzz",
        "ccx", "ccz", "cswap", "mcx",
    }
)


def _format_param(value: float) -> str:
    """Shortest exact decimal form of ``value`` (parses back bit-identical)."""
    if not math.isfinite(value):
        raise QasmError(f"cannot serialize non-finite gate parameter {value!r}")
    text = repr(float(value))
    # repr() of negative values starts with '-'; the importer's unary minus
    # reconstructs the same float, so no special casing is needed.
    return text


def _pragma_symbol(index: int) -> str:
    return f"ru{index}"


def dumps(circuit: QuantumCircuit) -> str:
    """Serialize ``circuit`` to OpenQASM 2.0 text."""
    used_names = set()
    mcx_arities = set()  # control counts, one opaque decl per arity used
    # Distinct unitary blocks, keyed by (label, exact matrix bytes).
    unitary_symbols: Dict[Tuple[str, bytes], str] = {}
    unitary_order: List[Tuple[str, UnitaryGate]] = []

    body: List[str] = []
    for instruction in circuit:
        gate = instruction.gate
        qubits = ",".join(f"q[{q}]" for q in instruction.qubits)
        if isinstance(gate, UnitaryGate):
            if not gate.name or not all(33 <= ord(ch) <= 126 for ch in gate.name):
                raise QasmError(
                    f"unitary label {gate.name!r} is not serializable "
                    "(printable, whitespace-free labels only)"
                )
            key = (gate.name, gate.matrix.tobytes())
            symbol = unitary_symbols.get(key)
            if symbol is None:
                symbol = _pragma_symbol(len(unitary_symbols))
                unitary_symbols[key] = symbol
                unitary_order.append((symbol, gate))
            body.append(f"{symbol} {qubits};")
            continue
        if gate.name not in _NAMED_EMITTABLE:
            raise QasmError(f"gate {gate.name!r} has no QASM serialization")
        used_names.add(gate.name)
        if gate.name == "mcx":
            controls = gate.num_qubits - 1
            mcx_arities.add(controls)
            body.append(f"mcx_{controls} {qubits};")
        elif gate.params:
            params = ",".join(_format_param(p) for p in gate.params)
            body.append(f"{gate.name}({params}) {qubits};")
        else:
            body.append(f"{gate.name} {qubits};")

    header: List[str] = ["OPENQASM 2.0;", 'include "qelib1.inc";']
    extension_names = sorted(used_names - _QELIB1_NAMES)
    for name in extension_names:
        note = _EXTENSION_NOTES.get(name)
        if note:
            header.append(f"// {note}")
    for name in extension_names:
        decl = _EXTENSION_DECLS.get(name)
        if decl:
            header.append(decl)
    for controls in sorted(mcx_arities):
        formals = ",".join(f"q{i}" for i in range(controls + 1))
        header.append(f"opaque mcx_{controls} {formals};")
    for symbol, gate in unitary_order:
        payload = gate.matrix.tobytes().hex()
        formals = ",".join(f"q{i}" for i in range(gate.num_qubits))
        header.append(f"// repro.unitary {symbol} {gate.name} {payload}")
        header.append(f"opaque {symbol} {formals};")
    header.append(f"qreg q[{circuit.num_qubits}];")
    return "\n".join(header + body) + "\n"


def dump(circuit: QuantumCircuit, file: Union[str, "os.PathLike[str]", IO[str]]) -> None:
    """Write ``circuit`` as OpenQASM 2.0 to a path or text file object."""
    text = dumps(circuit)
    if hasattr(file, "write"):
        file.write(text)  # type: ignore[union-attr]
        return
    with open(os.fspath(file), "w", encoding="utf-8") as handle:
        handle.write(text)
