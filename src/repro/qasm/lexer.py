"""Hand-written tokenizer for OpenQASM 2.0.

Produces a flat token stream with 1-based line/column positions so the
parser can raise :class:`~repro.qasm.errors.QasmError` pointing at the
offending source location.  Comments (``// ...``) are dropped here; the
``// repro.unitary`` matrix pragmas emitted for :class:`UnitaryGate`
instructions are extracted from the raw text by the parser before lexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.qasm.errors import QasmError

__all__ = ["Token", "tokenize"]

#: Multi-character symbol tokens (checked before single characters).
_TWO_CHAR = ("->", "==")

#: Single-character symbol tokens.
_ONE_CHAR = set("()[]{},;+-*/^<>=")

_DIGITS = set("0123456789")
_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | _DIGITS


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``type`` is one of ``"id"``, ``"nat"`` (natural number), ``"real"``,
    ``"string"``, ``"symbol"`` or ``"eof"``; ``value`` holds the source
    text (without quotes for strings).  ``line``/``column`` are 1-based.
    """

    type: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"


def _scan_number(text: str, pos: int) -> Tuple[str, int]:
    """Scan a number starting at ``pos``; return (kind, end) with kind in
    {"nat", "real"}."""
    n = len(text)
    end = pos
    while end < n and text[end] in _DIGITS:
        end += 1
    is_real = False
    if end < n and text[end] == ".":
        is_real = True
        end += 1
        while end < n and text[end] in _DIGITS:
            end += 1
    if end < n and text[end] in "eE":
        probe = end + 1
        if probe < n and text[probe] in "+-":
            probe += 1
        if probe < n and text[probe] in _DIGITS:
            is_real = True
            end = probe
            while end < n and text[end] in _DIGITS:
                end += 1
    return ("real" if is_real else "nat"), end


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`QasmError` on an illegal character."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    line = 1
    line_start = 0  # offset of the first character of the current line
    pos = 0
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        column = pos - line_start + 1
        if ch == "/" and pos + 1 < n and text[pos + 1] == "/":
            while pos < n and text[pos] != "\n":
                pos += 1
            continue
        two = text[pos : pos + 2]
        if two in _TWO_CHAR:
            yield Token("symbol", two, line, column)
            pos += 2
            continue
        if ch in _DIGITS or (ch == "." and pos + 1 < n and text[pos + 1] in _DIGITS):
            # A leading '.' takes _scan_number's fraction path directly (its
            # integer loop matches zero digits), so one scanner covers both.
            kind, end = _scan_number(text, pos)
            yield Token(kind, text[pos:end], line, column)
            pos = end
            continue
        if ch in _ID_START:
            end = pos + 1
            while end < n and text[end] in _ID_CONT:
                end += 1
            yield Token("id", text[pos:end], line, column)
            pos = end
            continue
        if ch == '"':
            end = pos + 1
            while end < n and text[end] not in '"\n':
                end += 1
            if end >= n or text[end] != '"':
                raise QasmError("unterminated string literal", line, column)
            yield Token("string", text[pos + 1 : end], line, column)
            pos = end + 1
            continue
        if ch in _ONE_CHAR:
            yield Token("symbol", ch, line, column)
            pos += 1
            continue
        raise QasmError(f"illegal character {ch!r}", line, column)
    yield Token("eof", "", line, (pos - line_start) + 1)
