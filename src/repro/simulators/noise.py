"""Noisy circuit simulation with duration-scaled depolarizing errors.

The paper's fidelity experiment (Section 6.7) attaches a two-qubit
depolarizing channel to every 2Q gate with an error rate proportional to the
gate's pulse duration::

    p = p0 * tau / tau0,    tau0 = pi / sqrt(2) / g,    p0 = 0.001

Here the channel is realized exactly by averaging over Pauli trajectories
(Monte Carlo unravelling): with probability ``p`` one of the 15 non-identity
two-qubit Paulis is applied after the gate.  The expected output distribution
is estimated from many trajectories, then compared to the ideal distribution
with the Hellinger fidelity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.circuits.metrics import BASELINE_CNOT_DURATION
from repro.linalg.constants import IDENTITY2, PAULI_X, PAULI_Y, PAULI_Z
from repro.simulators.statevector import apply_gate, probabilities

__all__ = [
    "DepolarizingNoiseModel",
    "duration_scaled_noise_model",
    "simulate_noisy_probabilities",
    "sample_counts",
]

_SINGLE_PAULIS = (IDENTITY2, PAULI_X, PAULI_Y, PAULI_Z)

#: The 15 non-identity two-qubit Pauli operators.
_TWO_QUBIT_PAULIS = tuple(
    np.kron(p, q)
    for p, q in itertools.product(_SINGLE_PAULIS, repeat=2)
)[1:]


@dataclass
class DepolarizingNoiseModel:
    """Per-instruction depolarizing noise.

    ``error_rate_fn`` maps an instruction to the depolarizing probability
    applied after that instruction (0 disables noise for it).
    """

    error_rate_fn: Callable[[Instruction], float]

    def error_rate(self, instruction: Instruction) -> float:
        """Depolarizing probability for ``instruction``."""
        return float(self.error_rate_fn(instruction))


def duration_scaled_noise_model(
    duration_fn: Callable[[Instruction], float],
    base_error_rate: float = 1e-3,
    base_duration: float = BASELINE_CNOT_DURATION,
) -> DepolarizingNoiseModel:
    """The paper's noise model: 2Q error rate proportional to pulse duration."""

    def error_rate(instruction: Instruction) -> float:
        if instruction.num_qubits < 2:
            return 0.0
        tau = duration_fn(instruction)
        return base_error_rate * tau / base_duration

    return DepolarizingNoiseModel(error_rate)


def simulate_noisy_probabilities(
    circuit: QuantumCircuit,
    noise_model: DepolarizingNoiseModel,
    num_trajectories: int = 200,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Estimate the output distribution of ``circuit`` under depolarizing noise.

    Uses Monte Carlo Pauli-trajectory unravelling of the depolarizing channel;
    the returned vector is the average measurement distribution over
    ``num_trajectories`` samples.
    """
    rng = np.random.default_rng(seed)
    dim = 2**circuit.num_qubits
    accumulated = np.zeros(dim, dtype=float)
    for _ in range(num_trajectories):
        state = np.zeros(dim, dtype=complex)
        state[0] = 1.0
        for instruction in circuit:
            state = apply_gate(
                state, instruction.gate.matrix, instruction.qubits, circuit.num_qubits
            )
            rate = noise_model.error_rate(instruction)
            if rate > 0.0 and rng.random() < rate:
                if instruction.num_qubits >= 2:
                    pauli = _TWO_QUBIT_PAULIS[rng.integers(len(_TWO_QUBIT_PAULIS))]
                    targets = instruction.qubits[:2]
                else:
                    pauli = _SINGLE_PAULIS[1 + rng.integers(3)]
                    targets = instruction.qubits
                state = apply_gate(state, pauli, targets, circuit.num_qubits)
        accumulated += probabilities(state)
    return accumulated / num_trajectories


def sample_counts(
    distribution: np.ndarray, shots: int, seed: Optional[int] = None
) -> Dict[int, int]:
    """Sample measurement counts from a probability distribution."""
    rng = np.random.default_rng(seed)
    distribution = np.asarray(distribution, dtype=float)
    distribution = distribution / distribution.sum()
    outcomes = rng.choice(len(distribution), size=shots, p=distribution)
    counts: Dict[int, int] = {}
    for outcome in outcomes:
        counts[int(outcome)] = counts.get(int(outcome), 0) + 1
    return counts
