"""Dense statevector simulation.

Gates are applied by reshaping the state into a rank-``n`` tensor and
contracting the gate matrix against the target qubit axes.  Qubit 0 is the
most significant bit of the computational-basis index (big-endian), matching
the circuit/matrix convention of :mod:`repro.circuits`.

The axis bookkeeping (which axes move to the front for the contraction and
how to undo it) depends only on ``(num_qubits, qubits, batched)``, so the
forward/inverse permutations are precomputed once per signature and cached —
the per-gate work is then a cached-permutation transpose, one contraction
and the inverse transpose, with no ``np.moveaxis`` recomputation per call.

:func:`apply_gate_sequence` extends the same idea across a whole gate list:
instead of restoring the canonical axis order after every gate, the tensor
stays in whatever order the previous contraction left it and each gate's
permutation is composed relative to that — one transpose per gate instead of
two, with a single restoring transpose at the end.  The result is **exactly**
(bitwise) the per-gate loop's: a relative permutation only reorders the
columns of the ``(2^k, M)`` contraction, and each output element is the same
dot product either way.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit

__all__ = ["apply_gate", "apply_gate_sequence", "simulate_statevector", "probabilities"]

#: (num_qubits, qubits, batched) -> (forward permutation, inverse permutation)
_PERM_CACHE: Dict[Tuple[int, Tuple[int, ...], bool], Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}


def _axis_permutations(
    num_qubits: int, qubits: Tuple[int, ...], batched: bool
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Forward/inverse axis permutations moving ``qubits`` to the front."""
    key = (num_qubits, qubits, batched)
    cached = _PERM_CACHE.get(key)
    if cached is None:
        total_axes = num_qubits + (1 if batched else 0)
        remaining = [axis for axis in range(total_axes) if axis not in qubits]
        forward = tuple(qubits) + tuple(remaining)
        inverse = tuple(int(axis) for axis in np.argsort(forward))
        cached = (forward, inverse)
        _PERM_CACHE[key] = cached
    return cached


def apply_gate(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` gate ``matrix`` on ``qubits`` of ``state``.

    ``state`` may be a vector of length ``2^n`` or any array whose leading
    dimension factors as ``2^n`` times trailing batch dimensions reshaped
    away by the caller (the unitary simulator reuses this for matrices).
    """
    qubits = tuple(qubits)
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise ValueError("gate matrix does not match the number of target qubits")
    total_dim = 2**num_qubits
    batch = state.size // total_dim
    batched = batch > 1
    forward, inverse = _axis_permutations(num_qubits, qubits, batched)
    tensor = np.reshape(state, [2] * num_qubits + ([batch] if batched else []))
    # Move the target axes to the front, contract, and move them back.
    tensor = tensor.transpose(forward)
    shape = tensor.shape
    tensor = np.reshape(tensor, (2**k, -1))
    tensor = matrix @ tensor
    tensor = np.reshape(tensor, shape).transpose(inverse)
    return np.reshape(tensor, state.shape)


#: (num_qubits, per-op qubit tuples, batched) -> (per-op permutations, final
#: restoring permutation).  Bounded FIFO: the approximate-synthesis inner
#: loop re-applies the same structure thousands of times, but arbitrary
#: circuit signatures (simulate_statevector) must not accumulate forever.
_SEQ_PLAN_CACHE: Dict[tuple, tuple] = {}
_SEQ_PLAN_CAPACITY = 1024
_SEQ_PLAN_MAX_OPS = 64


def _sequence_plan(
    num_qubits: int, qubit_tuples: Tuple[Tuple[int, ...], ...], batched: bool
) -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]:
    """Relative per-op permutations for :func:`apply_gate_sequence`."""
    key = (num_qubits, qubit_tuples, batched)
    cached = _SEQ_PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    total_axes = num_qubits + (1 if batched else 0)
    order = list(range(total_axes))  # order[position] = original axis
    steps = []
    for qubits in qubit_tuples:
        position = {axis: index for index, axis in enumerate(order)}
        front = [position[q] for q in qubits]
        chosen = set(front)
        perm = tuple(front + [p for p in range(total_axes) if p not in chosen])
        steps.append(perm)
        order = [order[p] for p in perm]
    position = {axis: index for index, axis in enumerate(order)}
    final = tuple(position[axis] for axis in range(total_axes))
    plan = (tuple(steps), final)
    if len(qubit_tuples) <= _SEQ_PLAN_MAX_OPS:
        if len(_SEQ_PLAN_CACHE) >= _SEQ_PLAN_CAPACITY:
            del _SEQ_PLAN_CACHE[next(iter(_SEQ_PLAN_CACHE))]
        _SEQ_PLAN_CACHE[key] = plan
    return plan


def apply_gate_sequence(
    state: np.ndarray,
    operations: Iterable[Tuple[np.ndarray, Sequence[int]]],
    num_qubits: int,
) -> np.ndarray:
    """Apply ``(matrix, qubits)`` operations in order (batched fast path).

    Bitwise-identical to folding :func:`apply_gate` over ``operations`` —
    see the module docstring — but performs one transpose per gate instead
    of two by keeping the tensor in the axis order the previous contraction
    produced.  This is the kernel behind the unitary-accumulation loops of
    approximate synthesis, hierarchical synthesis and block consolidation.
    """
    operations = [(matrix, tuple(qubits)) for matrix, qubits in operations]
    if not operations:
        return state
    total_dim = 2**num_qubits
    batch = state.size // total_dim
    batched = batch > 1
    qubit_tuples = tuple(qubits for _, qubits in operations)
    steps, final = _sequence_plan(num_qubits, qubit_tuples, batched)
    tensor = np.reshape(state, [2] * num_qubits + ([batch] if batched else []))
    for (matrix, qubits), perm in zip(operations, steps):
        k = len(qubits)
        if matrix.shape != (2**k, 2**k):
            raise ValueError("gate matrix does not match the number of target qubits")
        tensor = tensor.transpose(perm)
        shape = tensor.shape
        tensor = np.reshape(tensor, (2**k, -1))
        tensor = matrix @ tensor
        tensor = np.reshape(tensor, shape)
    tensor = tensor.transpose(final)
    return np.reshape(tensor, state.shape)


def simulate_statevector(
    circuit: QuantumCircuit,
    initial_state: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run ``circuit`` on ``|0...0>`` (or ``initial_state``) and return the result."""
    dim = 2**circuit.num_qubits
    if initial_state is None:
        state = np.zeros(dim, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial_state, dtype=complex).copy()
        if state.shape != (dim,):
            raise ValueError(f"initial state must have length {dim}")
    return apply_gate_sequence(
        state,
        [(instruction.gate.matrix, instruction.qubits) for instruction in circuit],
        circuit.num_qubits,
    )


def probabilities(state: np.ndarray) -> np.ndarray:
    """Measurement probabilities of a statevector in the computational basis."""
    return np.abs(np.asarray(state)) ** 2
