"""Dense statevector simulation.

Gates are applied by reshaping the state into a rank-``n`` tensor and
contracting the gate matrix against the target qubit axes.  Qubit 0 is the
most significant bit of the computational-basis index (big-endian), matching
the circuit/matrix convention of :mod:`repro.circuits`.

The axis bookkeeping (which axes move to the front for the contraction and
how to undo it) depends only on ``(num_qubits, qubits, batched)``, so the
forward/inverse permutations are precomputed once per signature and cached —
the per-gate work is then a cached-permutation transpose, one contraction
and the inverse transpose, with no ``np.moveaxis`` recomputation per call.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit

__all__ = ["apply_gate", "simulate_statevector", "probabilities"]

#: (num_qubits, qubits, batched) -> (forward permutation, inverse permutation)
_PERM_CACHE: Dict[Tuple[int, Tuple[int, ...], bool], Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}


def _axis_permutations(
    num_qubits: int, qubits: Tuple[int, ...], batched: bool
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Forward/inverse axis permutations moving ``qubits`` to the front."""
    key = (num_qubits, qubits, batched)
    cached = _PERM_CACHE.get(key)
    if cached is None:
        total_axes = num_qubits + (1 if batched else 0)
        remaining = [axis for axis in range(total_axes) if axis not in qubits]
        forward = tuple(qubits) + tuple(remaining)
        inverse = tuple(int(axis) for axis in np.argsort(forward))
        cached = (forward, inverse)
        _PERM_CACHE[key] = cached
    return cached


def apply_gate(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` gate ``matrix`` on ``qubits`` of ``state``.

    ``state`` may be a vector of length ``2^n`` or any array whose leading
    dimension factors as ``2^n`` times trailing batch dimensions reshaped
    away by the caller (the unitary simulator reuses this for matrices).
    """
    qubits = tuple(qubits)
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise ValueError("gate matrix does not match the number of target qubits")
    total_dim = 2**num_qubits
    batch = state.size // total_dim
    batched = batch > 1
    forward, inverse = _axis_permutations(num_qubits, qubits, batched)
    tensor = np.reshape(state, [2] * num_qubits + ([batch] if batched else []))
    # Move the target axes to the front, contract, and move them back.
    tensor = tensor.transpose(forward)
    shape = tensor.shape
    tensor = np.reshape(tensor, (2**k, -1))
    tensor = matrix @ tensor
    tensor = np.reshape(tensor, shape).transpose(inverse)
    return np.reshape(tensor, state.shape)


def simulate_statevector(
    circuit: QuantumCircuit,
    initial_state: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run ``circuit`` on ``|0...0>`` (or ``initial_state``) and return the result."""
    dim = 2**circuit.num_qubits
    if initial_state is None:
        state = np.zeros(dim, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial_state, dtype=complex).copy()
        if state.shape != (dim,):
            raise ValueError(f"initial state must have length {dim}")
    for instruction in circuit:
        state = apply_gate(state, instruction.gate.matrix, instruction.qubits, circuit.num_qubits)
    return state


def probabilities(state: np.ndarray) -> np.ndarray:
    """Measurement probabilities of a statevector in the computational basis."""
    return np.abs(np.asarray(state)) ** 2
