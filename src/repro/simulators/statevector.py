"""Dense statevector simulation.

Gates are applied by reshaping the state into a rank-``n`` tensor and
contracting the gate matrix against the target qubit axes.  Qubit 0 is the
most significant bit of the computational-basis index (big-endian), matching
the circuit/matrix convention of :mod:`repro.circuits`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit

__all__ = ["apply_gate", "simulate_statevector", "probabilities"]


def apply_gate(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` gate ``matrix`` on ``qubits`` of ``state``.

    ``state`` may be a vector of length ``2^n`` or any array whose leading
    dimension factors as ``2^n`` times trailing batch dimensions reshaped
    away by the caller (the unitary simulator reuses this for matrices).
    """
    qubits = list(qubits)
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise ValueError("gate matrix does not match the number of target qubits")
    total_dim = 2**num_qubits
    batch = state.size // total_dim
    tensor = np.reshape(state, [2] * num_qubits + ([batch] if batch > 1 else []))
    # Move the target axes to the front, contract, and move them back.
    source_axes = qubits
    tensor = np.moveaxis(tensor, source_axes, range(k))
    shape = tensor.shape
    tensor = np.reshape(tensor, (2**k, -1))
    tensor = matrix @ tensor
    tensor = np.reshape(tensor, shape)
    tensor = np.moveaxis(tensor, range(k), source_axes)
    return np.reshape(tensor, state.shape)


def simulate_statevector(
    circuit: QuantumCircuit,
    initial_state: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Run ``circuit`` on ``|0...0>`` (or ``initial_state``) and return the result."""
    dim = 2**circuit.num_qubits
    if initial_state is None:
        state = np.zeros(dim, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial_state, dtype=complex).copy()
        if state.shape != (dim,):
            raise ValueError(f"initial state must have length {dim}")
    for instruction in circuit:
        state = apply_gate(state, instruction.gate.matrix, instruction.qubits, circuit.num_qubits)
    return state


def probabilities(state: np.ndarray) -> np.ndarray:
    """Measurement probabilities of a statevector in the computational basis."""
    return np.abs(np.asarray(state)) ** 2
