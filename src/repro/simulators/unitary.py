"""Construct the unitary matrix of a circuit and embed gates into registers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.simulators.statevector import apply_gate

__all__ = ["circuit_unitary", "embed_unitary", "permutation_unitary", "permute_distribution"]


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Full ``2^n x 2^n`` unitary of ``circuit`` (exponential in ``n``)."""
    if circuit.num_qubits > 14:
        raise ValueError("refusing to build a unitary on more than 14 qubits")
    dim = 2**circuit.num_qubits
    unitary = np.eye(dim, dtype=complex)
    for instruction in circuit:
        # Treat the columns of the accumulated unitary as a batch of states.
        unitary = apply_gate(
            unitary, instruction.gate.matrix, instruction.qubits, circuit.num_qubits
        )
    return unitary


def embed_unitary(
    matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a ``2^k``-dimensional unitary acting on ``qubits`` into ``2^n``."""
    dim = 2**num_qubits
    identity = np.eye(dim, dtype=complex)
    return apply_gate(identity, np.asarray(matrix, dtype=complex), qubits, num_qubits)


def permutation_unitary(permutation: Sequence[int]) -> np.ndarray:
    """Unitary of a wire permutation (``permutation[logical] = wire``).

    Used to undo the qubit relabelling accumulated by gate mirroring and by
    routing when comparing compiled circuits against the original program.
    Computed with vectorized bit arithmetic: for every basis state, the bit
    read from logical position ``q`` is written to wire ``permutation[q]``.
    """
    num_qubits = len(permutation)
    dim = 2**num_qubits
    basis = np.arange(dim, dtype=np.int64)
    target = np.zeros(dim, dtype=np.int64)
    for logical, wire in enumerate(permutation):
        bits = (basis >> (num_qubits - 1 - logical)) & 1
        target |= bits << (num_qubits - 1 - wire)
    matrix = np.zeros((dim, dim))
    matrix[target, basis] = 1.0
    return matrix


def permute_distribution(distribution: np.ndarray, permutation: Sequence[int]) -> np.ndarray:
    """Apply a wire permutation to a computational-basis distribution."""
    distribution = np.asarray(distribution, dtype=float)
    matrix = permutation_unitary(permutation)
    return matrix @ distribution
