"""Simulators: statevector, unitary construction and noisy trajectory sampling."""

from repro.simulators.statevector import apply_gate, simulate_statevector
from repro.simulators.unitary import circuit_unitary, embed_unitary
from repro.simulators.fidelity import hellinger_fidelity, state_fidelity
from repro.simulators.noise import (
    DepolarizingNoiseModel,
    duration_scaled_noise_model,
    sample_counts,
    simulate_noisy_probabilities,
)

__all__ = [
    "apply_gate",
    "simulate_statevector",
    "circuit_unitary",
    "embed_unitary",
    "hellinger_fidelity",
    "state_fidelity",
    "DepolarizingNoiseModel",
    "duration_scaled_noise_model",
    "sample_counts",
    "simulate_noisy_probabilities",
]
