"""Fidelity measures between states and between probability distributions."""

from __future__ import annotations

from typing import Dict, Mapping, Union

import numpy as np

__all__ = ["state_fidelity", "hellinger_fidelity", "normalize_distribution"]

Distribution = Union[np.ndarray, Mapping[int, float]]


def state_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Fidelity ``|<a|b>|^2`` between two pure states."""
    a = np.asarray(state_a, dtype=complex)
    b = np.asarray(state_b, dtype=complex)
    return float(np.abs(np.vdot(a, b)) ** 2)


def normalize_distribution(dist: Distribution, dim: int) -> np.ndarray:
    """Convert a counts dict / probability array into a normalized vector."""
    if isinstance(dist, Mapping):
        vec = np.zeros(dim, dtype=float)
        for key, value in dist.items():
            vec[int(key)] = float(value)
    else:
        vec = np.asarray(dist, dtype=float).copy()
        if vec.shape != (dim,):
            raise ValueError(f"distribution must have length {dim}")
    total = vec.sum()
    if total <= 0:
        raise ValueError("distribution has no weight")
    return vec / total


def hellinger_fidelity(dist_a: Distribution, dist_b: Distribution, dim: int = None) -> float:
    """Hellinger fidelity between two distributions.

    ``F_H = (sum_i sqrt(p_i q_i))^2`` — the program-fidelity metric used in the
    paper's noisy-simulation experiment (Section 6.7).
    """
    if dim is None:
        if isinstance(dist_a, Mapping) or isinstance(dist_b, Mapping):
            raise ValueError("dim is required when passing counts dictionaries")
        dim = len(dist_a)
    p = normalize_distribution(dist_a, dim)
    q = normalize_distribution(dist_b, dim)
    return float(np.sum(np.sqrt(p * q)) ** 2)
