"""Typed property set threaded through the compiler pipeline.

Passes used to communicate through a raw ``Dict[str, Any]``; the keys were
undocumented and typos silently produced empty metadata.  :class:`PropertySet`
is a drop-in mapping replacement with the well-known keys documented and
exposed as typed attributes, plus the full mapping interface as an escape
hatch for pass-specific extras.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, MutableMapping, Optional

__all__ = ["PropertySet"]


class PropertySet(MutableMapping):
    """Mapping of pipeline metadata with typed accessors for the known keys.

    Documented keys
    ---------------
    ``isa``
        Output instruction set: ``"su4"`` (``{Can, U3}``) or ``"cnot"``.
    ``target``
        Name of the :class:`~repro.target.target.Target` compiled for.
    ``initial_layout`` / ``final_layout``
        ``layout[logical] = physical`` before/after routing (routing only).
    ``mirror_permutation``
        Qubit permutation accumulated by compile-time gate mirroring.
    ``mirrored_gate_count``
        Number of near-identity gates replaced by their mirrored form.
    ``inserted_swaps`` / ``absorbed_swaps``
        Routing SWAPs that cost a 2Q gate vs. SWAPs absorbed into SU(4)s.

    Any other key is accepted and round-trips through :meth:`to_dict`.
    """

    KNOWN_KEYS = (
        "isa",
        "target",
        "initial_layout",
        "final_layout",
        "mirror_permutation",
        "mirrored_gate_count",
        "inserted_swaps",
        "absorbed_swaps",
    )

    __slots__ = ("_data",)

    def __init__(self, initial: Optional[Mapping[str, Any]] = None, **extras: Any) -> None:
        self._data: Dict[str, Any] = dict(initial or {})
        self._data.update(extras)

    # -- mapping protocol ----------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._data[key] = value

    def __delitem__(self, key: str) -> None:
        del self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"PropertySet({self._data!r})"

    # -- pickling (``__slots__`` has no instance ``__dict__``) ---------------
    def __getstate__(self) -> Dict[str, Any]:
        return {"_data": self._data}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._data = state["_data"]

    # -- typed accessors -----------------------------------------------------
    @property
    def isa(self) -> Optional[str]:
        """Output ISA (``"su4"`` or ``"cnot"``)."""
        return self._data.get("isa")

    @isa.setter
    def isa(self, value: str) -> None:
        self._data["isa"] = value

    @property
    def target(self) -> Optional[str]:
        """Name of the target device compiled for."""
        return self._data.get("target")

    @property
    def initial_layout(self) -> Optional[List[int]]:
        """Routing layout before the circuit ran (``layout[logical] = physical``)."""
        return self._data.get("initial_layout")

    @property
    def final_layout(self) -> Optional[List[int]]:
        """Routing layout after the circuit ran."""
        return self._data.get("final_layout")

    @property
    def mirror_permutation(self) -> Optional[List[int]]:
        """Qubit permutation accumulated by gate mirroring."""
        return self._data.get("mirror_permutation")

    @property
    def mirrored_gate_count(self) -> Optional[int]:
        """Number of near-identity gates replaced by their mirrored form."""
        return self._data.get("mirrored_gate_count")

    @property
    def inserted_swaps(self) -> Optional[int]:
        """Routing SWAPs that cost a real 2Q gate."""
        return self._data.get("inserted_swaps")

    @property
    def absorbed_swaps(self) -> Optional[int]:
        """Routing SWAPs absorbed into adjacent SU(4) gates for free."""
        return self._data.get("absorbed_swaps")

    # -- conversion ----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict copy of every property (known and extra)."""
        return dict(self._data)

    @classmethod
    def ensure(cls, value: Optional[Mapping[str, Any]]) -> "PropertySet":
        """Fresh PropertySet seeded from ``value`` (``None`` yields empty).

        Always copies — callers can safely reuse their input mapping across
        compilations without one run's metadata leaking into the next.
        """
        return cls(value)
