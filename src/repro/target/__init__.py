"""First-class device targets and the declarative pipeline API.

This package is the public face of the compiler stack:

* :class:`~repro.target.target.Target` — a frozen, serializable device
  description (coupling Hamiltonian, topology, ISA, duration model) with
  named presets (``Target.xy_line(n)``, ``Target.heavy_hex(...)``,
  ``Target.all_to_all(n)``) and ``to_dict``/``from_dict`` round-tripping.
* :class:`~repro.target.pipeline.PipelineSpec` /
  :data:`~repro.target.pipeline.PASS_REGISTRY` — declarative pipelines as
  named lists of ``(pass_id, config)`` stages.
* :class:`~repro.target.properties.PropertySet` — the typed property set
  threaded through the pass manager.
* :func:`~repro.target.api.compile` — the one entry point everything else
  (CLI, batch service, experiment harness, deprecated compiler classes)
  funnels through.

Exports resolve lazily so that ``import repro.target`` stays cheap and the
lower compiler layers can import the submodules without cycles.
"""

from repro._lazy import lazy_exports

_LAZY_EXPORTS = {
    "Target": "repro.target.target:Target",
    "resolve_target": "repro.target.target:resolve_target",
    "target_presets": "repro.target.target:target_presets",
    "target_preset_info": "repro.target.target:target_preset_info",
    "CalibrationData": "repro.microarch.calibration:CalibrationData",
    "CalibrationError": "repro.microarch.calibration:CalibrationError",
    "PropertySet": "repro.target.properties:PropertySet",
    "PassContext": "repro.target.pipeline:PassContext",
    "PassRegistry": "repro.target.pipeline:PassRegistry",
    "PASS_REGISTRY": "repro.target.pipeline:PASS_REGISTRY",
    "PipelineStage": "repro.target.pipeline:PipelineStage",
    "PipelineSpec": "repro.target.pipeline:PipelineSpec",
    "reqisc_pipeline": "repro.target.pipeline:reqisc_pipeline",
    "cnot_baseline_pipeline": "repro.target.pipeline:cnot_baseline_pipeline",
    "su4_fusion_pipeline": "repro.target.pipeline:su4_fusion_pipeline",
    "named_pipeline": "repro.target.pipeline:named_pipeline",
    "register_pipeline": "repro.target.pipeline:register_pipeline",
    "pipeline_names": "repro.target.pipeline:pipeline_names",
    "compile": "repro.target.api:compile",
    "PipelineCompiler": "repro.target.api:PipelineCompiler",
}

__all__ = sorted(_LAZY_EXPORTS)

__getattr__, __dir__ = lazy_exports("repro.target", _LAZY_EXPORTS, globals())
