"""Declarative pipeline API: pass registry and pipeline specs.

A :class:`PipelineSpec` is a named, ordered list of ``(pass_id, config)``
stages — pure data, buildable from dicts/JSON — and :data:`PASS_REGISTRY`
maps each pass id to a factory that instantiates the concrete
:class:`~repro.compiler.passes.base.CompilerPass` for a given
:class:`PassContext` (target + seed + synthesis cache).  The previous
compiler classes (``ReQISCCompiler`` and the baselines) are now thin named
specs over this machinery; see :func:`named_pipeline`.

Stage configs may hold arbitrary Python objects (e.g. a pre-built
``ApproximateSynthesizer``) for programmatic use; specs built from the named
presets are JSON-serializable.

Representation contract: a factory may return either a flat-circuit pass or
an IR-native one (``consumes = produces = "ir"``, operating on the shared
:class:`repro.ir.CircuitIR`) — the :class:`~repro.compiler.passes.base.PassManager`
reads each pass's declaration and converts at most once per representation
change, so declarative specs mix both kinds freely (the built-in ReQISC
specs run ``peephole``/``fuse_2q``/``mirror``/``route``/``finalize``
IR-natively and the synthesis stages at circuit level).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.compiler.passes.base import CompilerPass

__all__ = [
    "PassContext",
    "PassRegistry",
    "PASS_REGISTRY",
    "PipelineStage",
    "PipelineSpec",
    "reqisc_pipeline",
    "cnot_baseline_pipeline",
    "su4_fusion_pipeline",
    "named_pipeline",
    "register_pipeline",
    "pipeline_names",
]


@dataclass
class PassContext:
    """Everything a pass factory may need besides its stage config."""

    target: Any  # repro.target.target.Target (typed loosely to avoid cycles)
    seed: int = 0
    synthesis_cache: Optional[Any] = None
    #: Optional :class:`repro.incremental.PassMemoStore` threaded into the
    #: memo-aware passes for region-level memoization.
    memo: Optional[Any] = None


class PassRegistry:
    """Registry mapping string pass ids to pass factories.

    A factory has signature ``factory(config, context) -> CompilerPass`` and
    is looked up by :func:`repro.target.api.compile` for every stage of a
    :class:`PipelineSpec`.  Third-party passes register themselves with::

        @PASS_REGISTRY.register("my_pass", description="...")
        def _build(config, context):
            return MyPass(**config)
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[Mapping[str, Any], PassContext], CompilerPass]] = {}
        self._descriptions: Dict[str, str] = {}

    def register(
        self,
        pass_id: str,
        factory: Optional[Callable[..., CompilerPass]] = None,
        description: str = "",
    ):
        """Register ``factory`` under ``pass_id`` (usable as a decorator)."""

        def _bind(fn: Callable[..., CompilerPass]) -> Callable[..., CompilerPass]:
            if pass_id in self._factories:
                raise KeyError(f"pass id {pass_id!r} is already registered")
            self._factories[pass_id] = fn
            self._descriptions[pass_id] = description or (fn.__doc__ or "").strip()
            return fn

        return _bind(factory) if factory is not None else _bind

    def create(
        self,
        stage: Union[str, "PipelineStage"],
        context: PassContext,
        config: Optional[Mapping[str, Any]] = None,
    ) -> CompilerPass:
        """Instantiate the pass for ``stage`` under ``context``."""
        if isinstance(stage, PipelineStage):
            pass_id, config = stage.pass_id, stage.config
        else:
            pass_id, config = stage, dict(config or {})
        try:
            factory = self._factories[pass_id]
        except KeyError:
            raise KeyError(
                f"unknown pass id {pass_id!r}; registered: {', '.join(sorted(self._factories))}"
            ) from None
        return factory(config, context)

    def available(self) -> Dict[str, str]:
        """Mapping of registered pass id to its description."""
        return dict(sorted(self._descriptions.items()))

    def __contains__(self, pass_id: str) -> bool:
        return pass_id in self._factories


#: The process-global registry holding the built-in Regulus passes.
PASS_REGISTRY = PassRegistry()


# ---------------------------------------------------------------------------
# Pipeline specs.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelineStage:
    """One ``(pass_id, config)`` step of a pipeline.

    ``requires_topology`` marks hardware-aware stages (routing and the
    physical re-optimization that follows it): they are skipped when the
    target has no coupling map, so one spec serves both logical and routed
    compilation.
    """

    pass_id: str
    config: Mapping[str, Any] = field(default_factory=dict)
    requires_topology: bool = False

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"pass": self.pass_id}
        if self.config:
            payload["config"] = dict(self.config)
        if self.requires_topology:
            payload["requires_topology"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PipelineStage":
        return cls(
            pass_id=str(payload["pass"]),
            config=dict(payload.get("config", {})),
            requires_topology=bool(payload.get("requires_topology", False)),
        )


@dataclass(frozen=True, eq=False)
class PipelineSpec:
    """A named, declarative compiler pipeline.

    ``isa`` is stamped into the property set before the first stage runs, so
    downstream metric code knows which duration model applies to the output.
    """

    name: str
    stages: Tuple[PipelineStage, ...] = ()
    isa: str = "su4"
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "isa": self.isa,
            "description": self.description,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PipelineSpec":
        return cls(
            name=str(payload["name"]),
            stages=tuple(PipelineStage.from_dict(s) for s in payload.get("stages", [])),
            isa=str(payload.get("isa", "su4")),
            description=str(payload.get("description", "")),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON form; only works when every stage config is JSON-able."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        stages = " -> ".join(stage.pass_id for stage in self.stages)
        return f"PipelineSpec({self.name} [{self.isa}]: {stages})"


# ---------------------------------------------------------------------------
# Built-in pass factories.  Imports are deferred into the factory bodies so
# importing ``repro.target`` stays cheap and cycle-free.
# ---------------------------------------------------------------------------


@PASS_REGISTRY.register(
    "template_synthesis",
    description="program-aware template-based synthesis (Section 5.2)",
)
def _make_template_synthesis(config: Mapping[str, Any], context: PassContext) -> CompilerPass:
    from repro.compiler.passes.template_synthesis import TemplateSynthesisPass

    return TemplateSynthesisPass(
        library=config.get("library"),
        selective_assembly=config.get("selective_assembly", True),
        fuse_output=config.get("fuse_output", True),
        cache=context.synthesis_cache,
    )


@PASS_REGISTRY.register(
    "hierarchical_synthesis",
    description="program-agnostic hierarchical synthesis with DAG compacting",
)
def _make_hierarchical_synthesis(config: Mapping[str, Any], context: PassContext) -> CompilerPass:
    from repro.compiler.passes.hierarchical import HierarchicalSynthesisPass

    synthesizer = config.get("synthesizer")
    if synthesizer is None and "synthesizer_config" in config:
        from repro.synthesis.approximate import ApproximateSynthesizer

        options = dict(config["synthesizer_config"])
        options.setdefault("seed", context.seed)
        synthesizer = ApproximateSynthesizer(**options)
    return HierarchicalSynthesisPass(
        block_size=config.get("block_size", 3),
        threshold=config.get("threshold", 4),
        tolerance=config.get("tolerance", 1e-6),
        enable_dag_compacting=config.get("enable_dag_compacting", True),
        synthesizer=synthesizer,
        max_synthesis_blocks=config.get("max_synthesis_blocks"),
        cache=context.synthesis_cache,
    )


@PASS_REGISTRY.register("fuse_2q", description="consolidate 2Q runs into SU(4) blocks")
def _make_fuse(config: Mapping[str, Any], context: PassContext) -> CompilerPass:
    from repro.compiler.passes.fuse import Fuse2QBlocksPass

    return Fuse2QBlocksPass(form=config.get("form", "unitary"), memo=context.memo)


@PASS_REGISTRY.register(
    "mirror", description="compile-time gate mirroring for near-identity gates (Section 4.3)"
)
def _make_mirror(config: Mapping[str, Any], context: PassContext) -> CompilerPass:
    from repro.compiler.passes.mirror import MirrorNearIdentityPass

    return MirrorNearIdentityPass(
        threshold=config.get("threshold", 0.15), memo=context.memo
    )


@PASS_REGISTRY.register(
    "route", description="(mirroring-)SABRE routing onto the target topology (Section 5.3)"
)
def _make_route(config: Mapping[str, Any], context: PassContext) -> CompilerPass:
    from repro.compiler.passes.route import SabreRoutingPass

    noise_aware = bool(config.get("noise_aware", False))
    return SabreRoutingPass(
        coupling_map=context.target.coupling_map,
        mirroring=config.get("mirroring", True),
        seed=config.get("seed", context.seed),
        lookahead_size=config.get("lookahead_size", 20),
        lookahead_weight=config.get("lookahead_weight", 0.5),
        noise_aware=noise_aware,
        calibration=(
            getattr(context.target, "calibration", None) if noise_aware else None
        ),
    )


@PASS_REGISTRY.register(
    "schedule",
    description="ASAP scheduling against the target's duration model (docs/noise.md)",
)
def _make_schedule(config: Mapping[str, Any], context: PassContext) -> CompilerPass:
    from repro.compiler.passes.schedule import SchedulingPass

    return SchedulingPass(
        target=context.target,
        isa=config.get("isa"),
    )


@PASS_REGISTRY.register(
    "finalize", description="express every SU(4) block in the {Can, U3} ISA"
)
def _make_finalize(config: Mapping[str, Any], context: PassContext) -> CompilerPass:
    from repro.compiler.passes.finalize import FinalizeToCanPass

    return FinalizeToCanPass(
        merge_single_qubit=config.get("merge_single_qubit", True), memo=context.memo
    )


@PASS_REGISTRY.register("decompose_cnot", description="lower everything to {CX, 1Q}")
def _make_decompose(config: Mapping[str, Any], context: PassContext) -> CompilerPass:
    from repro.compiler.passes.decompose import DecomposeToCnotPass

    return DecomposeToCnotPass()


@PASS_REGISTRY.register(
    "peephole", description="cancel/merge adjacent gates, optionally consolidating 2Q runs"
)
def _make_peephole(config: Mapping[str, Any], context: PassContext) -> CompilerPass:
    from repro.compiler.passes.peephole import PeepholeOptimizationPass

    return PeepholeOptimizationPass(
        consolidate=config.get("consolidate", True),
        max_rounds=config.get("max_rounds", 4),
    )


# ---------------------------------------------------------------------------
# Named pipelines (the former compiler classes as declarative specs).
# ---------------------------------------------------------------------------


def reqisc_pipeline(
    mode: str = "full",
    mirror_threshold: float = 0.15,
    block_size: int = 3,
    synthesis_threshold: int = 4,
    synthesis_tolerance: float = 1e-6,
    enable_dag_compacting: bool = True,
    use_mirroring_sabre: bool = True,
    template_library: Optional[Any] = None,
    synthesizer: Optional[Any] = None,
    max_synthesis_blocks: Optional[int] = None,
    noise_aware: bool = False,
    name: Optional[str] = None,
) -> PipelineSpec:
    """The end-to-end ReQISC (Regulus) pipeline of Section 5.4.1.

    ``mode="full"`` runs hierarchical synthesis; ``mode="eff"`` replaces it
    with plain SU(4) fusion to keep the distinct-gate count minimal.
    ``noise_aware=True`` switches routing to the calibration-weighted
    portfolio (needs a calibrated target; see docs/noise.md) — the default
    keeps the stage config, and therefore every memo key, unchanged.
    """
    if mode not in ("full", "eff"):
        raise ValueError("mode must be 'full' or 'eff'")
    stages: List[PipelineStage] = [
        PipelineStage("template_synthesis", {"library": template_library}),
    ]
    if mode == "full":
        stages.append(
            PipelineStage(
                "hierarchical_synthesis",
                {
                    "block_size": block_size,
                    "threshold": synthesis_threshold,
                    "tolerance": synthesis_tolerance,
                    "enable_dag_compacting": enable_dag_compacting,
                    "synthesizer": synthesizer,
                    "max_synthesis_blocks": max_synthesis_blocks,
                },
            )
        )
    else:
        stages.append(PipelineStage("fuse_2q", {"form": "unitary"}))
    stages.append(PipelineStage("mirror", {"threshold": mirror_threshold}))
    route_config: Dict[str, Any] = {"mirroring": use_mirroring_sabre}
    if noise_aware:
        route_config["noise_aware"] = True
    stages.append(PipelineStage("route", route_config, requires_topology=True))
    stages.append(PipelineStage("finalize"))
    return PipelineSpec(
        name=name or f"reqisc-{mode}",
        stages=tuple(stages),
        isa="su4",
        description="SU(4)-native co-designed compilation (ReQISC)",
    )


def cnot_baseline_pipeline(
    name: str = "qiskit-like",
    pauli_simp: bool = False,
    consolidate: bool = True,
    physical_optimization: bool = True,
) -> PipelineSpec:
    """CNOT-ISA baseline (Qiskit-O3 / TKet stand-in) as a declarative spec."""
    stages: List[PipelineStage] = []
    if pauli_simp:
        stages.append(PipelineStage("peephole", {"consolidate": False}))
    stages.append(PipelineStage("decompose_cnot"))
    stages.append(PipelineStage("peephole", {"consolidate": consolidate}))
    stages.append(PipelineStage("route", {"mirroring": False}, requires_topology=True))
    stages.append(PipelineStage("decompose_cnot", requires_topology=True))
    if physical_optimization:
        stages.append(
            PipelineStage("peephole", {"consolidate": consolidate}, requires_topology=True)
        )
    return PipelineSpec(
        name=name,
        stages=tuple(stages),
        isa="cnot",
        description="CNOT-ISA baseline compilation",
    )


def su4_fusion_pipeline(
    variant: str = "qiskit-su4",
    synthesis_tolerance: float = 1e-6,
    synthesizer: Optional[Any] = None,
) -> PipelineSpec:
    """The "-SU(4)" baseline variants (Section 6.6.1 ablation)."""
    if variant not in ("qiskit-su4", "tket-su4", "bqskit-su4"):
        raise ValueError("variant must be qiskit-su4, tket-su4 or bqskit-su4")
    cnot = cnot_baseline_pipeline(name=variant, pauli_simp=variant == "tket-su4")
    stages: List[PipelineStage] = list(cnot.stages)
    stages.append(PipelineStage("fuse_2q", {"form": "unitary"}))
    if variant == "bqskit-su4":
        # Aggressive per-block numerical re-synthesis with no template reuse:
        # good #2Q, but every block yields fresh SU(4) parameters (the
        # "distinct-gate explosion" discussed in the ablation study).
        stages.append(
            PipelineStage(
                "hierarchical_synthesis",
                {
                    "threshold": 2,
                    "tolerance": synthesis_tolerance,
                    "enable_dag_compacting": False,
                    "synthesizer": synthesizer,
                    "synthesizer_config": {
                        "tolerance": synthesis_tolerance,
                        "restarts": 2,
                    },
                },
            )
        )
    stages.append(PipelineStage("finalize"))
    return PipelineSpec(
        name=variant,
        stages=tuple(stages),
        isa="su4",
        description="CNOT baseline followed by naive SU(4) fusion",
    )


_NAMED_PIPELINES: Dict[str, Callable[..., PipelineSpec]] = {
    "reqisc-full": lambda **kw: reqisc_pipeline(mode="full", **kw),
    "reqisc-eff": lambda **kw: reqisc_pipeline(mode="eff", **kw),
    "reqisc-nc": lambda **kw: reqisc_pipeline(
        mode="full", enable_dag_compacting=False, name="reqisc-nc", **kw
    ),
    "reqisc-sabre": lambda **kw: reqisc_pipeline(
        mode="eff", use_mirroring_sabre=False, name="reqisc-sabre", **kw
    ),
    "reqisc-noise": lambda **kw: reqisc_pipeline(
        mode="eff", noise_aware=True, name="reqisc-noise", **kw
    ),
    "qiskit-like": lambda **kw: cnot_baseline_pipeline(name="qiskit-like", **kw),
    "tket-like": lambda **kw: cnot_baseline_pipeline(
        name="tket-like", pauli_simp=True, **kw
    ),
    "qiskit-su4": lambda **kw: su4_fusion_pipeline(variant="qiskit-su4", **kw),
    "tket-su4": lambda **kw: su4_fusion_pipeline(variant="tket-su4", **kw),
    "bqskit-su4": lambda **kw: su4_fusion_pipeline(variant="bqskit-su4", **kw),
}


def register_pipeline(
    name: str,
    builder: Callable[..., PipelineSpec],
    overwrite: bool = False,
) -> None:
    """Register a pipeline builder under ``name``.

    The name becomes available to :func:`named_pipeline` and therefore to
    ``build_compilers``, the batch service and the CLI ``--compiler`` flag.
    ``builder(**overrides)`` must return a :class:`PipelineSpec`.
    """
    if name in _NAMED_PIPELINES and not overwrite:
        raise KeyError(f"pipeline {name!r} is already registered")
    _NAMED_PIPELINES[name] = builder


def named_pipeline(name: str, **overrides: Any) -> PipelineSpec:
    """Build one of the named pipelines (``reqisc-full``, ``qiskit-like``, ...).

    ``overrides`` are forwarded to the underlying builder, so callers can
    tweak e.g. ``synthesis_tolerance`` or inject a custom ``synthesizer``
    while keeping the canonical stage structure.
    """
    try:
        builder = _NAMED_PIPELINES[name]
    except KeyError:
        raise KeyError(
            f"unknown pipeline {name!r}; available: {', '.join(sorted(_NAMED_PIPELINES))}"
        ) from None
    return builder(**overrides)


def pipeline_names() -> List[str]:
    """Names accepted by :func:`named_pipeline` (and the CLI ``--compiler``)."""
    return sorted(_NAMED_PIPELINES)
