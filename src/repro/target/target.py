"""First-class device description: the :class:`Target`.

The paper's central claim is hardware/software co-design: every compiler
decision (synthesis, mirroring, routing, finalization) is only meaningful
relative to a concrete device model.  ``Target`` bundles that model into one
frozen, serializable object:

* the two-qubit :class:`~repro.microarch.hamiltonian.CouplingHamiltonian`
  (which determines the genAshN pulse durations),
* an optional :class:`~repro.compiler.routing.coupling_map.CouplingMap`
  (device topology — ``None`` means logical/all-to-all compilation),
* the native ISA (``"su4"`` for the ReQISC ``{Can, U3}`` machine, ``"cnot"``
  for a conventional fixed-basis device), and
* the duration-model constants (CNOT pulse length, 1Q gate cost).

Targets are hashed by identity and memoize their per-gate duration models, so
costing a whole benchmark suite builds each model exactly once.  ``to_dict``
and ``from_dict`` give a stable JSON form used by the CLI (``--target
device.json``) and by disk-cache keys.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.circuits.instruction import Instruction
from repro.circuits.metrics import BASELINE_CNOT_DURATION, cnot_isa_duration_model
from repro.compiler.routing.coupling_map import CouplingMap
from repro.microarch.calibration import CalibrationData
from repro.microarch.durations import su4_duration_model
from repro.microarch.hamiltonian import CouplingHamiltonian

__all__ = ["Target", "resolve_target", "target_preset_info", "target_presets"]

_ISAS = ("su4", "cnot")


@dataclass(frozen=True, eq=False)
class Target:
    """Frozen, serializable description of the device being compiled for."""

    coupling: CouplingHamiltonian = field(default_factory=lambda: CouplingHamiltonian.xy(1.0))
    coupling_map: Optional[CouplingMap] = None
    isa: str = "su4"
    one_qubit_duration: float = 0.0
    cnot_duration: float = BASELINE_CNOT_DURATION
    name: str = ""
    #: Free-form extras (calibration ids, vendor metadata, ...), kept as a
    #: sorted tuple of pairs so the dataclass stays frozen.
    metadata: Tuple[Tuple[str, Any], ...] = ()
    #: Measured device parameters (per-edge 2Q error/duration, per-qubit
    #: 1Q/readout error), consumed by noise-aware routing and scheduling.
    #: ``None`` means an idealized device.  See docs/noise.md.
    calibration: Optional[CalibrationData] = None

    def __post_init__(self) -> None:
        if self.isa not in _ISAS:
            raise ValueError(f"isa must be one of {_ISAS}, got {self.isa!r}")
        if self.calibration is not None:
            if self.coupling_map is None:
                raise ValueError("a calibrated target needs a coupling_map")
            self.calibration.validate_against(self.coupling_map)
        if not self.name:
            object.__setattr__(self, "name", self._derived_name())
        if isinstance(self.metadata, dict):
            object.__setattr__(self, "metadata", tuple(sorted(self.metadata.items())))
        object.__setattr__(self, "_models", {})

    def __getstate__(self) -> Dict[str, Any]:
        # Memoized duration models are closures and must not cross process
        # boundaries (BatchCompiler pickles jobs and results).
        state = dict(self.__dict__)
        state.pop("_models", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.__dict__["_models"] = {}

    def _derived_name(self) -> str:
        if self.coupling_map is None:
            return self.coupling.label
        suffix = "-cal" if self.calibration is not None else ""
        return (
            f"{self.coupling.label}-{self.coupling_map.name}-"
            f"{self.coupling_map.num_qubits}{suffix}"
        )

    # -- views ---------------------------------------------------------------
    @property
    def num_qubits(self) -> Optional[int]:
        """Physical qubit count, or ``None`` for an unconstrained target."""
        return self.coupling_map.num_qubits if self.coupling_map is not None else None

    def duration_model(self, isa: Optional[str] = None) -> Callable[[Instruction], float]:
        """Per-instruction duration model, memoized per target.

        ``isa`` overrides the target's native ISA — the evaluation costs
        CNOT-ISA baseline output with the conventional CNOT pulse even on an
        SU(4)-native device (the paper's Table 2 convention).
        """
        isa = isa or self.isa
        if isa not in _ISAS:
            raise ValueError(f"isa must be one of {_ISAS}, got {isa!r}")
        models: Dict[str, Callable[[Instruction], float]] = self._models
        if isa not in models:
            if isa == "cnot":
                models[isa] = cnot_isa_duration_model(
                    self.cnot_duration, self.one_qubit_duration
                )
            else:
                models[isa] = su4_duration_model(self.coupling, self.one_qubit_duration)
        return models[isa]

    def distance_matrix(self) -> Optional[Any]:
        """The coupling map's cached hop-count matrix (``None`` if logical).

        Delegates to :meth:`CouplingMap.distance_matrix`, which caches the
        compact integer array per map — every duration model, routing run
        and perf probe built on this target shares one matrix instead of
        re-deriving it.
        """
        if self.coupling_map is None:
            return None
        return self.coupling_map.distance_matrix()

    def duration_of(self, circuit: Any, isa: Optional[str] = None) -> float:
        """Critical-path pulse duration of ``circuit`` on this target."""
        from repro.circuits.metrics import circuit_duration

        return circuit_duration(circuit, self.duration_model(isa))

    def with_coupling_map(self, coupling_map: Optional[CouplingMap]) -> "Target":
        """Copy of this target on a different topology (name re-derived)."""
        return replace(self, coupling_map=coupling_map, name="")

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_device(
        cls,
        coupling: Optional[CouplingHamiltonian] = None,
        coupling_map: Optional[CouplingMap] = None,
        isa: str = "su4",
    ) -> "Target":
        """Target from the legacy ``(coupling, coupling_map)`` kwargs pair."""
        return cls(
            coupling=coupling or CouplingHamiltonian.xy(1.0),
            coupling_map=coupling_map,
            isa=isa,
        )

    @classmethod
    def default(cls) -> "Target":
        """The cached default device: XY coupling, no topology constraint."""
        global _DEFAULT_TARGET
        if _DEFAULT_TARGET is None:
            _DEFAULT_TARGET = cls()
        return _DEFAULT_TARGET

    @classmethod
    def for_coupling(cls, coupling: CouplingHamiltonian) -> "Target":
        """Cached logical target for a bare coupling Hamiltonian.

        Durations depend only on the canonical coefficients, so targets are
        shared by ``(label, a, b, c)`` — the legacy
        ``CompilationResult.duration(coupling)`` path hits this cache instead
        of rebuilding a duration model per call.
        """
        key = (coupling.label, coupling.a, coupling.b, coupling.c)
        target = _COUPLING_TARGETS.get(key)
        if target is None:
            target = cls(coupling=coupling)
            _COUPLING_TARGETS[key] = target
        return target

    @classmethod
    def xy_line(cls, num_qubits: int, strength: float = 1.0) -> "Target":
        """XY-coupled 1D chain of ``num_qubits`` qubits."""
        return cls(
            coupling=CouplingHamiltonian.xy(strength),
            coupling_map=CouplingMap.line(num_qubits),
        )

    @classmethod
    def xy_grid(cls, rows: int, columns: int, strength: float = 1.0) -> "Target":
        """XY-coupled 2D grid of ``rows x columns`` qubits."""
        return cls(
            coupling=CouplingHamiltonian.xy(strength),
            coupling_map=CouplingMap.grid(rows, columns),
        )

    @classmethod
    def heavy_hex(cls, rows: int = 1, columns: int = 1, strength: float = 1.0) -> "Target":
        """XY-coupled heavy-hex lattice of ``rows x columns`` hexagonal cells."""
        return cls(
            coupling=CouplingHamiltonian.xy(strength),
            coupling_map=CouplingMap.heavy_hex(rows, columns),
        )

    @classmethod
    def all_to_all(
        cls, num_qubits: int, coupling: Optional[CouplingHamiltonian] = None
    ) -> "Target":
        """Fully connected device of ``num_qubits`` qubits."""
        return cls(
            coupling=coupling or CouplingHamiltonian.xy(1.0),
            coupling_map=CouplingMap.all_to_all(num_qubits),
        )

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload; the inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "isa": self.isa,
            "coupling": self.coupling.to_dict(),
            "coupling_map": (
                self.coupling_map.to_dict() if self.coupling_map is not None else None
            ),
            "one_qubit_duration": self.one_qubit_duration,
            "cnot_duration": self.cnot_duration,
            "metadata": dict(self.metadata),
            "calibration": (
                self.calibration.to_dict() if self.calibration is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Target":
        """Rebuild a target from its :meth:`to_dict` payload."""
        coupling_map = payload.get("coupling_map")
        calibration = payload.get("calibration")
        return cls(
            coupling=CouplingHamiltonian.from_dict(payload["coupling"]),
            coupling_map=(
                CouplingMap.from_dict(coupling_map) if coupling_map is not None else None
            ),
            isa=str(payload.get("isa", "su4")),
            one_qubit_duration=float(payload.get("one_qubit_duration", 0.0)),
            cnot_duration=float(payload.get("cnot_duration", BASELINE_CNOT_DURATION)),
            name=str(payload.get("name", "")),
            metadata=tuple(sorted(dict(payload.get("metadata", {})).items())),
            calibration=(
                CalibrationData.from_dict(calibration) if calibration is not None else None
            ),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON document form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Target":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "Target":
        """Load a target from a JSON file (the CLI's ``--target dev.json``)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __repr__(self) -> str:
        topo = repr(self.coupling_map) if self.coupling_map is not None else "logical"
        return f"Target({self.name}: isa={self.isa}, coupling={self.coupling.label}, {topo})"


_DEFAULT_TARGET: Optional[Target] = None
_COUPLING_TARGETS: Dict[Tuple[str, float, float, float], Target] = {}


# ---------------------------------------------------------------------------
# Preset registry (used by ``--target <preset>`` and ``repro targets``).
# ---------------------------------------------------------------------------

_PRESET_DESCRIPTIONS = {
    "logical": "XY coupling, no topology constraint (logical-level compilation)",
    "xy-line": "XY-coupled 1D chain (append -N for a fixed size, e.g. xy-line-16)",
    "xy-grid": "XY-coupled near-square 2D grid (append -N for >= N qubits)",
    "heavy-hex": "XY-coupled heavy-hex lattice (append -N for >= N qubits)",
    "all-to-all": "XY-coupled fully connected device (append -N for a fixed size)",
    "xy-line-cal": "xy-line with a seeded heterogeneous calibration (see docs/noise.md)",
    "xy-grid-cal": "xy-grid with a seeded heterogeneous calibration",
    "heavy-hex-cal": "heavy-hex with a seeded heterogeneous calibration",
}

# Seed salt per calibrated base: the same base at the same size always gets
# the same device, but line/grid/heavy-hex devices of equal size differ.
_CALIBRATED_PRESETS = {"xy-line-cal": 101, "xy-grid-cal": 202, "heavy-hex-cal": 303}


def target_presets() -> Dict[str, str]:
    """Mapping of preset name to a one-line description."""
    return dict(_PRESET_DESCRIPTIONS)


def target_preset_info() -> Dict[str, Dict[str, Any]]:
    """Preset name -> {"description", "calibrated"} (drives ``repro targets``)."""
    return {
        name: {"description": text, "calibrated": name in _CALIBRATED_PRESETS}
        for name, text in _PRESET_DESCRIPTIONS.items()
    }


def _split_preset(spec: str) -> Tuple[str, Optional[int]]:
    """Split ``"xy-line-16"`` into ``("xy-line", 16)``."""
    head, _, tail = spec.rpartition("-")
    if head in _PRESET_DESCRIPTIONS and tail.isdigit():
        return head, int(tail)
    return spec, None


_PRESET_CACHE: Dict[Tuple[str, int], Target] = {}
_FILE_CACHE: Dict[Tuple[str, int], Target] = {}


def _build_preset(base: str, size: Optional[int]) -> Target:
    if base not in _PRESET_DESCRIPTIONS:
        raise ValueError(
            f"unknown target preset {base!r}; available: {', '.join(_PRESET_DESCRIPTIONS)}"
        )
    if size is None:
        raise ValueError(
            f"target preset {base!r} needs a qubit count: pass one explicitly "
            f"(e.g. {base}-16) or compile a circuit so the size can be inferred"
        )
    # Preset resolution is pure, and every compile of a suite resolves its
    # own copy — cache by (base, size) so targets (and their memoized
    # duration models) are shared across circuits of the same size.
    key = (base, size)
    target = _PRESET_CACHE.get(key)
    if target is None:
        cal_seed = _CALIBRATED_PRESETS.get(base)
        topo_base = base[: -len("-cal")] if cal_seed is not None else base
        if topo_base == "xy-line":
            coupling_map = CouplingMap.line(size)
        elif topo_base == "xy-grid":
            coupling_map = CouplingMap.grid_for(size)
        elif topo_base == "heavy-hex":
            coupling_map = CouplingMap.heavy_hex_for(size)
        else:
            coupling_map = CouplingMap.all_to_all(size)
        calibration = None
        if cal_seed is not None:
            # Deterministic per (base, device size): the committed fidelity
            # benchmarks depend on these exact parameters.
            calibration = CalibrationData.seeded(
                coupling_map, seed=cal_seed + coupling_map.num_qubits
            )
        target = Target(
            coupling=CouplingHamiltonian.xy(1.0),
            coupling_map=coupling_map,
            calibration=calibration,
        )
        _PRESET_CACHE[key] = target
    return target


def _load_target_file(path: str) -> Target:
    """``Target.from_file`` cached by (realpath, mtime) for per-suite reuse."""
    real = os.path.realpath(path)
    key = (real, os.stat(real).st_mtime_ns)
    target = _FILE_CACHE.get(key)
    if target is None:
        target = Target.from_file(real)
        # Drop stale entries for the same file so edits don't leak memory.
        for stale in [k for k in _FILE_CACHE if k[0] == real and k != key]:
            del _FILE_CACHE[stale]
        _FILE_CACHE[key] = target
    return target


def resolve_target(
    spec: Union[None, str, Dict[str, Any], Target],
    num_qubits: Optional[int] = None,
) -> Target:
    """Resolve a target specification into a concrete :class:`Target`.

    Accepts a ``Target`` (returned as-is), ``None`` (the cached default), a
    ``to_dict`` payload, a path to a JSON file, or a preset name such as
    ``"xy-line"`` / ``"xy-line-16"`` / ``"heavy-hex"``.  Size-less presets are
    sized by ``num_qubits`` (usually the circuit being compiled).
    """
    if spec is None:
        return Target.default()
    if isinstance(spec, Target):
        return spec
    if isinstance(spec, dict):
        return Target.from_dict(spec)
    if isinstance(spec, str):
        base, size = _split_preset(spec)
        if base == "logical":
            # Preset names always win over same-named files; 'logical' takes
            # no size (a suffix is almost certainly a typo for a sized preset).
            if size is not None:
                raise ValueError(
                    f"the 'logical' preset has no topology and takes no qubit "
                    f"count; did you mean e.g. 'xy-line-{size}'?"
                )
            return Target.default()
        if base in _PRESET_DESCRIPTIONS:
            return _build_preset(base, size if size is not None else num_qubits)
        if spec.endswith(".json") or os.sep in spec or os.path.isfile(spec):
            return _load_target_file(spec)
        return _build_preset(base, num_qubits)  # raises with the preset list
    raise TypeError(f"cannot resolve a Target from {type(spec).__name__}")
