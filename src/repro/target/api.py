"""The shared ``compile()`` entry point of the whole compiler stack.

Every way of compiling a circuit — the deprecated compiler classes, the
experiment harness registry, the batch service and the CLI — funnels through
:func:`compile`, parameterized by a :class:`~repro.target.target.Target` and
a :class:`~repro.target.pipeline.PipelineSpec`::

    from repro.target import Target, compile

    result = compile(circuit, target=Target.xy_line(8), spec="reqisc-full")
    print(result.summary())
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.passes.base import PassManager
from repro.compiler.result import CompilationResult
from repro.ir import CircuitIR, conversion_stats
from repro.target.pipeline import PASS_REGISTRY, PassContext, PipelineSpec, named_pipeline
from repro.target.properties import PropertySet
from repro.target.target import Target, resolve_target

__all__ = ["compile", "PipelineCompiler"]


def compile(
    circuit: Union[QuantumCircuit, CircuitIR],
    target: Union[None, str, Dict[str, Any], Target] = None,
    spec: Union[None, str, PipelineSpec] = None,
    *,
    seed: int = 0,
    synthesis_cache: Optional[Any] = None,
    properties: Optional[Mapping[str, Any]] = None,
    memo: Union[None, bool, Any] = None,
    previous: Optional[CompilationResult] = None,
) -> CompilationResult:
    """Compile ``circuit`` for ``target`` with the pipeline ``spec``.

    Parameters
    ----------
    circuit:
        The program to compile: a flat :class:`QuantumCircuit`, or a
        pre-built :class:`~repro.ir.CircuitIR` (handed to the first
        IR-consuming pass without an extra conversion).
    target:
        A :class:`Target`, a preset name (``"xy-line"``, ``"heavy-hex"``,
        ...), a ``Target.to_dict()`` payload, a path to a JSON target file,
        or ``None`` for the cached default XY logical device.  Size-less
        presets are sized to the circuit.
    spec:
        A :class:`PipelineSpec` or a named pipeline (``"reqisc-full"``,
        ``"reqisc-eff"``, ``"qiskit-like"``, ...); ``None`` means
        ``"reqisc-full"`` (or ``previous``'s pipeline).  Hardware-aware
        stages are skipped when the target has no coupling map.
    seed:
        Base random seed forwarded to seed-sensitive passes (routing,
        approximate synthesis) unless their stage config pins its own.
    synthesis_cache:
        Optional :class:`~repro.service.cache.SynthesisCache` shared by the
        synthesis passes and installed as the process-global KAK cache for
        the duration of the call.
    properties:
        Initial property values merged into the run's
        :class:`~repro.target.properties.PropertySet`.
    memo:
        Pass-memoization control: a
        :class:`~repro.incremental.PassMemoStore` to consult/populate,
        ``True`` to create one (backed by ``synthesis_cache`` when given),
        ``False`` to disable even with ``previous``, ``None`` (default) to
        inherit from ``previous``.  Memoized recompilation is bit-identical
        to a from-scratch run; see ``docs/incremental.md``.
    previous:
        A prior :class:`CompilationResult` to recompile against: its target,
        pipeline and memo store become the defaults, so
        ``compile(edited, previous=result)`` replays every pass and region
        the edit did not touch.
    """
    from repro.linalg.weyl import install_kak_cache

    start = time.perf_counter()
    if previous is not None:
        if target is None:
            target = previous.target
        if spec is None:
            spec = previous.spec or previous.compiler_name
        if memo is None:
            memo = previous.memo or True
    if spec is None:
        spec = "reqisc-full"
    resolved = resolve_target(target, num_qubits=circuit.num_qubits)
    if isinstance(spec, str):
        spec = named_pipeline(spec)

    memo_store = None
    if memo is True:
        from repro.incremental import PassMemoStore

        memo_store = PassMemoStore(backing=synthesis_cache)
    elif memo:  # a PassMemoStore (False and None both disable)
        memo_store = memo

    props = PropertySet.ensure(properties)
    props["isa"] = spec.isa
    props["target"] = resolved.name

    context = PassContext(
        target=resolved, seed=seed, synthesis_cache=synthesis_cache, memo=memo_store
    )
    manager = PassManager()
    for stage in spec.stages:
        if stage.requires_topology and resolved.coupling_map is None:
            continue
        manager.append(PASS_REGISTRY.create(stage, context))
    if memo_store is not None:
        from repro.incremental import target_fingerprint

        manager.memo = memo_store
        manager.memo_context = f"{target_fingerprint(resolved)};isa={spec.isa};seed={seed}"

    conversions_before = conversion_stats()
    memo_before = memo_store.stats.snapshot() if memo_store is not None else None
    previous_kak_cache = None
    if synthesis_cache is not None:
        previous_kak_cache = install_kak_cache(synthesis_cache)
    try:
        compiled, records = manager.run_with_records(circuit, props)
    finally:
        if synthesis_cache is not None:
            install_kak_cache(previous_kak_cache)
    conversions_after = conversion_stats()

    return CompilationResult(
        circuit=compiled,
        compiler_name=spec.name,
        compile_seconds=time.perf_counter() - start,
        properties=props,
        pass_records=records,
        target=resolved,
        conversions={
            key: conversions_after[key] - conversions_before[key]
            for key in conversions_after
        },
        memo_stats=(
            memo_store.stats.delta_since(memo_before) if memo_store is not None else None
        ),
        memo=memo_store,
        spec=spec,
    )


@dataclass
class PipelineCompiler:
    """A pipeline spec bound to a target — the new-API compiler handle.

    Exposes the historical ``.name`` / ``.compile(circuit)`` interface, so
    registries (``build_compilers``), the batch service and the experiment
    harness can hold ready-to-run compilers without touching the deprecated
    classes.  ``target`` may be a concrete :class:`Target`, a preset name
    resolved per circuit, or ``None`` for the default device.
    """

    spec: PipelineSpec
    target: Union[None, str, Dict[str, Any], Target] = None
    seed: int = 0
    synthesis_cache: Optional[Any] = None
    properties: Dict[str, Any] = field(default_factory=dict)
    #: Optional :class:`~repro.incremental.PassMemoStore` consulted by every
    #: compile through this handle — the daemon's session mode pins one per
    #: session so edited resubmissions replay memoized passes/regions.
    memo: Optional[Any] = None

    @property
    def name(self) -> str:
        """Reporting name (the spec's name)."""
        return self.spec.name

    def compile(
        self, circuit: QuantumCircuit, previous: Optional[CompilationResult] = None
    ) -> CompilationResult:
        """Compile ``circuit`` with the bound spec/target/seed/cache."""
        return compile(
            circuit,
            target=self.target,
            spec=self.spec,
            seed=self.seed,
            synthesis_cache=self.synthesis_cache,
            properties=dict(self.properties) if self.properties else None,
            memo=self.memo,
            previous=previous,
        )
