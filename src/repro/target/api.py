"""The shared ``compile()`` entry point of the whole compiler stack.

Every way of compiling a circuit — the deprecated compiler classes, the
experiment harness registry, the batch service and the CLI — funnels through
:func:`compile`, parameterized by a :class:`~repro.target.target.Target` and
a :class:`~repro.target.pipeline.PipelineSpec`::

    from repro.target import Target, compile

    result = compile(circuit, target=Target.xy_line(8), spec="reqisc-full")
    print(result.summary())
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.passes.base import PassManager
from repro.compiler.result import CompilationResult
from repro.ir import CircuitIR
from repro.target.pipeline import PASS_REGISTRY, PassContext, PipelineSpec, named_pipeline
from repro.target.properties import PropertySet
from repro.target.target import Target, resolve_target

__all__ = ["compile", "PipelineCompiler"]


def compile(
    circuit: Union[QuantumCircuit, CircuitIR],
    target: Union[None, str, Dict[str, Any], Target] = None,
    spec: Union[str, PipelineSpec] = "reqisc-full",
    *,
    seed: int = 0,
    synthesis_cache: Optional[Any] = None,
    properties: Optional[Mapping[str, Any]] = None,
) -> CompilationResult:
    """Compile ``circuit`` for ``target`` with the pipeline ``spec``.

    Parameters
    ----------
    circuit:
        The program to compile: a flat :class:`QuantumCircuit`, or a
        pre-built :class:`~repro.ir.CircuitIR` (handed to the first
        IR-consuming pass without an extra conversion).
    target:
        A :class:`Target`, a preset name (``"xy-line"``, ``"heavy-hex"``,
        ...), a ``Target.to_dict()`` payload, a path to a JSON target file,
        or ``None`` for the cached default XY logical device.  Size-less
        presets are sized to the circuit.
    spec:
        A :class:`PipelineSpec` or a named pipeline (``"reqisc-full"``,
        ``"reqisc-eff"``, ``"qiskit-like"``, ...).  Hardware-aware stages are
        skipped when the target has no coupling map.
    seed:
        Base random seed forwarded to seed-sensitive passes (routing,
        approximate synthesis) unless their stage config pins its own.
    synthesis_cache:
        Optional :class:`~repro.service.cache.SynthesisCache` shared by the
        synthesis passes and installed as the process-global KAK cache for
        the duration of the call.
    properties:
        Initial property values merged into the run's
        :class:`~repro.target.properties.PropertySet`.
    """
    from repro.linalg.weyl import install_kak_cache

    start = time.perf_counter()
    resolved = resolve_target(target, num_qubits=circuit.num_qubits)
    if isinstance(spec, str):
        spec = named_pipeline(spec)

    props = PropertySet.ensure(properties)
    props["isa"] = spec.isa
    props["target"] = resolved.name

    context = PassContext(target=resolved, seed=seed, synthesis_cache=synthesis_cache)
    manager = PassManager()
    for stage in spec.stages:
        if stage.requires_topology and resolved.coupling_map is None:
            continue
        manager.append(PASS_REGISTRY.create(stage, context))

    previous_kak_cache = None
    if synthesis_cache is not None:
        previous_kak_cache = install_kak_cache(synthesis_cache)
    try:
        compiled, records = manager.run_with_records(circuit, props)
    finally:
        if synthesis_cache is not None:
            install_kak_cache(previous_kak_cache)

    return CompilationResult(
        circuit=compiled,
        compiler_name=spec.name,
        compile_seconds=time.perf_counter() - start,
        properties=props,
        pass_records=records,
        target=resolved,
    )


@dataclass
class PipelineCompiler:
    """A pipeline spec bound to a target — the new-API compiler handle.

    Exposes the historical ``.name`` / ``.compile(circuit)`` interface, so
    registries (``build_compilers``), the batch service and the experiment
    harness can hold ready-to-run compilers without touching the deprecated
    classes.  ``target`` may be a concrete :class:`Target`, a preset name
    resolved per circuit, or ``None`` for the default device.
    """

    spec: PipelineSpec
    target: Union[None, str, Dict[str, Any], Target] = None
    seed: int = 0
    synthesis_cache: Optional[Any] = None
    properties: Dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Reporting name (the spec's name)."""
        return self.spec.name

    def compile(self, circuit: QuantumCircuit) -> CompilationResult:
        """Compile ``circuit`` with the bound spec/target/seed/cache."""
        return compile(
            circuit,
            target=self.target,
            spec=self.spec,
            seed=self.seed,
            synthesis_cache=self.synthesis_cache,
            properties=dict(self.properties) if self.properties else None,
        )
