"""Exact single-qubit synthesis into the ``U3`` gate."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.gates import standard
from repro.gates.gate import Gate
from repro.linalg.su2 import u3_params_from_matrix

__all__ = ["u3_from_matrix", "one_qubit_circuit"]


def u3_from_matrix(matrix: np.ndarray) -> Tuple[float, Gate]:
    """Synthesize a 2x2 unitary into a single ``U3`` gate.

    Returns ``(global_phase, gate)`` with
    ``matrix = exp(i global_phase) * gate.matrix``.
    """
    phase, theta, phi, lam = u3_params_from_matrix(np.asarray(matrix, dtype=complex))
    return phase, standard.u3_gate(theta, phi, lam)


def one_qubit_circuit(matrix: np.ndarray, qubit: int, num_qubits: int) -> QuantumCircuit:
    """Wrap a single-qubit unitary as a one-gate circuit on ``qubit``."""
    _, gate = u3_from_matrix(matrix)
    circuit = QuantumCircuit(num_qubits)
    circuit.append(gate, [qubit])
    return circuit
