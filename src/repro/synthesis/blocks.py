"""Two-qubit block collection and consolidation.

This is the first tier of the hierarchical-synthesis pipeline (Section 5.1.2):
maximal runs of gates acting on the same qubit pair are collected and fused
into a single SU(4) operation.  The same machinery backs the baseline
compilers' block-consolidation pass (re-synthesizing each run with the
minimal number of CNOTs) and the template library's post-assembly fusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Literal, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.gates.gate import UnitaryGate
from repro.simulators.statevector import apply_gate_sequence

__all__ = [
    "TwoQubitBlock",
    "collect_two_qubit_blocks",
    "consolidate_blocks",
    "consolidate_blocks_ir",
    "block_unitary",
]

OutputForm = Literal["unitary", "can", "cx"]


@dataclass
class TwoQubitBlock:
    """A maximal run of instructions confined to one unordered qubit pair.

    ``members`` carries the collection key of every member instruction —
    the circuit position when collected from a flat circuit, the IR node id
    when collected from a :class:`repro.ir.CircuitIR`.  ``start_position``
    is the key of the first member.
    """

    qubits: Tuple[int, int]
    instructions: List[Instruction] = field(default_factory=list)
    start_position: int = 0
    members: List[int] = field(default_factory=list)

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of 2Q gates inside the block."""
        return sum(1 for instr in self.instructions if instr.is_two_qubit)


def block_unitary(block: TwoQubitBlock) -> np.ndarray:
    """4x4 unitary of a block, with ``block.qubits[0]`` as the first qubit."""
    local_index = {block.qubits[0]: 0, block.qubits[1]: 1}
    operations = [
        (instruction.gate.matrix, [local_index[q] for q in instruction.qubits])
        for instruction in block.instructions
    ]
    return apply_gate_sequence(np.eye(4, dtype=complex), operations, 2)


def _collect_blocks(
    items: Iterable[Tuple[int, Instruction]],
) -> Tuple[List[TwoQubitBlock], List[Tuple[int, Instruction]]]:
    """Generic block collector over ``(key, instruction)`` pairs in order.

    Keys are circuit positions for the flat-circuit entry point and IR node
    ids for the :class:`repro.ir.CircuitIR` entry point; the collection logic
    is identical, so both paths fuse bit-identically.
    """
    blocks: List[TwoQubitBlock] = []
    leftovers: List[Tuple[int, Instruction]] = []
    open_block_for_qubit: Dict[int, Optional[int]] = {}

    def close_qubit(qubit: int) -> None:
        open_block_for_qubit[qubit] = None

    for key, instruction in items:
        qubits = instruction.qubits
        if instruction.num_qubits == 2:
            pair = tuple(sorted(qubits))
            idx0 = open_block_for_qubit.get(pair[0])
            idx1 = open_block_for_qubit.get(pair[1])
            if idx0 is not None and idx0 == idx1 and blocks[idx0].qubits == pair:
                blocks[idx0].instructions.append(instruction)
                blocks[idx0].members.append(key)
            else:
                for qubit in pair:
                    existing = open_block_for_qubit.get(qubit)
                    if existing is not None:
                        close_qubit(qubit)
                blocks.append(
                    TwoQubitBlock(
                        qubits=pair,
                        instructions=[instruction],
                        start_position=key,
                        members=[key],
                    )
                )
                index = len(blocks) - 1
                open_block_for_qubit[pair[0]] = index
                open_block_for_qubit[pair[1]] = index
        elif instruction.num_qubits == 1:
            qubit = qubits[0]
            index = open_block_for_qubit.get(qubit)
            if index is not None:
                blocks[index].instructions.append(instruction)
                blocks[index].members.append(key)
            else:
                leftovers.append((key, instruction))
        else:
            for qubit in qubits:
                if open_block_for_qubit.get(qubit) is not None:
                    close_qubit(qubit)
            leftovers.append((key, instruction))
    return blocks, leftovers


def collect_two_qubit_blocks(circuit: QuantumCircuit) -> Tuple[List[TwoQubitBlock], List[Tuple[int, Instruction]]]:
    """Partition a circuit into 2Q blocks plus leftover standalone instructions.

    Returns ``(blocks, leftovers)`` where every instruction of the circuit is
    either a member of exactly one block or listed (with its position) in
    ``leftovers``.  Blocks contain at least one two-qubit gate; single-qubit
    gates sandwiched inside a run join the surrounding block.
    """
    return _collect_blocks(enumerate(circuit))


def _fuse_block(
    block: TwoQubitBlock, form: OutputForm, only_if_fewer_gates: bool
) -> Optional[List[Instruction]]:
    """Replacement instructions for one block (shared by both entry points).

    Returns ``None`` when ``only_if_fewer_gates`` keeps the original run —
    the block is still *collapsed* onto its start position (matching the
    historical emission order), but callers can skip the rewrite entirely
    when the members are already contiguous.
    """
    from repro.synthesis.two_qubit import two_qubit_to_can_circuit, two_qubit_to_cnot_circuit

    matrix = block_unitary(block)
    if form == "unitary":
        return [Instruction(UnitaryGate(matrix, label="su4"), block.qubits)]
    if form == "can":
        synthesized = two_qubit_to_can_circuit(matrix, qubits=(0, 1))
    else:
        synthesized = two_qubit_to_cnot_circuit(matrix, qubits=(0, 1))
    mapping = {0: block.qubits[0], 1: block.qubits[1]}
    replacement = [instr.remap(mapping) for instr in synthesized]
    if only_if_fewer_gates:
        new_count = sum(1 for instr in replacement if instr.is_two_qubit)
        if new_count >= block.num_two_qubit_gates:
            return None
    return replacement


#: Sentinel distinguishing "not yet computed" from "keep the original run"
#: (``None``) in the batched fusion helper.
_PENDING = object()

#: Memo namespace version for the batched ``"can"`` fusion (v2: batched KAK
#: numerics) — stores written by the scalar-arithmetic code are never
#: replayed against the batch computation.
_CAN_FUSE_CONTEXT = "fuse/2"


def _fuse_blocks(
    blocks: List[TwoQubitBlock],
    form: OutputForm,
    only_if_fewer_gates: bool,
    memo: Optional[Any] = None,
) -> List[Optional[List[Instruction]]]:
    """Replacement lists for ``blocks`` (``None`` = keep the original run).

    The ``"can"`` form collects every non-memoized block unitary and runs the
    KAK decompositions as one vectorized batch; batch items are
    composition-independent, so memo hit/miss grouping (and the flat-vs-IR
    entry point) cannot perturb any block's synthesis.  Other forms fuse one
    block at a time as before.
    """
    if form != "can":
        if memo is not None:
            return [
                _fuse_block_memo(block, form, only_if_fewer_gates, memo)
                for block in blocks
            ]
        return [_fuse_block(block, form, only_if_fewer_gates) for block in blocks]

    from repro.synthesis.two_qubit import two_qubit_to_can_circuits_batch

    results: List[Any] = [_PENDING] * len(blocks)
    keys: List[Optional[str]] = [None] * len(blocks)
    if memo is not None:
        from repro.incremental import MISS, region_fingerprint

        for index, block in enumerate(blocks):
            mapping = {block.qubits[0]: 0, block.qubits[1]: 1}
            local = [instr.remap(mapping) for instr in block.instructions]
            keys[index] = region_fingerprint(
                local, _CAN_FUSE_CONTEXT, form, f"fewer={only_if_fewer_gates}"
            )
            cached = memo.lookup("region", keys[index])
            if cached is MISS:
                continue
            if cached is None:
                results[index] = None
            else:
                inverse = {0: block.qubits[0], 1: block.qubits[1]}
                results[index] = [instr.remap(inverse) for instr in cached]

    pending = [index for index, value in enumerate(results) if value is _PENDING]
    if pending:
        circuits = two_qubit_to_can_circuits_batch(
            [block_unitary(blocks[index]) for index in pending], qubits=(0, 1)
        )
        for index, circuit in zip(pending, circuits):
            block = blocks[index]
            mapping = {0: block.qubits[0], 1: block.qubits[1]}
            replacement = [instr.remap(mapping) for instr in circuit]
            if only_if_fewer_gates:
                new_count = sum(1 for instr in replacement if instr.is_two_qubit)
                if new_count >= block.num_two_qubit_gates:
                    replacement = None
            if memo is not None:
                if replacement is None:
                    memo.store("region", keys[index], None)
                else:
                    forward = {block.qubits[0]: 0, block.qubits[1]: 1}
                    memo.store(
                        "region",
                        keys[index],
                        [instr.remap(forward) for instr in replacement],
                    )
            results[index] = replacement
    return results


def consolidate_blocks(
    circuit: QuantumCircuit,
    form: OutputForm = "unitary",
    only_if_fewer_gates: bool = False,
) -> QuantumCircuit:
    """Fuse every maximal 2Q run of ``circuit`` into a single operation.

    ``form`` selects the representation of the fused block: an opaque
    ``UnitaryGate`` (``"unitary"``), a ``{Can, U3}`` synthesis (``"can"``) or a
    minimal-CNOT synthesis (``"cx"``).  With ``only_if_fewer_gates`` the
    original run is kept whenever re-synthesis would not reduce its 2Q count
    (used by the CNOT baselines).
    """
    blocks, leftovers = collect_two_qubit_blocks(circuit)
    emissions: Dict[int, List[Instruction]] = {}
    for position, instruction in leftovers:
        emissions.setdefault(position, []).append(instruction)

    for block, replacement in zip(blocks, _fuse_blocks(blocks, form, only_if_fewer_gates)):
        if replacement is None:  # kept run, emitted at its start position
            replacement = list(block.instructions)
        emissions.setdefault(block.start_position, []).extend(replacement)

    result = QuantumCircuit(circuit.num_qubits, circuit.name)
    for position in range(len(circuit)):
        for instruction in emissions.get(position, []):
            result.append(instruction.gate, instruction.qubits)
    return result


def _fuse_block_memo(
    block: TwoQubitBlock, form: OutputForm, only_if_fewer_gates: bool, memo: Any
) -> Optional[List[Instruction]]:
    """Memoized :func:`_fuse_block`: keyed by the block's *local* content.

    The block is relabelled onto local wires ``(0, 1)`` (the same mapping
    :func:`block_unitary` uses), so structurally identical runs on different
    qubit pairs share one entry; a hit remaps the cached local replacement
    back onto the block's wires — bit-identical to recomputation because the
    fused result depends on the wires only through that relabelling.
    """
    from repro.incremental import MISS, region_fingerprint

    mapping = {block.qubits[0]: 0, block.qubits[1]: 1}
    local = [instr.remap(mapping) for instr in block.instructions]
    key = region_fingerprint(local, "fuse", form, f"fewer={only_if_fewer_gates}")
    cached = memo.lookup("region", key)
    if cached is not MISS:
        if cached is None:
            return None
        inverse = {0: block.qubits[0], 1: block.qubits[1]}
        return [instr.remap(inverse) for instr in cached]
    replacement = _fuse_block(block, form, only_if_fewer_gates)
    if replacement is None:
        memo.store("region", key, None)
        return None
    memo.store("region", key, [instr.remap(mapping) for instr in replacement])
    return replacement


def consolidate_blocks_ir(
    ir,
    form: OutputForm = "unitary",
    only_if_fewer_gates: bool = False,
    memo: Optional[Any] = None,
) -> None:
    """In-place block consolidation of a :class:`repro.ir.CircuitIR`.

    Identical fusion decisions (and arithmetic) to :func:`consolidate_blocks`
    — each maximal run is collapsed onto the position of its first member via
    :meth:`~repro.ir.CircuitIR.replace_block`, leftovers keep their nodes
    untouched — so the resulting instruction sequence is bit-identical to the
    flat-circuit path.  ``memo`` optionally memoizes each block's fusion per
    block content (see :func:`_fuse_block_memo`).
    """
    blocks, _ = _collect_blocks([(node, ir.instruction(node)) for node in ir.nodes()])
    for block, replacement in zip(
        blocks, _fuse_blocks(blocks, form, only_if_fewer_gates, memo=memo)
    ):
        if replacement is None:
            # Kept run: the flat path still collapses it onto the block's
            # start position, which only matters when other instructions are
            # interleaved with the members — skip the rewrite (and the cache
            # invalidation) when they are already contiguous.
            if _members_contiguous(ir, block.members):
                continue
            replacement = list(block.instructions)
        ir.replace_block(block.members, replacement)


def _members_contiguous(ir, members: List[int]) -> bool:
    """True when ``members`` occupy consecutive program-order positions."""
    node = members[0]
    for expected in members:
        if node != expected:
            return False
        node = ir.next_node(node)
    return True
