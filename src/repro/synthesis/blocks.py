"""Two-qubit block collection and consolidation.

This is the first tier of the hierarchical-synthesis pipeline (Section 5.1.2):
maximal runs of gates acting on the same qubit pair are collected and fused
into a single SU(4) operation.  The same machinery backs the baseline
compilers' block-consolidation pass (re-synthesizing each run with the
minimal number of CNOTs) and the template library's post-assembly fusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.gates.gate import UnitaryGate
from repro.simulators.statevector import apply_gate

__all__ = ["TwoQubitBlock", "collect_two_qubit_blocks", "consolidate_blocks", "block_unitary"]

OutputForm = Literal["unitary", "can", "cx"]


@dataclass
class TwoQubitBlock:
    """A maximal run of instructions confined to one unordered qubit pair."""

    qubits: Tuple[int, int]
    instructions: List[Instruction] = field(default_factory=list)
    start_position: int = 0

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of 2Q gates inside the block."""
        return sum(1 for instr in self.instructions if instr.is_two_qubit)


def block_unitary(block: TwoQubitBlock) -> np.ndarray:
    """4x4 unitary of a block, with ``block.qubits[0]`` as the first qubit."""
    local_index = {block.qubits[0]: 0, block.qubits[1]: 1}
    unitary = np.eye(4, dtype=complex)
    for instruction in block.instructions:
        local_qubits = [local_index[q] for q in instruction.qubits]
        unitary = apply_gate(unitary, instruction.gate.matrix, local_qubits, 2)
    return unitary


def collect_two_qubit_blocks(circuit: QuantumCircuit) -> Tuple[List[TwoQubitBlock], List[Tuple[int, Instruction]]]:
    """Partition a circuit into 2Q blocks plus leftover standalone instructions.

    Returns ``(blocks, leftovers)`` where every instruction of the circuit is
    either a member of exactly one block or listed (with its position) in
    ``leftovers``.  Blocks contain at least one two-qubit gate; single-qubit
    gates sandwiched inside a run join the surrounding block.
    """
    blocks: List[TwoQubitBlock] = []
    leftovers: List[Tuple[int, Instruction]] = []
    open_block_for_qubit: Dict[int, Optional[int]] = {}

    def close_qubit(qubit: int) -> None:
        open_block_for_qubit[qubit] = None

    for position, instruction in enumerate(circuit):
        qubits = instruction.qubits
        if instruction.num_qubits == 2:
            pair = tuple(sorted(qubits))
            idx0 = open_block_for_qubit.get(pair[0])
            idx1 = open_block_for_qubit.get(pair[1])
            if idx0 is not None and idx0 == idx1 and blocks[idx0].qubits == pair:
                blocks[idx0].instructions.append(instruction)
            else:
                for qubit in pair:
                    existing = open_block_for_qubit.get(qubit)
                    if existing is not None:
                        close_qubit(qubit)
                blocks.append(TwoQubitBlock(qubits=pair, instructions=[instruction], start_position=position))
                index = len(blocks) - 1
                open_block_for_qubit[pair[0]] = index
                open_block_for_qubit[pair[1]] = index
        elif instruction.num_qubits == 1:
            qubit = qubits[0]
            index = open_block_for_qubit.get(qubit)
            if index is not None:
                blocks[index].instructions.append(instruction)
            else:
                leftovers.append((position, instruction))
        else:
            for qubit in qubits:
                if open_block_for_qubit.get(qubit) is not None:
                    close_qubit(qubit)
            leftovers.append((position, instruction))
    return blocks, leftovers


def consolidate_blocks(
    circuit: QuantumCircuit,
    form: OutputForm = "unitary",
    only_if_fewer_gates: bool = False,
) -> QuantumCircuit:
    """Fuse every maximal 2Q run of ``circuit`` into a single operation.

    ``form`` selects the representation of the fused block: an opaque
    ``UnitaryGate`` (``"unitary"``), a ``{Can, U3}`` synthesis (``"can"``) or a
    minimal-CNOT synthesis (``"cx"``).  With ``only_if_fewer_gates`` the
    original run is kept whenever re-synthesis would not reduce its 2Q count
    (used by the CNOT baselines).
    """
    from repro.synthesis.two_qubit import two_qubit_to_can_circuit, two_qubit_to_cnot_circuit

    blocks, leftovers = collect_two_qubit_blocks(circuit)
    emissions: Dict[int, List[Instruction]] = {}
    for position, instruction in leftovers:
        emissions.setdefault(position, []).append(instruction)

    for block in blocks:
        matrix = block_unitary(block)
        if form == "unitary":
            replacement = [Instruction(UnitaryGate(matrix, label="su4"), block.qubits)]
        else:
            if form == "can":
                synthesized = two_qubit_to_can_circuit(matrix, qubits=(0, 1))
            else:
                synthesized = two_qubit_to_cnot_circuit(matrix, qubits=(0, 1))
            mapping = {0: block.qubits[0], 1: block.qubits[1]}
            replacement = [instr.remap(mapping) for instr in synthesized]
            if only_if_fewer_gates:
                new_count = sum(1 for instr in replacement if instr.is_two_qubit)
                if new_count >= block.num_two_qubit_gates:
                    replacement = list(block.instructions)
        emissions.setdefault(block.start_position, []).extend(replacement)

    result = QuantumCircuit(circuit.num_qubits, circuit.name)
    for position in range(len(circuit)):
        for instruction in emissions.get(position, []):
            result.append(instruction.gate, instruction.qubits)
    return result
