"""Synthesis engines: exact 1Q/2Q synthesis, numerical approximate synthesis,
MCX decomposition and the pre-synthesized template library."""

from repro.synthesis.one_qubit import one_qubit_circuit, u3_from_matrix
from repro.synthesis.two_qubit import (
    canonical_to_cnot_circuit,
    two_qubit_to_can_circuit,
    two_qubit_to_cnot_circuit,
    two_qubit_to_fixed_basis_circuit,
)
from repro.synthesis.approximate import (
    AnsatzBlock,
    ApproximateSynthesizer,
    SynthesisResult,
)
from repro.synthesis.mcx import decompose_mcx, expand_mcx_gates
from repro.synthesis.templates import TemplateLibrary, default_template_library

__all__ = [
    "one_qubit_circuit",
    "u3_from_matrix",
    "canonical_to_cnot_circuit",
    "two_qubit_to_can_circuit",
    "two_qubit_to_cnot_circuit",
    "two_qubit_to_fixed_basis_circuit",
    "AnsatzBlock",
    "ApproximateSynthesizer",
    "SynthesisResult",
    "decompose_mcx",
    "expand_mcx_gates",
    "TemplateLibrary",
    "default_template_library",
]
