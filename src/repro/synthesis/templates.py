"""Pre-synthesized template library for program-aware synthesis (Section 5.2).

Real-world "digital logic" programs are dominated by a small set of 3-qubit
intermediate-representation patterns: Toffoli (CCX), CCZ, Peres, the MAJ/UMA
blocks of ripple-carry adders, and Fredkin (CSWAP).  For each pattern the
library stores an optimized SU(4)-ISA realization (built from the classic
controlled-V constructions and consolidated into canonical gates), together
with equivalent-circuit-class (ECC) variants derived from self-invertibility
and control-permutability that the assembly stage can choose from to maximize
fusion with neighbouring templates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.gates import standard
from repro.synthesis.blocks import consolidate_blocks

__all__ = ["Template", "TemplateLibrary", "default_template_library", "template_ir_key"]


def _ccx_reference() -> QuantumCircuit:
    """Reference (definition) circuit of the Toffoli gate."""
    circuit = QuantumCircuit(3, "ccx_ref")
    circuit.ccx(0, 1, 2)
    return circuit


def _ccx_cv_circuit() -> QuantumCircuit:
    """Five-2Q-gate Toffoli construction via controlled-sqrt(X) gates."""
    circuit = QuantumCircuit(3, "ccx")
    circuit.cv(1, 2)
    circuit.cx(0, 1)
    circuit.cvdg(1, 2)
    circuit.cx(0, 1)
    circuit.cv(0, 2)
    return circuit


def _ccz_cv_circuit() -> QuantumCircuit:
    """CCZ as a Hadamard-conjugated Toffoli (the H gates join the 2Q blocks)."""
    circuit = QuantumCircuit(3, "ccz")
    circuit.h(2)
    circuit.compose(_ccx_cv_circuit())
    circuit.h(2)
    return circuit


def _peres_reference() -> QuantumCircuit:
    """Peres gate: Toffoli followed by a CNOT on the control pair."""
    circuit = QuantumCircuit(3, "peres_ref")
    circuit.ccx(0, 1, 2)
    circuit.cx(0, 1)
    return circuit


def _peres_circuit() -> QuantumCircuit:
    """Four-2Q-gate Peres construction (the trailing CNOT cancels one CX)."""
    circuit = QuantumCircuit(3, "peres")
    circuit.cv(1, 2)
    circuit.cx(0, 1)
    circuit.cvdg(1, 2)
    circuit.cv(0, 2)
    return circuit


def _cswap_reference() -> QuantumCircuit:
    circuit = QuantumCircuit(3, "cswap_ref")
    circuit.cswap(0, 1, 2)
    return circuit


def _cswap_circuit() -> QuantumCircuit:
    """Fredkin gate: CX-conjugated Toffoli; the outer CX gates fuse."""
    circuit = QuantumCircuit(3, "cswap")
    circuit.cx(2, 1)
    circuit.compose(_ccx_cv_circuit())
    circuit.cx(2, 1)
    return circuit


def _maj_reference() -> QuantumCircuit:
    """Cuccaro MAJ block on (carry-in, b, a) = qubits (0, 1, 2)."""
    circuit = QuantumCircuit(3, "maj_ref")
    circuit.cx(2, 1)
    circuit.cx(2, 0)
    circuit.ccx(0, 1, 2)
    return circuit


def _maj_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3, "maj")
    circuit.cx(2, 1)
    circuit.cx(2, 0)
    circuit.compose(_ccx_cv_circuit())
    return circuit


def _uma_reference() -> QuantumCircuit:
    """Cuccaro UMA (2-CNOT version) block on qubits (0, 1, 2)."""
    circuit = QuantumCircuit(3, "uma_ref")
    circuit.ccx(0, 1, 2)
    circuit.cx(2, 0)
    circuit.cx(0, 1)
    return circuit


def _uma_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3, "uma")
    circuit.compose(_ccx_cv_circuit())
    circuit.cx(2, 0)
    circuit.cx(0, 1)
    return circuit


@dataclass
class Template:
    """A named 3-qubit IR pattern and its optimized SU(4)-ISA realizations."""

    name: str
    reference: QuantumCircuit
    realization: QuantumCircuit
    variants: List[QuantumCircuit]

    @property
    def num_su4(self) -> int:
        """Two-qubit gate count of the primary realization."""
        return self.realization.count_two_qubit_gates()


def template_ir_key(gate_name: str, local_qubits: Tuple[int, ...]) -> str:
    """Library key of a high-level IR instruction.

    ``local_qubits`` is the permutation of (0, 1, 2) giving the roles of the
    instruction qubits; patterns that are symmetric under control exchange
    (CCX, CCZ) are normalized so permuted controls share one template.
    """
    if gate_name in ("ccx", "ccz"):
        controls = tuple(sorted(local_qubits[:2]))
        return f"{gate_name}:{controls[0]}{controls[1]}->{local_qubits[2]}"
    roles = "".join(str(q) for q in local_qubits)
    return f"{gate_name}:{roles}"


class TemplateLibrary:
    """Lookup table from 3-qubit IR patterns to SU(4)-ISA circuits."""

    def __init__(self, optimize_with_synthesis: bool = False, synthesis_tolerance: float = 1e-8) -> None:
        self._templates: Dict[str, Template] = {}
        self._optimize = optimize_with_synthesis
        self._tolerance = synthesis_tolerance
        self._register_defaults()

    # ------------------------------------------------------------------
    def _register_defaults(self) -> None:
        self.register("ccx", _ccx_reference(), _ccx_cv_circuit())
        self.register("ccz", QuantumCircuit(3).ccz(0, 1, 2), _ccz_cv_circuit())
        self.register("peres", _peres_reference(), _peres_circuit())
        self.register("cswap", _cswap_reference(), _cswap_circuit())
        self.register("maj", _maj_reference(), _maj_circuit())
        self.register("uma", _uma_reference(), _uma_circuit())

    def register(
        self,
        name: str,
        reference: QuantumCircuit,
        realization: QuantumCircuit,
    ) -> Template:
        """Register (or replace) a template after validating its correctness."""
        ref_unitary = reference.to_unitary()
        realized = realization.to_unitary()
        dim = ref_unitary.shape[0]
        overlap = abs(np.trace(ref_unitary.conj().T @ realized)) / dim
        if overlap < 1.0 - 1e-9:
            raise ValueError(
                f"template {name!r} does not implement its reference (overlap {overlap:.6f})"
            )
        fused = consolidate_blocks(realization, form="can")
        variants = []
        self_inverse = np.allclose(ref_unitary @ ref_unitary, np.eye(dim), atol=1e-9)
        if self_inverse:
            # ECC variant from self-invertibility: the reversed adjoint circuit
            # realizes the same gate but starts/ends on different qubit pairs.
            variants.append(self._reversed_variant(realization))
        template = Template(name=name, reference=reference, realization=fused, variants=variants)
        if self._optimize:
            optimized = self._optimize_template(ref_unitary, fused)
            if optimized is not None and optimized.count_two_qubit_gates() < template.num_su4:
                template = Template(
                    name=name, reference=reference, realization=optimized, variants=[optimized] + variants
                )
        self._templates[name] = template
        return template

    def _reversed_variant(self, realization: QuantumCircuit) -> QuantumCircuit:
        """ECC variant: the adjoint circuit read backwards.

        For self-inverse IR patterns (CCX, CCZ, CSWAP) this realizes the same
        unitary while starting/ending on different qubit pairs, which gives
        the assembly stage fusion opportunities with neighbouring templates.
        """
        reversed_circuit = realization.inverse()
        return consolidate_blocks(reversed_circuit, form="can")

    def _optimize_template(
        self, target: np.ndarray, fallback: QuantumCircuit
    ) -> Optional[QuantumCircuit]:
        """Optionally search for a shorter realization via approximate synthesis."""
        from repro.synthesis.approximate import ApproximateSynthesizer

        synthesizer = ApproximateSynthesizer(tolerance=self._tolerance, restarts=2, seed=7)
        best = synthesizer.synthesize(
            target,
            num_qubits=3,
            max_blocks=max(fallback.count_two_qubit_gates() - 1, 1),
            min_blocks=3,
        )
        if best is None or best.infidelity > self._tolerance:
            return None
        return best.circuit

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Registered template names."""
        return sorted(self._templates)

    def has(self, name: str) -> bool:
        """True when a template with ``name`` is registered."""
        return name in self._templates

    def get(self, name: str) -> Template:
        """Look up a template by name."""
        return self._templates[name]

    def realization(self, name: str) -> QuantumCircuit:
        """Primary SU(4)-ISA realization of a template."""
        return self._templates[name].realization.copy()

    def variants(self, name: str) -> List[QuantumCircuit]:
        """All registered ECC variants (primary first)."""
        template = self._templates[name]
        return [template.realization.copy()] + [v.copy() for v in template.variants]

    def su4_count(self, name: str) -> int:
        """SU(4) count of the primary realization."""
        return self._templates[name].num_su4


_DEFAULT_LIBRARY: Optional[TemplateLibrary] = None


def default_template_library() -> TemplateLibrary:
    """Singleton default template library (built on first use)."""
    global _DEFAULT_LIBRARY
    if _DEFAULT_LIBRARY is None:
        _DEFAULT_LIBRARY = TemplateLibrary()
    return _DEFAULT_LIBRARY
