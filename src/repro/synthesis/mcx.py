"""Multi-controlled-X decomposition into Toffoli (CCX) gates.

Programs of the "quantum versions of digital logic" type (Section 5.2.1) are
expressed with ``MCX`` subroutines.  The compiler first lowers them to CCX
gates (the 3-qubit IR granularity used by template-based synthesis) using the
standard Barenco et al. v-chain construction, which needs ``k - 2`` ancilla
qubits for ``k`` controls.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.gates import standard

__all__ = ["decompose_mcx", "expand_mcx_gates", "required_ancillas"]


def required_ancillas(num_controls: int) -> int:
    """Ancilla qubits needed by the v-chain decomposition."""
    return max(0, num_controls - 2)


def decompose_mcx(
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
    num_qubits: int,
) -> QuantumCircuit:
    """Decompose a multi-controlled X into CX/CCX gates.

    Uses the v-chain: partial products of the controls are accumulated into
    the ancillas with CCX gates, the final CCX hits the target, and the
    ancilla computations are uncomputed in reverse order.

    The ancillas must be *clean* (in state ``|0>``) when the gate executes;
    they are returned to ``|0>`` afterwards.  Workload generators allocate
    dedicated ancilla lines for MCX-based programs, mirroring the garbage
    lines of RevLib-style reversible benchmarks.
    """
    controls = list(controls)
    ancillas = list(ancillas)
    circuit = QuantumCircuit(num_qubits, "mcx")
    k = len(controls)
    if k == 0:
        circuit.x(target)
        return circuit
    if k == 1:
        circuit.cx(controls[0], target)
        return circuit
    if k == 2:
        circuit.ccx(controls[0], controls[1], target)
        return circuit
    needed = required_ancillas(k)
    if len(ancillas) < needed:
        raise ValueError(
            f"mcx with {k} controls needs {needed} ancilla qubits, got {len(ancillas)}"
        )
    # Compute chain: anc[0] = c0 AND c1; anc[i] = anc[i-1] AND c_{i+1}.
    compute: List[Tuple[int, int, int]] = []
    compute.append((controls[0], controls[1], ancillas[0]))
    for i in range(2, k - 1):
        compute.append((ancillas[i - 2], controls[i], ancillas[i - 1]))
    for a, b, t in compute:
        circuit.ccx(a, b, t)
    circuit.ccx(ancillas[k - 3], controls[k - 1], target)
    for a, b, t in reversed(compute):
        circuit.ccx(a, b, t)
    return circuit


def expand_mcx_gates(
    circuit: QuantumCircuit, ancillas: Optional[Sequence[int]] = None
) -> QuantumCircuit:
    """Replace every ``mcx`` instruction in ``circuit`` with its CCX expansion.

    ``ancillas`` designates the *clean* scratch qubits; when omitted, any
    circuit qubit not touched by the particular ``mcx`` instruction is used.
    The caller is responsible for those qubits being in ``|0>`` whenever the
    ``mcx`` executes (the workload generators guarantee this by reserving
    dedicated ancilla lines).
    """
    expanded = QuantumCircuit(circuit.num_qubits, circuit.name)
    for instruction in circuit:
        if instruction.gate.name != "mcx":
            expanded.append(instruction.gate, instruction.qubits)
            continue
        *controls, target = instruction.qubits
        if ancillas is not None:
            free = [q for q in ancillas if q not in instruction.qubits]
        else:
            free = [q for q in range(circuit.num_qubits) if q not in instruction.qubits]
        sub = decompose_mcx(controls, target, free, circuit.num_qubits)
        expanded.extend(sub.instructions)
    return expanded
