"""Numerical approximate synthesis (the BQSKit-style kernel).

Given a small (2-4 qubit) target unitary, find a circuit made of two-qubit
blocks (parametrized canonical gates, or a fixed basis gate) interleaved with
``U3`` gates that matches the target within a configurable infidelity.  This
is the engine behind:

* the hierarchical-synthesis pass (re-synthesizing 3-qubit partitions with
  fewer SU(4) gates, Section 5.1),
* the template pre-synthesis of the program-aware pass (Section 5.2),
* fixed-basis decomposition of variational SU(4) gates (Section 5.3.1).

The structural search follows the paper's approach: try increasingly long
block sequences and numerically instantiate each (multi-start local
optimization of the continuous parameters); stop at the first structure that
reaches the requested precision.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.circuits.circuit import QuantumCircuit
from repro.gates import standard
from repro.linalg.su2 import u3_matrix
from repro.linalg.weyl import canonical_gate
from repro.simulators.statevector import apply_gate_sequence

__all__ = ["AnsatzBlock", "SynthesisResult", "ApproximateSynthesizer", "default_pair_order"]


@dataclass(frozen=True)
class AnsatzBlock:
    """One two-qubit block of a synthesis ansatz.

    ``gate_name`` selects a fixed basis gate (``"sqisw"``, ``"b"``, ``"cx"``,
    ...); ``None`` makes the block a fully parametrized canonical gate (three
    continuous parameters).
    """

    pair: Tuple[int, int]
    gate_name: Optional[str] = None

    @property
    def num_parameters(self) -> int:
        """Continuous parameters contributed by the 2Q gate itself."""
        return 3 if self.gate_name is None else 0


@dataclass
class SynthesisResult:
    """A synthesized circuit together with its achieved precision."""

    circuit: QuantumCircuit
    infidelity: float
    parameters: np.ndarray
    blocks: Tuple[AnsatzBlock, ...]

    @property
    def two_qubit_count(self) -> int:
        """Number of two-qubit gates in the synthesized circuit."""
        return self.circuit.count_two_qubit_gates()


def default_pair_order(num_qubits: int) -> List[Tuple[int, int]]:
    """Round-robin ordering of qubit pairs used by the structural search."""
    pairs = list(itertools.combinations(range(num_qubits), 2))
    return pairs


class ApproximateSynthesizer:
    """Multi-start numerical instantiation plus structural search."""

    def __init__(
        self,
        tolerance: float = 1e-8,
        restarts: int = 3,
        seed: int = 0,
        max_iterations: int = 600,
    ) -> None:
        self.tolerance = tolerance
        self.restarts = restarts
        self.seed = seed
        self.max_iterations = max_iterations
        self._cache: Dict[bytes, SynthesisResult] = {}

    # ------------------------------------------------------------------
    # Parameter layout helpers.
    # ------------------------------------------------------------------
    @staticmethod
    def _num_parameters(num_qubits: int, blocks: Sequence[AnsatzBlock]) -> int:
        count = 3 * num_qubits  # initial U3 layer on every qubit
        for block in blocks:
            count += block.num_parameters + 6  # trailing U3 on the two block qubits
        return count

    @staticmethod
    def _build_unitary(
        params: np.ndarray, num_qubits: int, blocks: Sequence[AnsatzBlock]
    ) -> np.ndarray:
        dim = 2**num_qubits
        # One (matrix, qubits) list, applied through the sequence kernel: the
        # optimizer evaluates this ansatz structure thousands of times, so
        # the cached permutation plan and single-transpose-per-gate path pay
        # off directly in instantiation wall time (bit-identical to the
        # historical per-gate loop).
        operations = []
        cursor = 0
        for qubit in range(num_qubits):
            theta, phi, lam = params[cursor : cursor + 3]
            cursor += 3
            operations.append((u3_matrix(theta, phi, lam), (qubit,)))
        for block in blocks:
            if block.gate_name is None:
                x, y, z = params[cursor : cursor + 3]
                cursor += 3
                matrix = canonical_gate(x, y, z)
            else:
                matrix = standard.named_gate(block.gate_name).matrix
            operations.append((matrix, block.pair))
            for qubit in block.pair:
                theta, phi, lam = params[cursor : cursor + 3]
                cursor += 3
                operations.append((u3_matrix(theta, phi, lam), (qubit,)))
        return apply_gate_sequence(np.eye(dim, dtype=complex), operations, num_qubits)

    @staticmethod
    def _build_circuit(
        params: np.ndarray, num_qubits: int, blocks: Sequence[AnsatzBlock]
    ) -> QuantumCircuit:
        circuit = QuantumCircuit(num_qubits, "approx_synthesis")
        cursor = 0
        for qubit in range(num_qubits):
            theta, phi, lam = params[cursor : cursor + 3]
            cursor += 3
            circuit.u3(theta, phi, lam, qubit)
        for block in blocks:
            if block.gate_name is None:
                x, y, z = params[cursor : cursor + 3]
                cursor += 3
                circuit.can(x, y, z, *block.pair)
            else:
                circuit.append(standard.named_gate(block.gate_name), block.pair)
            for qubit in block.pair:
                theta, phi, lam = params[cursor : cursor + 3]
                cursor += 3
                circuit.u3(theta, phi, lam, qubit)
        return circuit

    # ------------------------------------------------------------------
    # Numerical instantiation.
    # ------------------------------------------------------------------
    def instantiate(
        self,
        target: np.ndarray,
        num_qubits: int,
        blocks: Sequence[AnsatzBlock],
        initial_parameters: Optional[np.ndarray] = None,
    ) -> Optional[SynthesisResult]:
        """Optimize the continuous parameters of a fixed block structure.

        Returns the best result found (which may exceed the tolerance), or
        ``None`` when the optimizer failed outright.
        """
        target = np.asarray(target, dtype=complex)
        dim = target.shape[0]
        target_dag = target.conj().T
        num_params = self._num_parameters(num_qubits, blocks)
        rng = np.random.default_rng(self.seed)

        def infidelity(params: np.ndarray) -> float:
            trial = self._build_unitary(params, num_qubits, blocks)
            overlap = np.trace(target_dag @ trial)
            return 1.0 - abs(overlap) / dim

        best_params: Optional[np.ndarray] = None
        best_value = math.inf
        starts: List[np.ndarray] = []
        if initial_parameters is not None:
            starts.append(np.asarray(initial_parameters, dtype=float))
        starts.append(np.zeros(num_params) + 0.1)
        while len(starts) < self.restarts + (1 if initial_parameters is not None else 0) + 1:
            starts.append(rng.uniform(-math.pi, math.pi, size=num_params))

        for start in starts:
            result = minimize(
                infidelity,
                x0=start,
                method="L-BFGS-B",
                options={"maxiter": self.max_iterations, "ftol": 1e-16, "gtol": 1e-12},
            )
            value = float(result.fun)
            if value < best_value:
                best_value = value
                best_params = result.x
            if best_value <= self.tolerance:
                break
        if best_params is None:
            return None
        circuit = self._build_circuit(best_params, num_qubits, blocks)
        return SynthesisResult(
            circuit=circuit,
            infidelity=best_value,
            parameters=best_params,
            blocks=tuple(blocks),
        )

    # ------------------------------------------------------------------
    # Structural search.
    # ------------------------------------------------------------------
    def synthesize(
        self,
        target: np.ndarray,
        num_qubits: int,
        max_blocks: int,
        min_blocks: int = 0,
        pair_order: Optional[Sequence[Tuple[int, int]]] = None,
        use_cache: bool = True,
    ) -> Optional[SynthesisResult]:
        """Find a short SU(4)-block circuit for ``target``.

        Block structures are linear sequences whose qubit pairs cycle through
        ``pair_order`` (all pairs by default).  The first structure reaching
        the tolerance wins; otherwise the best attempt is returned.
        """
        target = np.asarray(target, dtype=complex)
        cache_key = None
        if use_cache:
            cache_key = np.round(target, 10).tobytes() + bytes([max_blocks, min_blocks])
            if cache_key in self._cache:
                return self._cache[cache_key]
        pairs = list(pair_order) if pair_order is not None else default_pair_order(num_qubits)
        best: Optional[SynthesisResult] = None
        for count in range(min_blocks, max_blocks + 1):
            blocks = [AnsatzBlock(pair=pairs[i % len(pairs)]) for i in range(count)]
            result = self.instantiate(target, num_qubits, blocks)
            if result is None:
                continue
            if best is None or result.infidelity < best.infidelity:
                best = result
            if result.infidelity <= self.tolerance:
                best = result
                break
        if use_cache and cache_key is not None and best is not None:
            self._cache[cache_key] = best
        return best
