"""Exact two-qubit synthesis.

Three target forms are supported:

* ``{Can, U3}`` — the ReQISC SU(4) ISA: one canonical gate plus four ``U3``
  corrections, obtained directly from the KAK decomposition.
* ``{CX, U3}`` — the conventional CNOT ISA: 0-3 CNOTs depending on the Weyl
  coordinates (Shende-Bullock-Markov optimal counts), used by the baseline
  compilers for block re-synthesis.
* fixed-basis ISAs (``SQiSW``, ``B``, ...) — k applications of a fixed 2Q
  basis gate with numerically instantiated 1Q interleavers; used for the
  variational-workload calibration trade-off of Section 5.3.1.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from repro.circuits.circuit import QuantumCircuit
from repro.gates import standard
from repro.linalg.predicates import allclose_up_to_global_phase, unitary_infidelity
from repro.linalg.su2 import u3_params_from_matrix
from repro.linalg.weyl import (
    canonical_gate,
    kak_decompose,
    makhlin_invariants,
    weyl_coordinates,
)

__all__ = [
    "two_qubit_to_can_circuit",
    "two_qubit_to_can_circuits_batch",
    "two_qubit_to_cnot_circuit",
    "canonical_to_cnot_circuit",
    "two_qubit_to_fixed_basis_circuit",
    "cnot_count_for_coordinates",
]

PI_4 = math.pi / 4.0
_ATOL = 1e-8


def _append_u3(circuit: QuantumCircuit, matrix: np.ndarray, qubit: int) -> None:
    """Append a 2x2 unitary as a ``U3`` gate, dropping identity-like factors."""
    if allclose_up_to_global_phase(matrix, np.eye(2), atol=1e-10):
        return
    _, theta, phi, lam = u3_params_from_matrix(matrix)
    circuit.u3(theta, phi, lam, qubit)


def _can_circuit_from_decomposition(
    decomposition, qubits: Sequence[int], num_qubits: int
) -> QuantumCircuit:
    """``U3 - Can - U3`` circuit realizing a :class:`KAKDecomposition`."""
    q0, q1 = qubits
    circuit = QuantumCircuit(num_qubits, "can_synthesis")
    _append_u3(circuit, decomposition.r1, q0)
    _append_u3(circuit, decomposition.r2, q1)
    coords = decomposition.coordinates
    if any(abs(c) > 1e-9 for c in coords):
        circuit.can(*coords, q0, q1)
    _append_u3(circuit, decomposition.l1, q0)
    _append_u3(circuit, decomposition.l2, q1)
    return circuit


def two_qubit_to_can_circuit(
    unitary: np.ndarray, qubits: Sequence[int] = (0, 1), num_qubits: int = 2
) -> QuantumCircuit:
    """Synthesize a 4x4 unitary into ``U3 - Can - U3`` form (the ReQISC ISA).

    Identity-class targets produce no two-qubit gate at all.
    """
    decomposition = kak_decompose(np.asarray(unitary, dtype=complex))
    return _can_circuit_from_decomposition(decomposition, qubits, num_qubits)


def two_qubit_to_can_circuits_batch(
    unitaries: Sequence[np.ndarray],
    qubits: Sequence[int] = (0, 1),
    num_qubits: int = 2,
) -> list:
    """Batched :func:`two_qubit_to_can_circuit` over N unitaries.

    The KAK decompositions run as one vectorized batch
    (:func:`repro.linalg.weyl.kak_decompose_batch`, exact-bytes
    deduplicated); the circuit assembly is per item.  Used by the finalize
    pass and block consolidation, which collect all blocks awaiting
    synthesis and decompose them in one call.
    """
    from repro.linalg.weyl import kak_decompose_batch

    decompositions = kak_decompose_batch(
        [np.asarray(u, dtype=complex) for u in unitaries]
    )
    return [
        _can_circuit_from_decomposition(decomposition, qubits, num_qubits)
        for decomposition in decompositions
    ]


def cnot_count_for_coordinates(coords: Sequence[float], atol: float = 1e-8) -> int:
    """Minimal CNOT count for a gate class (Shende-Bullock-Markov)."""
    x, y, z = coords
    if abs(x) < atol and abs(y) < atol and abs(z) < atol:
        return 0
    if abs(x - PI_4) < atol and abs(y) < atol and abs(z) < atol:
        return 1
    if abs(z) < atol:
        return 2
    return 3


def _cx_core_two(x: float, y: float) -> QuantumCircuit:
    """Two-CNOT core realizing the class ``(x, y, 0)``.

    ``CX (RX(2x) (x) RZ(2y)) CX = exp(-i (x XX + y ZZ))`` which is locally
    equivalent to ``Can(x, y, 0)``.
    """
    circuit = QuantumCircuit(2, "cx_core2")
    circuit.cx(0, 1)
    circuit.rx(2.0 * x, 0)
    circuit.rz(2.0 * y, 1)
    circuit.cx(0, 1)
    return circuit


def _three_cnot_skeleton(params: Sequence[float]) -> QuantumCircuit:
    """Three-CNOT skeleton with fully parametrized middle 1Q layers.

    Three CNOTs interleaved with arbitrary single-qubit gates realize every
    two-qubit gate class; the outer local layers are supplied later by the
    dressing step, so only the two middle layers (4 U3 gates, 12 parameters)
    are free here.
    """
    p = list(params)
    circuit = QuantumCircuit(2, "cx_core3")
    circuit.cx(0, 1)
    circuit.u3(p[0], p[1], p[2], 0)
    circuit.u3(p[3], p[4], p[5], 1)
    circuit.cx(1, 0)
    circuit.u3(p[6], p[7], p[8], 0)
    circuit.u3(p[9], p[10], p[11], 1)
    circuit.cx(0, 1)
    return circuit


@lru_cache(maxsize=4096)
def _cx_core_three_params(x: float, y: float, z: float) -> Tuple[float, ...]:
    """Middle-layer parameters of the three-CNOT core for class ``(x, y, z)``.

    Found by a small multi-start numerical solve matching the Makhlin
    invariants of the skeleton to the target class; results are cached per
    coordinate triple.
    """
    target = canonical_gate(x, y, z)
    target_g1, target_g2 = makhlin_invariants(target)

    def residual(params: np.ndarray) -> np.ndarray:
        g1, g2 = makhlin_invariants(_three_cnot_skeleton(params).to_unitary())
        return np.array([(g1 - target_g1).real, (g1 - target_g1).imag, g2 - target_g2])

    rng = np.random.default_rng(17)
    seeds = [
        np.array([2 * x, 0, 0, 2 * y, 0, 0, 2 * z, 0, 0, 0.3, 0, 0]),
        np.zeros(12) + 0.4,
    ]
    seeds.extend(rng.uniform(-math.pi, math.pi, size=(8, 12)))
    best: Optional[np.ndarray] = None
    best_norm = math.inf
    for seed in seeds:
        result = least_squares(
            residual, x0=seed, xtol=1e-15, ftol=1e-15, gtol=1e-15, max_nfev=300
        )
        norm = float(np.linalg.norm(residual(result.x)))
        if norm < best_norm:
            best, best_norm = result.x, norm
        if best_norm < 1e-11:
            break
    if best is None or best_norm > 1e-7:
        raise RuntimeError(
            f"three-CNOT core solve failed for coordinates ({x}, {y}, {z}); residual {best_norm:.2e}"
        )
    return tuple(float(v) for v in best)


def _cx_core_three(x: float, y: float, z: float) -> QuantumCircuit:
    """Three-CNOT core circuit realizing the class ``(x, y, z)``."""
    params = _cx_core_three_params(round(x, 12), round(y, 12), round(z, 12))
    return _three_cnot_skeleton(params)


def canonical_to_cnot_circuit(x: float, y: float, z: float) -> QuantumCircuit:
    """CNOT-ISA circuit (on 2 qubits) locally equivalent to ``Can(x, y, z)``."""
    count = cnot_count_for_coordinates((x, y, z))
    if count == 0:
        return QuantumCircuit(2, "cx_core0")
    if count == 1:
        circuit = QuantumCircuit(2, "cx_core1")
        circuit.cx(0, 1)
        return circuit
    if count == 2:
        return _cx_core_two(x, y)
    if abs(x - PI_4) < _ATOL and abs(y - PI_4) < _ATOL and abs(abs(z) - PI_4) < _ATOL:
        # SWAP class: the numerical core solve is ill-conditioned exactly at
        # this chamber corner, but the exact three-CNOT SWAP circuit is known.
        circuit = QuantumCircuit(2, "cx_core3")
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        circuit.cx(0, 1)
        return circuit
    return _cx_core_three(x, y, z)


def _dress_core_to_target(
    target: np.ndarray, core: QuantumCircuit, qubits: Sequence[int], num_qubits: int
) -> QuantumCircuit:
    """Add the 1Q corrections turning ``core`` (same gate class) into ``target``."""
    from repro.linalg.weyl import boundary_mirror_decomposition

    q0, q1 = qubits
    target_kak = kak_decompose(np.asarray(target, dtype=complex))
    core_unitary = core.to_unitary() if len(core) else np.eye(4, dtype=complex)
    core_kak = kak_decompose(core_unitary)
    mismatch = np.max(np.abs(np.array(core_kak.coordinates) - np.array(target_kak.coordinates)))
    if mismatch > 1e-5:
        mirrored = boundary_mirror_decomposition(core_kak)
        mirrored_mismatch = np.max(
            np.abs(np.array(mirrored.coordinates) - np.array(target_kak.coordinates))
        )
        if mirrored_mismatch < mismatch:
            core_kak = mirrored
    circuit = QuantumCircuit(num_qubits, "cnot_synthesis")
    # target = (L_t) Can (R_t); core = (L_c) Can (R_c)
    #  => target ~ (L_t L_c^dag) core (R_c^dag R_t).
    _append_u3(circuit, core_kak.r1.conj().T @ target_kak.r1, q0)
    _append_u3(circuit, core_kak.r2.conj().T @ target_kak.r2, q1)
    circuit.compose(core, qubits=[q0, q1])
    _append_u3(circuit, target_kak.l1 @ core_kak.l1.conj().T, q0)
    _append_u3(circuit, target_kak.l2 @ core_kak.l2.conj().T, q1)
    return circuit


def two_qubit_to_cnot_circuit(
    unitary: np.ndarray, qubits: Sequence[int] = (0, 1), num_qubits: int = 2
) -> QuantumCircuit:
    """Synthesize a 4x4 unitary into the CNOT ISA with the minimal CNOT count."""
    unitary = np.asarray(unitary, dtype=complex)
    coords = weyl_coordinates(unitary)
    core = canonical_to_cnot_circuit(*coords)
    return _dress_core_to_target(unitary, core, qubits, num_qubits)


def two_qubit_to_fixed_basis_circuit(
    unitary: np.ndarray,
    basis_gate_name: str = "sqisw",
    qubits: Sequence[int] = (0, 1),
    num_qubits: int = 2,
    max_applications: int = 3,
    tolerance: float = 1e-8,
) -> QuantumCircuit:
    """Synthesize a 4x4 unitary with repeated applications of a fixed 2Q basis.

    Tries 0, 1, ..., ``max_applications`` applications (interleaved with
    numerically instantiated ``U3`` gates) and returns the first circuit that
    reaches ``tolerance`` infidelity.  Used for the calibration-friendly
    decomposition of variational SU(4) gates (Section 5.3.1).
    """
    from repro.synthesis.approximate import AnsatzBlock, ApproximateSynthesizer

    unitary = np.asarray(unitary, dtype=complex)
    coords = weyl_coordinates(unitary)
    if all(abs(c) < 1e-9 for c in coords):
        # Locally trivial target: the KAK local factors compose directly.
        decomposition = kak_decompose(unitary)
        circuit = QuantumCircuit(num_qubits, f"{basis_gate_name}_synthesis")
        _append_u3(circuit, decomposition.l1 @ decomposition.r1, qubits[0])
        _append_u3(circuit, decomposition.l2 @ decomposition.r2, qubits[1])
        return circuit

    synthesizer = ApproximateSynthesizer(tolerance=tolerance, restarts=4, seed=11)
    for count in range(1, max_applications + 1):
        blocks = [AnsatzBlock(pair=(0, 1), gate_name=basis_gate_name) for _ in range(count)]
        result = synthesizer.instantiate(unitary, num_qubits=2, blocks=blocks)
        if result is not None and result.infidelity <= tolerance:
            circuit = QuantumCircuit(num_qubits, f"{basis_gate_name}_synthesis")
            circuit.compose(result.circuit, qubits=list(qubits))
            return circuit
    raise RuntimeError(
        f"could not synthesize target with <= {max_applications} {basis_gate_name} gates"
    )
