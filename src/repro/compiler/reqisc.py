"""Deprecated shim for the end-to-end ReQISC compiler (Regulus).

The pipeline (Section 5.4.1) now lives in the declarative API:
:func:`repro.target.pipeline.reqisc_pipeline` builds the named
:class:`~repro.target.pipeline.PipelineSpec` (``reqisc-full`` /
``reqisc-eff``) and :func:`repro.target.api.compile` runs it against a
:class:`~repro.target.target.Target`.  :class:`ReQISCCompiler` is kept as a
thin deprecated wrapper so existing code keeps working bit-identically::

    # deprecated                                # preferred
    ReQISCCompiler(mode="eff",                  compile(circuit,
                   coupling_map=cmap                    target=Target.from_device(
                   ).compile(circuit)                       coupling_map=cmap),
                                                        spec="reqisc-eff")

:class:`CompilationResult` moved to :mod:`repro.compiler.result` and is
re-exported here for backward compatibility.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.result import CompilationResult
from repro.compiler.routing.coupling_map import CouplingMap
from repro.microarch.hamiltonian import CouplingHamiltonian
from repro.service.cache import SynthesisCache
from repro.synthesis.approximate import ApproximateSynthesizer
from repro.synthesis.templates import TemplateLibrary

__all__ = ["CompilationResult", "ReQISCCompiler"]


class ReQISCCompiler:
    """Deprecated: use ``repro.target.compile(circuit, target=..., spec=...)``.

    The constructor keeps the historical kwargs and delegates to the shared
    entry point; compiled circuits are bit-identical to the declarative path.
    One deliberate metric fix: ``duration()``/``summary()`` now cost against
    the compiler's own ``coupling`` — the pre-1.2 implementation stored the
    kwarg but silently priced every result with the default XY model.
    """

    def __init__(
        self,
        mode: str = "full",
        coupling: Optional[CouplingHamiltonian] = None,
        coupling_map: Optional[CouplingMap] = None,
        mirror_threshold: float = 0.15,
        block_size: int = 3,
        synthesis_threshold: int = 4,
        synthesis_tolerance: float = 1e-6,
        enable_dag_compacting: bool = True,
        use_mirroring_sabre: bool = True,
        template_library: Optional[TemplateLibrary] = None,
        synthesizer: Optional[ApproximateSynthesizer] = None,
        max_synthesis_blocks: Optional[int] = None,
        seed: int = 0,
        synthesis_cache: Optional[SynthesisCache] = None,
    ) -> None:
        warnings.warn(
            "ReQISCCompiler is deprecated; use repro.target.compile(circuit, "
            "target=Target(...), spec='reqisc-full'/'reqisc-eff') instead "
            "(see docs/targets.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        if mode not in ("full", "eff"):
            raise ValueError("mode must be 'full' or 'eff'")
        self.mode = mode
        self.coupling = coupling or CouplingHamiltonian.xy(1.0)
        self.coupling_map = coupling_map
        self.mirror_threshold = mirror_threshold
        self.block_size = block_size
        self.synthesis_threshold = synthesis_threshold
        self.synthesis_tolerance = synthesis_tolerance
        self.enable_dag_compacting = enable_dag_compacting
        self.use_mirroring_sabre = use_mirroring_sabre
        self.template_library = template_library
        self.synthesizer = synthesizer
        self.max_synthesis_blocks = max_synthesis_blocks
        self.seed = seed
        self.synthesis_cache = synthesis_cache

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Reporting name (``reqisc-full`` / ``reqisc-eff``)."""
        return f"reqisc-{self.mode}"

    def compile(self, circuit: QuantumCircuit) -> CompilationResult:
        """Compile ``circuit`` into the SU(4) ``{Can, U3}`` ISA."""
        from repro.target.api import compile as compile_circuit
        from repro.target.pipeline import reqisc_pipeline
        from repro.target.target import Target

        spec = reqisc_pipeline(
            mode=self.mode,
            mirror_threshold=self.mirror_threshold,
            block_size=self.block_size,
            synthesis_threshold=self.synthesis_threshold,
            synthesis_tolerance=self.synthesis_tolerance,
            enable_dag_compacting=self.enable_dag_compacting,
            use_mirroring_sabre=self.use_mirroring_sabre,
            template_library=self.template_library,
            synthesizer=self.synthesizer,
            max_synthesis_blocks=self.max_synthesis_blocks,
            name=self.name,
        )
        target = Target.from_device(self.coupling, self.coupling_map)
        return compile_circuit(
            circuit,
            target=target,
            spec=spec,
            seed=self.seed,
            synthesis_cache=self.synthesis_cache,
        )
