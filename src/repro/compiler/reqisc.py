"""The end-to-end ReQISC compiler (Regulus).

Pipeline (Section 5.4.1): program-aware template-based synthesis, then
(ReQISC-Full only) program-agnostic hierarchical synthesis, compile-time gate
mirroring for near-identity gates, optional SU(4)-aware routing
(mirroring-SABRE) and finalization into the ``{Can, U3}`` ISA.

Two practical configurations are provided, mirroring the paper:

* ``ReQISC-Eff`` — skips hierarchical synthesis, keeping the set of distinct
  SU(4) gates (and therefore the calibration overhead) minimal.
* ``ReQISC-Full`` — adds hierarchical synthesis (with DAG compacting and
  conditional approximate synthesis) for the most aggressive 2Q reduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.metrics import (
    circuit_duration,
    cnot_isa_duration_model,
    count_distinct_two_qubit_gates,
    count_two_qubit_gates,
    two_qubit_depth,
)
from repro.compiler.passes.base import PassManager, PassRecord
from repro.compiler.passes.finalize import FinalizeToCanPass
from repro.compiler.passes.fuse import Fuse2QBlocksPass
from repro.compiler.passes.hierarchical import HierarchicalSynthesisPass
from repro.compiler.passes.mirror import MirrorNearIdentityPass
from repro.compiler.passes.template_synthesis import TemplateSynthesisPass
from repro.compiler.routing.coupling_map import CouplingMap
from repro.compiler.routing.sabre import SabreRouter
from repro.linalg.weyl import install_kak_cache
from repro.microarch.durations import su4_duration_model
from repro.microarch.hamiltonian import CouplingHamiltonian
from repro.service.cache import SynthesisCache
from repro.synthesis.approximate import ApproximateSynthesizer
from repro.synthesis.templates import TemplateLibrary

__all__ = ["CompilationResult", "ReQISCCompiler"]


@dataclass
class CompilationResult:
    """Compiled circuit plus the metadata needed by the evaluation harness."""

    circuit: QuantumCircuit
    compiler_name: str
    compile_seconds: float
    properties: Dict[str, Any] = field(default_factory=dict)
    pass_records: List[PassRecord] = field(default_factory=list)

    # -- metrics -----------------------------------------------------------
    @property
    def num_two_qubit_gates(self) -> int:
        """#2Q of the compiled circuit."""
        return count_two_qubit_gates(self.circuit)

    @property
    def two_qubit_depth(self) -> int:
        """Depth2Q of the compiled circuit."""
        return two_qubit_depth(self.circuit)

    @property
    def distinct_two_qubit_gates(self) -> int:
        """Number of distinct 2Q gates (calibration overhead proxy)."""
        return count_distinct_two_qubit_gates(self.circuit)

    def duration(self, coupling: Optional[CouplingHamiltonian] = None) -> float:
        """Pulse duration of the compiled circuit.

        SU(4)-ISA results are costed with the genAshN duration model;
        CNOT-ISA results (compilers that stamp ``properties["isa"] = "cnot"``)
        with the conventional CNOT pulse, matching the paper's Table 2
        convention.
        """
        if self.properties.get("isa") == "cnot":
            return circuit_duration(self.circuit, cnot_isa_duration_model())
        coupling = coupling or CouplingHamiltonian.xy(1.0)
        return circuit_duration(self.circuit, su4_duration_model(coupling))

    @property
    def final_permutation(self) -> List[int]:
        """Qubit permutation accumulated by mirroring and routing."""
        permutation = self.properties.get("mirror_permutation")
        if permutation is None:
            permutation = list(range(self.circuit.num_qubits))
        return permutation

    @property
    def routing_overhead(self) -> Optional[int]:
        """Inserted (non-absorbed) SWAPs, when routing ran."""
        return self.properties.get("inserted_swaps")

    def summary(self) -> Dict[str, Any]:
        """Flat dictionary used by the experiment harness and the CLI.

        Carries the paper's headline metrics: #2Q, Depth2Q, the distinct-gate
        calibration proxy, the genAshN pulse duration and (when routing ran)
        the inserted-SWAP overhead.
        """
        return {
            "compiler": self.compiler_name,
            "num_2q": self.num_two_qubit_gates,
            "depth_2q": self.two_qubit_depth,
            "distinct_2q": self.distinct_two_qubit_gates,
            "duration": self.duration(),
            "routing_overhead": self.routing_overhead,
            "compile_seconds": self.compile_seconds,
        }


class ReQISCCompiler:
    """End-to-end SU(4)-native compiler.

    Parameters
    ----------
    mode:
        ``"full"`` (default) or ``"eff"`` — whether the hierarchical synthesis
        pass runs.
    coupling:
        Device coupling Hamiltonian (used only for duration reporting; the
        logical-level output is hardware-agnostic).
    coupling_map:
        When given, the SU(4)-aware mirroring-SABRE routing pass maps the
        circuit onto this topology.
    synthesis_cache:
        Optional :class:`~repro.service.cache.SynthesisCache` shared by the
        template pass, the hierarchical pass and the KAK-backed finalization,
        so repeated blocks (within a circuit, across a suite, or across
        processes via the disk tier) are synthesized once.
    """

    def __init__(
        self,
        mode: str = "full",
        coupling: Optional[CouplingHamiltonian] = None,
        coupling_map: Optional[CouplingMap] = None,
        mirror_threshold: float = 0.15,
        block_size: int = 3,
        synthesis_threshold: int = 4,
        synthesis_tolerance: float = 1e-6,
        enable_dag_compacting: bool = True,
        use_mirroring_sabre: bool = True,
        template_library: Optional[TemplateLibrary] = None,
        synthesizer: Optional[ApproximateSynthesizer] = None,
        max_synthesis_blocks: Optional[int] = None,
        seed: int = 0,
        synthesis_cache: Optional[SynthesisCache] = None,
    ) -> None:
        if mode not in ("full", "eff"):
            raise ValueError("mode must be 'full' or 'eff'")
        self.mode = mode
        self.coupling = coupling or CouplingHamiltonian.xy(1.0)
        self.coupling_map = coupling_map
        self.mirror_threshold = mirror_threshold
        self.block_size = block_size
        self.synthesis_threshold = synthesis_threshold
        self.synthesis_tolerance = synthesis_tolerance
        self.enable_dag_compacting = enable_dag_compacting
        self.use_mirroring_sabre = use_mirroring_sabre
        self.template_library = template_library
        self.synthesizer = synthesizer
        self.max_synthesis_blocks = max_synthesis_blocks
        self.seed = seed
        self.synthesis_cache = synthesis_cache

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Reporting name (``reqisc-full`` / ``reqisc-eff``)."""
        return f"reqisc-{self.mode}"

    def _build_pass_manager(self) -> PassManager:
        manager = PassManager()
        manager.append(
            TemplateSynthesisPass(library=self.template_library, cache=self.synthesis_cache)
        )
        if self.mode == "full":
            manager.append(
                HierarchicalSynthesisPass(
                    block_size=self.block_size,
                    threshold=self.synthesis_threshold,
                    tolerance=self.synthesis_tolerance,
                    enable_dag_compacting=self.enable_dag_compacting,
                    synthesizer=self.synthesizer,
                    max_synthesis_blocks=self.max_synthesis_blocks,
                    cache=self.synthesis_cache,
                )
            )
        else:
            manager.append(Fuse2QBlocksPass(form="unitary"))
        manager.append(MirrorNearIdentityPass(threshold=self.mirror_threshold))
        return manager

    def compile(self, circuit: QuantumCircuit) -> CompilationResult:
        """Compile ``circuit`` into the SU(4) ``{Can, U3}`` ISA.

        When a ``synthesis_cache`` is configured it is also installed as the
        process-global KAK cache for the duration of the call, so the
        finalization pass reuses canonical decompositions of repeated blocks.
        """
        start = time.perf_counter()
        previous_kak_cache = None
        if self.synthesis_cache is not None:
            previous_kak_cache = install_kak_cache(self.synthesis_cache)
        try:
            properties: Dict[str, Any] = {"isa": "su4"}
            manager = self._build_pass_manager()
            logical = manager.run(circuit, properties)
            records = list(manager.records)

            if self.coupling_map is not None:
                router = SabreRouter(
                    self.coupling_map,
                    mirroring=self.use_mirroring_sabre,
                    seed=self.seed,
                )
                routing = router.run(logical)
                logical = routing.circuit
                properties["initial_layout"] = routing.initial_layout
                properties["final_layout"] = routing.final_layout
                properties["inserted_swaps"] = routing.inserted_swaps
                properties["absorbed_swaps"] = routing.absorbed_swaps

            finalize = PassManager([FinalizeToCanPass()])
            compiled = finalize.run(logical, properties)
            records.extend(finalize.records)
        finally:
            if self.synthesis_cache is not None:
                install_kak_cache(previous_kak_cache)

        elapsed = time.perf_counter() - start
        return CompilationResult(
            circuit=compiled,
            compiler_name=self.name,
            compile_seconds=elapsed,
            properties=properties,
            pass_records=records,
        )
