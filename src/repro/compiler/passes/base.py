"""Pass infrastructure: every transformation is a :class:`CompilerPass` and
pipelines are :class:`PassManager` instances (mirroring the staged design of
Figure 2: program-aware, program-agnostic, hardware-aware).

Representation contract
-----------------------
Every pass declares which program representation it ``consumes`` and
``produces``: ``"circuit"`` (a flat :class:`QuantumCircuit`) or ``"ir"`` (the
shared mutable :class:`repro.ir.CircuitIR`).  The :class:`PassManager`
converts between the two **at most once per representation change** — a run
of consecutive IR passes threads one ``CircuitIR`` object through all of
them, so a full ReQISC pipeline performs exactly two circuit<->IR
conversions (in and out) instead of re-marshalling a flat gate list at every
pass boundary.

The historical circuit-in/circuit-out signature keeps working in both
directions: a legacy pass that only implements :meth:`CompilerPass.run` is a
``consumes = "circuit"`` pass, and an IR-native pass can still be called
through :meth:`run` — the base class adapts by wrapping the circuit into a
throwaway ``CircuitIR`` (this is also what
``PassManager(force_circuit_boundaries=True)`` uses to reproduce the
pre-refactor per-pass marshalling for benchmarking).
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, MutableMapping, Optional, Tuple, Union

from repro.circuits.circuit import QuantumCircuit
from repro.ir import CircuitIR

__all__ = ["CompilerPass", "PassManager", "PassRecord"]

#: A program travelling through the pipeline, in either representation.
Program = Union[QuantumCircuit, CircuitIR]


class CompilerPass:
    """Base class for circuit transformations.

    Subclasses implement :meth:`run` (flat-circuit passes) or :meth:`run_ir`
    (IR-native passes, with ``consumes``/``produces`` set to ``"ir"``) and
    may read/write the shared ``properties`` mapping (e.g. the qubit
    permutation produced by gate mirroring, or the layout produced by
    routing).
    """

    #: Human-readable pass name (defaults to the class name).
    name: str = ""
    #: Representation the pass reads: ``"circuit"`` or ``"ir"``.
    consumes: str = "circuit"
    #: Representation the pass returns: ``"circuit"`` or ``"ir"``.
    produces: str = "circuit"
    #: Memo-safety declaration (see docs/incremental.md): ``True`` promises
    #: that the pass output is a deterministic pure function of the input
    #: program content plus :meth:`memo_config` — the pass must not read the
    #: property set (it may write it) and every configuration knob that can
    #: change the output must be folded into the config fingerprint.
    memo_safe: bool = False

    def memo_config(self) -> Optional[str]:
        """Config fingerprint for whole-pass memoization.

        Memo-safe passes return a string capturing every output-relevant
        setting; returning ``None`` disables memoization for this instance
        (e.g. when a setting holds an object that cannot be fingerprinted).
        """
        return "" if self.memo_safe else None

    def run(self, circuit: QuantumCircuit, properties: Dict[str, Any]) -> QuantumCircuit:
        """Transform ``circuit`` and return the new circuit.

        For IR-native passes this is the compatibility adapter: the circuit
        is wrapped into a fresh :class:`~repro.ir.CircuitIR`, transformed via
        :meth:`run_ir` and flattened back.
        """
        if self.consumes == "ir":
            transformed = self.run_ir(CircuitIR.from_circuit(circuit), properties)
            return transformed.to_circuit()
        raise NotImplementedError

    def run_ir(self, ir: CircuitIR, properties: Dict[str, Any]) -> CircuitIR:
        """Transform the shared IR in place and return it (IR-native passes)."""
        raise NotImplementedError(
            f"{type(self).__name__} is a circuit-level pass; call run() "
            "or let the PassManager convert the representation"
        )

    def __repr__(self) -> str:
        return self.name or type(self).__name__


@dataclass
class PassRecord:
    """Bookkeeping entry for one executed pass."""

    name: str
    seconds: float
    gates_before: int
    gates_after: int
    two_qubit_before: int
    two_qubit_after: int
    depth_before: int = 0
    depth_after: int = 0
    #: Property-set keys this pass wrote (added or changed), sorted — a
    #: deterministic snapshot, identical between sequential and batch runs.
    properties_written: List[str] = field(default_factory=list)
    #: True when the pass was spliced from the memo store instead of running.
    cached: bool = False


def _coerce(program: Program, wants: str) -> Program:
    """Convert ``program`` to the ``wants`` representation (no-op when equal)."""
    if wants == "ir":
        if isinstance(program, CircuitIR):
            return program
        return CircuitIR.from_circuit(program)
    if isinstance(program, CircuitIR):
        return program.to_circuit()
    return program


def _measure(program: Program) -> Tuple[int, int, int]:
    """(gates, two-qubit gates, depth) of either representation."""
    if isinstance(program, CircuitIR):
        return len(program), program.two_qubit_count(), program.depth()
    return len(program), program.count_two_qubit_gates(), program.depth()


def _written_keys(before: Mapping[str, Any], after: Mapping[str, Any]) -> List[str]:
    """Sorted keys added, changed or deleted between two property snapshots."""
    written = []
    for key, value in after.items():
        if key not in before:
            written.append(key)
            continue
        previous = before[key]
        if previous is value:
            continue
        try:
            unchanged = bool(previous == value)
        except Exception:
            unchanged = False
        if not unchanged:
            written.append(key)
    written.extend(key for key in before if key not in after)
    return sorted(set(written))


@dataclass
class PassManager:
    """Run a sequence of passes, recording per-pass statistics.

    ``force_circuit_boundaries`` reproduces the pre-IR behaviour — every pass
    is driven through its circuit-level entry point, re-marshalling a flat
    gate list at each boundary.  It exists for the ``repro perf`` ``ir``
    benchmark family (conversion-count and wall-time comparison) and should
    stay off otherwise.
    """

    passes: List[CompilerPass] = field(default_factory=list)
    records: List[PassRecord] = field(default_factory=list)
    force_circuit_boundaries: bool = False
    #: Optional :class:`repro.incremental.PassMemoStore`.  When set, every
    #: memo-safe pass is keyed by the fingerprint of its full input program
    #: (plus its config and ``memo_context``) and replayed from the store on
    #: a hit — splicing the recorded output instructions and property writes
    #: instead of running the pass.
    memo: Optional[Any] = None
    #: Compilation-context tag folded into every memo key (target, ISA,
    #: seed); set by :func:`repro.target.api.compile`.
    memo_context: str = ""

    def append(self, compiler_pass: CompilerPass) -> "PassManager":
        """Add a pass to the end of the pipeline."""
        self.passes.append(compiler_pass)
        return self

    def run(
        self,
        circuit: Program,
        properties: Optional[MutableMapping[str, Any]] = None,
    ) -> QuantumCircuit:
        """Execute the pipeline on ``circuit`` (a circuit or a ``CircuitIR``).

        ``properties`` is shared by every pass; pass it in to retrieve
        pass-produced metadata (final layout, qubit permutation, ...).  Any
        mutable mapping works; omitting it creates a fresh
        :class:`~repro.target.properties.PropertySet`.

        ``self.records`` is a *view of the last run*: each call builds a
        fresh records list (see :meth:`run_with_records`), so a manager
        reused across compilations or threads never mixes histories.
        """
        compiled, _ = self.run_with_records(circuit, properties)
        return compiled

    def run_with_records(
        self,
        circuit: Program,
        properties: Optional[MutableMapping[str, Any]] = None,
    ) -> Tuple[QuantumCircuit, List[PassRecord]]:
        """Like :meth:`run`, but also return this run's own records list.

        The returned list is freshly allocated per call — callers that keep
        it are immune to the manager being rerun concurrently or later.
        """
        if properties is None:
            from repro.target.properties import PropertySet

            properties = PropertySet()
        records: List[PassRecord] = []
        current: Program = circuit
        for compiler_pass in self.passes:
            if self.force_circuit_boundaries:
                wants = "circuit"
            else:
                wants = getattr(compiler_pass, "consumes", "circuit")
            current = _coerce(current, wants)
            gates_before, two_qubit_before, depth_before = _measure(current)
            snapshot = dict(properties.items())
            start = time.perf_counter()
            current, cached = self._run_pass(compiler_pass, current, wants, properties)
            seconds = time.perf_counter() - start
            gates_after, two_qubit_after, depth_after = _measure(current)
            records.append(
                PassRecord(
                    name=repr(compiler_pass),
                    seconds=seconds,
                    gates_before=gates_before,
                    gates_after=gates_after,
                    two_qubit_before=two_qubit_before,
                    two_qubit_after=two_qubit_after,
                    depth_before=depth_before,
                    depth_after=depth_after,
                    properties_written=_written_keys(snapshot, properties),
                    cached=cached,
                )
            )
        compiled = _coerce(current, "circuit")
        self.records = records
        return compiled, records

    # ------------------------------------------------------------------
    # Whole-pass memoization.
    # ------------------------------------------------------------------
    def _memo_key(self, compiler_pass: CompilerPass, program: Program) -> Optional[str]:
        """Memo key for running ``compiler_pass`` on ``program``, or ``None``.

        ``None`` means "do not memoize": the manager is in the
        force-circuit-boundaries benchmarking mode, the pass has not declared
        itself memo-safe, its configuration cannot be fingerprinted, or it
        changes representation (splicing would skip a conversion the
        from-scratch pipeline performs, breaking conversion-count parity).
        """
        if self.memo is None or self.force_circuit_boundaries:
            return None
        if not getattr(compiler_pass, "memo_safe", False):
            return None
        wants = getattr(compiler_pass, "consumes", "circuit")
        if getattr(compiler_pass, "produces", "circuit") != wants:
            return None
        config = compiler_pass.memo_config()
        if config is None:
            return None
        from repro.incremental import program_fingerprint

        return program_fingerprint(
            program,
            "pass",
            type(compiler_pass).__name__,
            config,
            self.memo_context,
        )

    def _run_pass(
        self,
        compiler_pass: CompilerPass,
        current: Program,
        wants: str,
        properties: MutableMapping[str, Any],
    ) -> Tuple[Program, bool]:
        """Run one pass, consulting the memo store first when eligible.

        Returns the transformed program and whether it was spliced from the
        store.  A hit replays the recorded output instructions and property
        writes verbatim, which is bit-identical to rerunning the pass because
        the key covers the full input content, the pass config and the
        compilation context, and memo-safe passes are pure in exactly those.
        """
        key = self._memo_key(compiler_pass, current)
        if key is not None:
            from repro.incremental import MISS

            payload = self.memo.lookup("pass", key)
            if payload is not MISS:
                if isinstance(current, CircuitIR):
                    current.num_qubits = payload["num_qubits"]
                    current.rewrite(payload["instructions"])
                else:
                    spliced = QuantumCircuit(payload["num_qubits"], current.name)
                    spliced.instructions.extend(payload["instructions"])
                    current = spliced
                for prop_key, value in payload["properties"]["set"].items():
                    properties[prop_key] = copy.deepcopy(value)
                for prop_key in payload["properties"]["deleted"]:
                    properties.pop(prop_key, None)
                return current, True
        snapshot = dict(properties.items())
        if wants == "ir":
            current = compiler_pass.run_ir(current, properties)
        else:
            current = compiler_pass.run(current, properties)
        if key is not None and isinstance(current, (QuantumCircuit, CircuitIR)):
            written = {}
            for prop_key, value in properties.items():
                if prop_key not in snapshot or snapshot[prop_key] is not value:
                    written[prop_key] = copy.deepcopy(value)
            deleted = [prop_key for prop_key in snapshot if prop_key not in properties]
            self.memo.store(
                "pass",
                key,
                {
                    "instructions": list(current.instructions)
                    if isinstance(current, QuantumCircuit)
                    else list(current.instructions()),
                    "num_qubits": current.num_qubits,
                    "properties": {"set": written, "deleted": deleted},
                },
            )
        return current, False
