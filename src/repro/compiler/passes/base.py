"""Pass infrastructure: every transformation is a :class:`CompilerPass` and
pipelines are :class:`PassManager` instances (mirroring the staged design of
Figure 2: program-aware, program-agnostic, hardware-aware)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, MutableMapping, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit

__all__ = ["CompilerPass", "PassManager", "PassRecord"]


class CompilerPass:
    """Base class for circuit transformations.

    Subclasses implement :meth:`run` and may read/write the shared
    ``properties`` dictionary (e.g. the qubit permutation produced by gate
    mirroring, or the layout produced by routing).
    """

    #: Human-readable pass name (defaults to the class name).
    name: str = ""

    def run(self, circuit: QuantumCircuit, properties: Dict[str, Any]) -> QuantumCircuit:
        """Transform ``circuit`` and return the new circuit."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name or type(self).__name__


@dataclass
class PassRecord:
    """Bookkeeping entry for one executed pass."""

    name: str
    seconds: float
    gates_before: int
    gates_after: int
    two_qubit_before: int
    two_qubit_after: int


@dataclass
class PassManager:
    """Run a sequence of passes, recording per-pass statistics."""

    passes: List[CompilerPass] = field(default_factory=list)
    records: List[PassRecord] = field(default_factory=list)

    def append(self, compiler_pass: CompilerPass) -> "PassManager":
        """Add a pass to the end of the pipeline."""
        self.passes.append(compiler_pass)
        return self

    def run(
        self,
        circuit: QuantumCircuit,
        properties: Optional[MutableMapping[str, Any]] = None,
    ) -> QuantumCircuit:
        """Execute the pipeline on ``circuit``.

        ``properties`` is shared by every pass; pass it in to retrieve
        pass-produced metadata (final layout, qubit permutation, ...).  Any
        mutable mapping works; omitting it creates a fresh
        :class:`~repro.target.properties.PropertySet`.

        ``self.records`` is a *view of the last run*: each call builds a
        fresh records list (see :meth:`run_with_records`), so a manager
        reused across compilations or threads never mixes histories.
        """
        compiled, _ = self.run_with_records(circuit, properties)
        return compiled

    def run_with_records(
        self,
        circuit: QuantumCircuit,
        properties: Optional[MutableMapping[str, Any]] = None,
    ) -> Tuple[QuantumCircuit, List[PassRecord]]:
        """Like :meth:`run`, but also return this run's own records list.

        The returned list is freshly allocated per call — callers that keep
        it are immune to the manager being rerun concurrently or later.
        """
        if properties is None:
            from repro.target.properties import PropertySet

            properties = PropertySet()
        records: List[PassRecord] = []
        current = circuit
        for compiler_pass in self.passes:
            start = time.perf_counter()
            gates_before = len(current)
            two_qubit_before = current.count_two_qubit_gates()
            current = compiler_pass.run(current, properties)
            records.append(
                PassRecord(
                    name=repr(compiler_pass),
                    seconds=time.perf_counter() - start,
                    gates_before=gates_before,
                    gates_after=len(current),
                    two_qubit_before=two_qubit_before,
                    two_qubit_after=current.count_two_qubit_gates(),
                )
            )
        self.records = records
        return current, records
