"""First-tier fusion: collect maximal two-qubit runs into SU(4) blocks."""

from __future__ import annotations

from typing import Any, Dict

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.passes.base import CompilerPass
from repro.synthesis.blocks import consolidate_blocks

__all__ = ["Fuse2QBlocksPass"]


class Fuse2QBlocksPass(CompilerPass):
    """Fuse maximal 2Q runs into single SU(4) operations.

    ``form`` selects the output representation: opaque ``su4`` blocks
    (``"unitary"``, default — kept opaque so later passes can keep fusing) or
    ``{Can, U3}`` (``"can"``).
    """

    name = "fuse_2q_blocks"

    def __init__(self, form: str = "unitary") -> None:
        if form not in ("unitary", "can"):
            raise ValueError("form must be 'unitary' or 'can'")
        self.form = form

    def run(self, circuit: QuantumCircuit, properties: Dict[str, Any]) -> QuantumCircuit:
        if circuit.max_gate_arity() > 2:
            raise ValueError(
                "Fuse2QBlocksPass expects a circuit with only 1Q/2Q gates; "
                "lower high-level gates first"
            )
        return consolidate_blocks(circuit, form=self.form)
