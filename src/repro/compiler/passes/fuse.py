"""First-tier fusion: collect maximal two-qubit runs into SU(4) blocks."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.compiler.passes.base import CompilerPass
from repro.ir import CircuitIR
from repro.synthesis.blocks import consolidate_blocks_ir

__all__ = ["Fuse2QBlocksPass"]


class Fuse2QBlocksPass(CompilerPass):
    """Fuse maximal 2Q runs into single SU(4) operations.

    ``form`` selects the output representation: opaque ``su4`` blocks
    (``"unitary"``, default — kept opaque so later passes can keep fusing) or
    ``{Can, U3}`` (``"can"``).

    IR-native: operates on the shared :class:`~repro.ir.CircuitIR` in place
    (each maximal run collapses onto its first node via ``replace_block``);
    the circuit-level :meth:`run` entry keeps working through the base-class
    adapter.
    """

    name = "fuse_2q_blocks"
    consumes = "ir"
    produces = "ir"
    memo_safe = True

    def __init__(self, form: str = "unitary", memo: Optional[Any] = None) -> None:
        if form not in ("unitary", "can"):
            raise ValueError("form must be 'unitary' or 'can'")
        self.form = form
        self.memo = memo

    def memo_config(self) -> Optional[str]:
        return f"form={self.form}"

    def run_ir(self, ir: CircuitIR, properties: Dict[str, Any]) -> CircuitIR:
        if ir.max_gate_arity() > 2:
            raise ValueError(
                "Fuse2QBlocksPass expects a circuit with only 1Q/2Q gates; "
                "lower high-level gates first"
            )
        consolidate_blocks_ir(ir, form=self.form, memo=self.memo)
        return ir
