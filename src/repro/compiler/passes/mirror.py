"""Compile-time gate mirroring for near-identity SU(4) gates (Section 4.3).

Gates whose Weyl coordinates lie close to the origin would require unbounded
drive amplitudes to execute in optimal time.  The pass composes each such
gate with a logical SWAP (moving it to the far side of the chamber) and
tracks the induced qubit relabelling, so no extra two-qubit gate is emitted.
The accumulated permutation is stored in the pass properties under
``"mirror_permutation"`` (mapping logical qubit -> output wire).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.circuits.instruction import Instruction
from repro.compiler.passes.base import CompilerPass
from repro.gates import standard
from repro.gates.gate import UnitaryGate
from repro.ir import CircuitIR
from repro.linalg.weyl import is_near_identity, weyl_coordinates

__all__ = ["MirrorNearIdentityPass"]

_SWAP = standard.swap_gate().matrix


class MirrorNearIdentityPass(CompilerPass):
    """Replace near-identity 2Q gates with their SWAP-composed mirrors.

    IR-native: each affected node is rewritten in place with
    ``substitute_node`` (mirrored gate, or the same gate on permuted wires);
    untouched gates keep their node.  The circuit-level :meth:`run` entry
    keeps working through the base-class adapter.
    """

    name = "mirror_near_identity"
    consumes = "ir"
    produces = "ir"

    def __init__(self, threshold: float = 0.15) -> None:
        self.threshold = threshold

    def run_ir(self, ir: CircuitIR, properties: Dict[str, Any]) -> CircuitIR:
        permutation: List[int] = list(range(ir.num_qubits))
        mirrored_count = 0
        for node in list(ir.nodes()):
            instruction = ir.instruction(node)
            wires = tuple(permutation[q] for q in instruction.qubits)
            gate = instruction.gate
            if gate.num_qubits == 2:
                coords = self._coordinates(gate)
                if coords is not None and is_near_identity(coords, self.threshold):
                    mirrored = UnitaryGate(_SWAP @ gate.matrix, label="su4")
                    ir.substitute_node(node, Instruction(mirrored, wires))
                    # The logical SWAP is resolved by exchanging the wires that
                    # the two logical qubits map to from here on.
                    a, b = instruction.qubits
                    permutation[a], permutation[b] = permutation[b], permutation[a]
                    mirrored_count += 1
                    continue
            if wires != instruction.qubits:
                ir.substitute_node(node, Instruction(gate, wires))
        properties["mirror_permutation"] = list(permutation)
        properties["mirrored_gate_count"] = mirrored_count
        return ir

    @staticmethod
    def _coordinates(gate) -> tuple:
        if gate.name == "can":
            return tuple(gate.params)
        try:
            return weyl_coordinates(gate.matrix)
        except Exception:  # pragma: no cover - defensive
            return None
