"""Compile-time gate mirroring for near-identity SU(4) gates (Section 4.3).

Gates whose Weyl coordinates lie close to the origin would require unbounded
drive amplitudes to execute in optimal time.  The pass composes each such
gate with a logical SWAP (moving it to the far side of the chamber) and
tracks the induced qubit relabelling, so no extra two-qubit gate is emitted.
The accumulated permutation is stored in the pass properties under
``"mirror_permutation"`` (mapping logical qubit -> output wire).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.circuits.instruction import Instruction
from repro.compiler.passes.base import CompilerPass
from repro.gates import standard
from repro.gates.gate import UnitaryGate
from repro.ir import CircuitIR
from repro.linalg.weyl import is_near_identity, weyl_coordinates

__all__ = ["MirrorNearIdentityPass"]

_SWAP = standard.swap_gate().matrix


class MirrorNearIdentityPass(CompilerPass):
    """Replace near-identity 2Q gates with their SWAP-composed mirrors.

    IR-native: each affected node is rewritten in place with
    ``substitute_node`` (mirrored gate, or the same gate on permuted wires);
    untouched gates keep their node.  The circuit-level :meth:`run` entry
    keeps working through the base-class adapter.
    """

    name = "mirror_near_identity"
    consumes = "ir"
    produces = "ir"
    memo_safe = True

    def __init__(self, threshold: float = 0.15, memo: Optional[Any] = None) -> None:
        self.threshold = threshold
        self.memo = memo

    def memo_config(self) -> Optional[str]:
        return f"threshold={self.threshold!r}"

    def run_ir(self, ir: CircuitIR, properties: Dict[str, Any]) -> CircuitIR:
        permutation: List[int] = list(range(ir.num_qubits))
        mirrored_count = 0
        for node in list(ir.nodes()):
            instruction = ir.instruction(node)
            wires = tuple(permutation[q] for q in instruction.qubits)
            gate = instruction.gate
            if gate.num_qubits == 2:
                if self._should_mirror(gate):
                    mirrored = UnitaryGate(_SWAP @ gate.matrix, label="su4")
                    ir.substitute_node(node, Instruction(mirrored, wires))
                    # The logical SWAP is resolved by exchanging the wires that
                    # the two logical qubits map to from here on.
                    a, b = instruction.qubits
                    permutation[a], permutation[b] = permutation[b], permutation[a]
                    mirrored_count += 1
                    continue
            if wires != instruction.qubits:
                ir.substitute_node(node, Instruction(gate, wires))
        properties["mirror_permutation"] = list(permutation)
        properties["mirrored_gate_count"] = mirrored_count
        return ir

    def _should_mirror(self, gate) -> bool:
        """Near-identity decision for ``gate``, memoized per gate content.

        Only the boolean is cached (the mirrored gate itself is recomputed
        deterministically as ``SWAP @ matrix``), and only for explicit-matrix
        gates — the Weyl decomposition is what costs; ``can`` gates read
        their coordinates straight from the parameters.
        """
        if gate.name == "can":
            return is_near_identity(tuple(gate.params), self.threshold)
        if self.memo is not None:
            from repro.incremental import MISS, gate_region_key

            key = gate_region_key(gate, "mirror", f"threshold={self.threshold!r}")
            cached = self.memo.lookup("region", key)
            if cached is not MISS:
                return cached
            decision = self._near_identity(gate)
            self.memo.store("region", key, decision)
            return decision
        return self._near_identity(gate)

    def _near_identity(self, gate) -> bool:
        try:
            coords = weyl_coordinates(gate.matrix)
        except Exception:  # pragma: no cover - defensive
            return False
        return is_near_identity(coords, self.threshold)
