"""Program-aware template-based synthesis (Section 5.2).

Type-1 programs (quantum versions of digital logic) are dominated by a small
set of 3-qubit IR patterns.  The pass:

#. expands MCX subroutines into CCX gates,
#. replaces every templated 3-qubit IR instruction (CCX / CCZ / CSWAP) with a
   pre-synthesized SU(4)-ISA realization from the template library,
#. performs *selective assembly*: among the equivalent-circuit-class variants
   of each template, the one whose first two-qubit gate can fuse with the most
   recent pending gate on the same pair is chosen,
#. fuses the boundary gates of neighbouring templates (2Q-block
   consolidation).

The output contains only 1Q and 2Q gates and is ready for the
program-agnostic hierarchical pass and routing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.compiler.passes.base import CompilerPass
from repro.service.cache import SynthesisCache, circuit_fingerprint
from repro.synthesis.blocks import consolidate_blocks
from repro.synthesis.mcx import expand_mcx_gates
from repro.synthesis.templates import TemplateLibrary, default_template_library

__all__ = ["TemplateSynthesisPass"]

_TEMPLATED_GATES = ("ccx", "ccz", "cswap")


class TemplateSynthesisPass(CompilerPass):
    """Replace 3-qubit IR patterns with pre-synthesized SU(4) templates.

    When a :class:`~repro.service.cache.SynthesisCache` is supplied, the whole
    pass output is memoized per input-circuit content: re-compiling the same
    program (a suite re-run, or the same circuit under both ``reqisc-eff`` and
    ``reqisc-full``) assembles its templates exactly once.
    """

    name = "template_synthesis"
    memo_safe = True

    def __init__(
        self,
        library: Optional[TemplateLibrary] = None,
        selective_assembly: bool = True,
        fuse_output: bool = True,
        cache: Optional[SynthesisCache] = None,
    ) -> None:
        self.library = library or default_template_library()
        self.selective_assembly = selective_assembly
        self.fuse_output = fuse_output
        self.cache = cache
        self._library_key: Optional[str] = None

    def memo_config(self) -> Optional[str]:
        return (
            f"{self._library_fingerprint()};selective={self.selective_assembly};"
            f"fuse={self.fuse_output}"
        )

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, properties: Dict[str, Any]) -> QuantumCircuit:
        if self.cache is not None:
            key = circuit_fingerprint(
                circuit,
                "template_synthesis",
                self._library_fingerprint(),
                f"selective={self.selective_assembly}",
                f"fuse={self.fuse_output}",
            )
            # ``copy()`` guards the cached instruction list against in-place
            # mutation by downstream passes (instructions stay shared); the
            # name is restored since it is deliberately not part of the key.
            cached = self.cache.get_or_compute(key, lambda: self._transform(circuit))
            return cached.copy(circuit.name)
        return self._transform(circuit)

    def _library_fingerprint(self) -> str:
        """Content key of the template library (templates change the output)."""
        if self._library_key is None:
            parts = [
                circuit_fingerprint(variant)
                for name in self.library.names()
                for variant in self.library.variants(name)
            ]
            self._library_key = "library:" + ",".join(parts)
        return self._library_key

    def _transform(self, circuit: QuantumCircuit) -> QuantumCircuit:
        expanded = expand_mcx_gates(circuit)
        result = QuantumCircuit(expanded.num_qubits, circuit.name)
        # Last pending 2Q pair per qubit (used by selective assembly to pick
        # the template variant that fuses best with already-emitted gates).
        last_pair_for_qubit: Dict[int, Optional[Tuple[int, int]]] = {}

        for instruction in expanded:
            name = instruction.gate.name
            if name in _TEMPLATED_GATES and self.library.has(name):
                variant = self._pick_variant(name, instruction.qubits, last_pair_for_qubit)
                mapping = {local: phys for local, phys in enumerate(instruction.qubits)}
                for template_instr in variant:
                    remapped = template_instr.remap(mapping)
                    result.append(remapped.gate, remapped.qubits)
                    self._track(remapped, last_pair_for_qubit)
            else:
                result.append(instruction.gate, instruction.qubits)
                self._track(Instruction(instruction.gate, instruction.qubits), last_pair_for_qubit)

        if self.fuse_output:
            result = consolidate_blocks(result, form="unitary")
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _track(instruction: Instruction, last_pair_for_qubit: Dict[int, Optional[Tuple[int, int]]]) -> None:
        if instruction.num_qubits == 2:
            pair = tuple(sorted(instruction.qubits))
            for qubit in instruction.qubits:
                last_pair_for_qubit[qubit] = pair
        elif instruction.num_qubits != 1:
            for qubit in instruction.qubits:
                last_pair_for_qubit[qubit] = None

    def _pick_variant(
        self,
        name: str,
        qubits: Tuple[int, ...],
        last_pair_for_qubit: Dict[int, Optional[Tuple[int, int]]],
    ) -> QuantumCircuit:
        variants = self.library.variants(name) if self.selective_assembly else [self.library.realization(name)]
        if len(variants) == 1:
            return variants[0]
        mapping = {local: phys for local, phys in enumerate(qubits)}
        best = variants[0]
        best_score = -1
        for variant in variants:
            first_2q = next((instr for instr in variant if instr.is_two_qubit), None)
            score = 0
            if first_2q is not None:
                physical_pair = tuple(sorted(mapping[q] for q in first_2q.qubits))
                # A fusion happens when both qubits' most recent 2Q gate is on
                # exactly this pair (so the boundary gates merge into one SU4).
                if all(last_pair_for_qubit.get(q) == physical_pair for q in physical_pair):
                    score = 1
            if score > best_score:
                best, best_score = variant, score
        return best
