"""ASAP scheduling against the target's duration model.

Compilation so far emits an *ordered* gate list; real hardware executes a
*timed* pulse program.  :func:`asap_schedule` assigns every instruction the
earliest start time consistent with its qubit dependencies (as-soon-as-
possible list scheduling over per-qubit ready times), and
:class:`SchedulingPass` wraps that as a pipeline stage: the circuit passes
through unchanged and the property set gains the full schedule plus the
critical-path makespan.

Durations come from the target's per-ISA duration model
(:meth:`~repro.target.target.Target.duration_model`); when the target
carries a :class:`~repro.microarch.calibration.CalibrationData` and a 2Q
instruction sits on a calibrated physical edge, the *measured* edge duration
takes precedence over the analytic model (the routed circuit acts on
physical wires, so edge lookups are meaningful).  See ``docs/noise.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.compiler.passes.base import CompilerPass

__all__ = ["GateSlot", "Schedule", "SchedulingPass", "asap_schedule"]


@dataclass(frozen=True)
class GateSlot:
    """Start/duration assignment of one instruction."""

    #: Position of the instruction in the circuit's gate list.
    index: int
    qubits: Tuple[int, ...]
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class Schedule:
    """ASAP schedule of a circuit: per-gate slots plus the makespan."""

    slots: Tuple[GateSlot, ...]
    #: Critical-path completion time (max slot end; 0.0 for an empty circuit).
    makespan: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "makespan": self.makespan,
            "slots": [
                {
                    "index": slot.index,
                    "qubits": list(slot.qubits),
                    "start": slot.start,
                    "duration": slot.duration,
                }
                for slot in self.slots
            ],
        }


def asap_schedule(
    circuit: QuantumCircuit,
    duration_of: Callable[[Instruction], float],
) -> Schedule:
    """Earliest-start schedule of ``circuit`` under ``duration_of``.

    Instructions are visited in program order; each starts at the max ready
    time of its qubits and advances those ready times to its end.  Program
    order is a linear extension of the dependency DAG, so every start time
    respects all data dependencies and no two slots overlap on a qubit.
    """
    ready: Dict[int, float] = {}
    slots: List[GateSlot] = []
    makespan = 0.0
    for index, instruction in enumerate(circuit.instructions):
        qubits = tuple(instruction.qubits)
        start = max((ready.get(q, 0.0) for q in qubits), default=0.0)
        duration = float(duration_of(instruction))
        if duration < 0.0:
            raise ValueError(
                f"negative duration {duration!r} for instruction {index}"
            )
        end = start + duration
        for q in qubits:
            ready[q] = end
        if end > makespan:
            makespan = end
        slots.append(GateSlot(index=index, qubits=qubits, start=start, duration=duration))
    return Schedule(slots=tuple(slots), makespan=makespan)


def _calibrated_duration_model(
    target, isa: Optional[str]
) -> Callable[[Instruction], float]:
    """Target duration model with calibrated 2Q edge durations layered on top.

    Edge durations are expressed in units of the baseline CNOT pulse length
    (see :meth:`CalibrationData.seeded`), so they are scaled by the target's
    ``cnot_duration`` before replacing the analytic 2Q cost.
    """
    base = target.duration_model(isa)
    calibration = getattr(target, "calibration", None)
    if calibration is None:
        return base
    unit = target.cnot_duration

    def duration_of(instruction: Instruction) -> float:
        qubits = instruction.qubits
        if len(qubits) == 2 and calibration.has_edge(qubits[0], qubits[1]):
            return calibration.edge(qubits[0], qubits[1]).duration * unit
        return base(instruction)

    return duration_of


class SchedulingPass(CompilerPass):
    """Attach an ASAP schedule + makespan to the property set.

    The circuit itself is untouched (identity on gates), so the pass can be
    appended to any pipeline without disturbing downstream stages.  It is
    deliberately not memo-safe: its output is pure bookkeeping in the
    property set, and memoizing would store the whole program to replay two
    numbers.
    """

    name = "schedule"
    consumes = "circuit"
    produces = "circuit"
    memo_safe = False

    def __init__(self, target, isa: Optional[str] = None) -> None:
        self.target = target
        self.isa = isa

    def run(self, circuit: QuantumCircuit, properties: Dict[str, Any]) -> QuantumCircuit:
        duration_of = _calibrated_duration_model(self.target, self.isa)
        schedule = asap_schedule(circuit, duration_of)
        properties["schedule"] = schedule
        properties["makespan"] = schedule.makespan
        return circuit
