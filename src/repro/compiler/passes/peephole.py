"""Peephole optimizations for CNOT-ISA circuits.

These are the optimizations that define the baseline compilers (Qiskit O3 /
TKet style): merging runs of single-qubit gates into one ``U3``, cancelling
adjacent self-inverse two-qubit gates, merging adjacent compatible rotations,
and (optionally) consolidating two-qubit runs and re-synthesizing them with
the minimal number of CNOTs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.compiler.passes.base import CompilerPass
from repro.gates import standard
from repro.linalg.predicates import allclose_up_to_global_phase
from repro.linalg.su2 import u3_params_from_matrix

__all__ = ["peephole_optimize", "PeepholeOptimizationPass"]

_SELF_INVERSE_2Q = {"cx", "cz", "cy", "swap", "ch"}
_MERGEABLE_ROTATIONS = {"rz", "rx", "ry", "p", "rzz", "rxx", "ryy", "cp", "crz"}
#: Gates diagonal in the computational basis: they mutually commute, so
#: diagonal rotations can be merged across them (the PauliSimp-style
#: simplification used for Trotterized programs).
_DIAGONAL_GATES = {"z", "s", "sdg", "t", "tdg", "rz", "p", "cz", "cp", "crz", "rzz", "ccz", "id"}
_DIAGONAL_ROTATIONS = {"rz", "p", "rzz", "cp", "crz"}


def _merge_one_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse consecutive single-qubit gates on each wire into one ``U3``."""
    pending: Dict[int, np.ndarray] = {}
    result = QuantumCircuit(circuit.num_qubits, circuit.name)

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        if allclose_up_to_global_phase(matrix, np.eye(2), atol=1e-10):
            return
        _, theta, phi, lam = u3_params_from_matrix(matrix)
        result.u3(theta, phi, lam, qubit)

    for instruction in circuit:
        if instruction.num_qubits == 1:
            qubit = instruction.qubits[0]
            pending[qubit] = instruction.gate.matrix @ pending.get(qubit, np.eye(2, dtype=complex))
        else:
            for qubit in instruction.qubits:
                flush(qubit)
            result.append(instruction.gate, instruction.qubits)
    for qubit in list(pending):
        flush(qubit)
    return result


def _cancel_adjacent_two_qubit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Cancel adjacent identical self-inverse 2Q gates and merge rotations.

    Adjacency is evaluated per qubit pair: two 2Q gates cancel when no other
    instruction touches either qubit in between.
    """
    instructions: List[Optional[Instruction]] = list(circuit)
    last_on_pair: Dict[tuple, int] = {}
    last_touch: Dict[int, int] = {}
    last_nondiagonal_touch: Dict[int, int] = {}
    for index, instruction in enumerate(circuit):
        qubits = instruction.qubits
        if instruction.num_qubits == 2:
            pair = tuple(sorted(qubits))
            previous = last_on_pair.get(pair)
            previous_index = previous if previous is not None else -1
            blocked = any(last_touch.get(q, -1) > previous_index for q in qubits)
            blocked_nondiagonal = any(
                last_nondiagonal_touch.get(q, -1) > previous_index for q in qubits
            )
            if previous is not None and instructions[previous] is not None:
                prev_instr = instructions[previous]
                same_orientation = prev_instr.qubits == qubits
                name = instruction.gate.name
                if (
                    not blocked
                    and name in _SELF_INVERSE_2Q
                    and prev_instr.gate.name == name
                    and same_orientation
                ):
                    instructions[previous] = None
                    instructions[index] = None
                    last_on_pair.pop(pair, None)
                    for q in qubits:
                        last_touch[q] = index
                    continue
                # Diagonal rotations merge across any intervening diagonal
                # gates; other rotations only merge when strictly adjacent.
                merge_allowed = (not blocked) or (
                    name in _DIAGONAL_ROTATIONS and not blocked_nondiagonal
                )
                if (
                    merge_allowed
                    and name in _MERGEABLE_ROTATIONS
                    and prev_instr.gate.name == name
                    and same_orientation
                ):
                    angle = prev_instr.gate.params[0] + instruction.gate.params[0]
                    instructions[previous] = None
                    if abs(angle) < 1e-12:
                        instructions[index] = None
                    else:
                        instructions[index] = Instruction(
                            instruction.gate.with_params([angle]), qubits
                        )
                    last_on_pair[pair] = index
                    for q in qubits:
                        last_touch[q] = index
                    continue
            last_on_pair[pair] = index
        for q in qubits:
            last_touch[q] = index
            if instruction.gate.name not in _DIAGONAL_GATES:
                last_nondiagonal_touch[q] = index

    result = QuantumCircuit(circuit.num_qubits, circuit.name)
    for instruction in instructions:
        if instruction is not None:
            result.append(instruction.gate, instruction.qubits)
    return result


def peephole_optimize(
    circuit: QuantumCircuit,
    consolidate: bool = True,
    max_rounds: int = 4,
) -> QuantumCircuit:
    """Iterate 1Q merging and 2Q cancellation to a fixed point.

    With ``consolidate`` the final round re-synthesizes maximal two-qubit
    runs with the minimal number of CNOTs (block consolidation), keeping the
    original run whenever re-synthesis would not help.
    """
    from repro.synthesis.blocks import consolidate_blocks

    current = circuit
    for _ in range(max_rounds):
        merged = _merge_one_qubit_runs(current)
        cancelled = _cancel_adjacent_two_qubit(merged)
        if len(cancelled) == len(current) and cancelled.count_two_qubit_gates() == current.count_two_qubit_gates():
            current = cancelled
            break
        current = cancelled
    if consolidate:
        consolidated = consolidate_blocks(current, form="cx", only_if_fewer_gates=True)
        if consolidated.count_two_qubit_gates() <= current.count_two_qubit_gates():
            current = _merge_one_qubit_runs(consolidated)
    return current


class PeepholeOptimizationPass(CompilerPass):
    """Pass wrapper around :func:`peephole_optimize`."""

    name = "peephole"

    def __init__(self, consolidate: bool = True, max_rounds: int = 4) -> None:
        self.consolidate = consolidate
        self.max_rounds = max_rounds

    def run(self, circuit: QuantumCircuit, properties: Dict[str, Any]) -> QuantumCircuit:
        return peephole_optimize(circuit, consolidate=self.consolidate, max_rounds=self.max_rounds)
