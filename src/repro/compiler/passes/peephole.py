"""Peephole optimizations for CNOT-ISA circuits.

These are the optimizations that define the baseline compilers (Qiskit O3 /
TKet style): merging runs of single-qubit gates into one ``U3``, cancelling
adjacent self-inverse two-qubit gates, merging adjacent compatible rotations,
and (optionally) consolidating two-qubit runs and re-synthesizing them with
the minimal number of CNOTs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.compiler.passes.base import CompilerPass
from repro.gates import standard
from repro.ir import CircuitIR
from repro.linalg.predicates import allclose_up_to_global_phase
from repro.linalg.su2 import u3_params_from_matrix

__all__ = ["peephole_optimize", "peephole_optimize_ir", "PeepholeOptimizationPass"]

_SELF_INVERSE_2Q = {"cx", "cz", "cy", "swap", "ch"}
_MERGEABLE_ROTATIONS = {"rz", "rx", "ry", "p", "rzz", "rxx", "ryy", "cp", "crz"}
#: Gates diagonal in the computational basis: they mutually commute, so
#: diagonal rotations can be merged across them (the PauliSimp-style
#: simplification used for Trotterized programs).
_DIAGONAL_GATES = {"z", "s", "sdg", "t", "tdg", "rz", "p", "cz", "cp", "crz", "rzz", "ccz", "id"}
_DIAGONAL_ROTATIONS = {"rz", "p", "rzz", "cp", "crz"}


def _merge_one_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse consecutive single-qubit gates on each wire into one ``U3``."""
    pending: Dict[int, np.ndarray] = {}
    result = QuantumCircuit(circuit.num_qubits, circuit.name)

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        if allclose_up_to_global_phase(matrix, np.eye(2), atol=1e-10):
            return
        _, theta, phi, lam = u3_params_from_matrix(matrix)
        result.u3(theta, phi, lam, qubit)

    for instruction in circuit:
        if instruction.num_qubits == 1:
            qubit = instruction.qubits[0]
            pending[qubit] = instruction.gate.matrix @ pending.get(qubit, np.eye(2, dtype=complex))
        else:
            for qubit in instruction.qubits:
                flush(qubit)
            result.append(instruction.gate, instruction.qubits)
    for qubit in list(pending):
        flush(qubit)
    return result


def _cancel_adjacent_two_qubit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Cancel adjacent identical self-inverse 2Q gates and merge rotations.

    Adjacency is evaluated per qubit pair: two 2Q gates cancel when no other
    instruction touches either qubit in between.
    """
    instructions: List[Optional[Instruction]] = list(circuit)
    last_on_pair: Dict[tuple, int] = {}
    last_touch: Dict[int, int] = {}
    last_nondiagonal_touch: Dict[int, int] = {}
    for index, instruction in enumerate(circuit):
        qubits = instruction.qubits
        if instruction.num_qubits == 2:
            pair = tuple(sorted(qubits))
            previous = last_on_pair.get(pair)
            previous_index = previous if previous is not None else -1
            blocked = any(last_touch.get(q, -1) > previous_index for q in qubits)
            blocked_nondiagonal = any(
                last_nondiagonal_touch.get(q, -1) > previous_index for q in qubits
            )
            if previous is not None and instructions[previous] is not None:
                prev_instr = instructions[previous]
                same_orientation = prev_instr.qubits == qubits
                name = instruction.gate.name
                if (
                    not blocked
                    and name in _SELF_INVERSE_2Q
                    and prev_instr.gate.name == name
                    and same_orientation
                ):
                    instructions[previous] = None
                    instructions[index] = None
                    last_on_pair.pop(pair, None)
                    for q in qubits:
                        last_touch[q] = index
                    continue
                # Diagonal rotations merge across any intervening diagonal
                # gates; other rotations only merge when strictly adjacent.
                merge_allowed = (not blocked) or (
                    name in _DIAGONAL_ROTATIONS and not blocked_nondiagonal
                )
                if (
                    merge_allowed
                    and name in _MERGEABLE_ROTATIONS
                    and prev_instr.gate.name == name
                    and same_orientation
                ):
                    angle = prev_instr.gate.params[0] + instruction.gate.params[0]
                    instructions[previous] = None
                    if abs(angle) < 1e-12:
                        instructions[index] = None
                    else:
                        instructions[index] = Instruction(
                            instruction.gate.with_params([angle]), qubits
                        )
                    last_on_pair[pair] = index
                    for q in qubits:
                        last_touch[q] = index
                    continue
            last_on_pair[pair] = index
        for q in qubits:
            last_touch[q] = index
            if instruction.gate.name not in _DIAGONAL_GATES:
                last_nondiagonal_touch[q] = index

    result = QuantumCircuit(circuit.num_qubits, circuit.name)
    for instruction in instructions:
        if instruction is not None:
            result.append(instruction.gate, instruction.qubits)
    return result


# ---------------------------------------------------------------------------
# IR-native kernels.  These mirror the flat-list functions above instruction
# for instruction (same scan order, same arithmetic, same tie-breaking), but
# mutate the shared CircuitIR in place through its rewrite primitives instead
# of re-emitting a new circuit.
#
# The flat functions are kept as deliberately *independent* reference twins
# (the same pattern as routing's frozen ``sabre_reference``): they are the
# oracle the randomized property tests compare against, so the two copies
# must be changed in lockstep — a tweak applied to one side only will fail
# ``tests/test_ir.py::test_ir_peephole_matches_flat_kernel``.  Do not
# "deduplicate" the flat side through the IR kernels; that would make the
# equivalence tests tautological.
# ---------------------------------------------------------------------------


def _merge_one_qubit_runs_ir(ir: CircuitIR, memo: Optional[Any] = None) -> None:
    """IR-native twin of :func:`_merge_one_qubit_runs` (in place).

    With a memo store, each run's merged result — ``None`` (identity-class
    run, dropped) or the ``(theta, phi, lam)`` of the replacement ``U3`` — is
    memoized per run content.  A miss evaluates the *same* left-multiplied
    matrix product as the memo-less path (``g_n @ ... @ g_1 @ I``), so a
    replayed hit is bit-identical to recomputation.
    """
    if memo is not None:
        _merge_one_qubit_runs_ir_memo(ir, memo)
        return
    pending: Dict[int, np.ndarray] = {}
    run_nodes: Dict[int, List[int]] = {}

    def flush(qubit: int, anchor: Optional[int]) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        nodes = run_nodes.pop(qubit)
        for node in nodes:
            ir.remove_node(node)
        if allclose_up_to_global_phase(matrix, np.eye(2), atol=1e-10):
            return
        _, theta, phi, lam = u3_params_from_matrix(matrix)
        merged = Instruction(standard.u3_gate(theta, phi, lam), (qubit,))
        if anchor is None:
            ir.append(merged)
        else:
            ir.insert_before(anchor, merged)

    for node in list(ir.nodes()):
        instruction = ir.instruction(node)
        if instruction.num_qubits == 1:
            qubit = instruction.qubits[0]
            pending[qubit] = instruction.gate.matrix @ pending.get(qubit, np.eye(2, dtype=complex))
            run_nodes.setdefault(qubit, []).append(node)
        else:
            for qubit in instruction.qubits:
                flush(qubit, anchor=node)
    for qubit in list(pending):
        flush(qubit, anchor=None)


def _merge_one_qubit_runs_ir_memo(ir: CircuitIR, memo: Any) -> None:
    """Memoized variant of :func:`_merge_one_qubit_runs_ir`.

    Runs are keyed by the content of their gate sequence; the matrix product
    is only evaluated on a miss, with the identical operation order as the
    memo-less kernel.
    """
    from repro.incremental import MISS, gates_region_key

    runs: Dict[int, List[Any]] = {}
    run_nodes: Dict[int, List[int]] = {}

    def flush(qubit: int, anchor: Optional[int]) -> None:
        gates = runs.pop(qubit, None)
        if gates is None:
            return
        nodes = run_nodes.pop(qubit)
        for node in nodes:
            ir.remove_node(node)
        key = gates_region_key(gates, "merge-1q")
        params = memo.lookup("region", key)
        if params is MISS:
            matrix = np.eye(2, dtype=complex)
            for gate in gates:
                matrix = gate.matrix @ matrix
            if allclose_up_to_global_phase(matrix, np.eye(2), atol=1e-10):
                params = None
            else:
                _, theta, phi, lam = u3_params_from_matrix(matrix)
                params = (theta, phi, lam)
            memo.store("region", key, params)
        if params is None:
            return
        merged = Instruction(standard.u3_gate(*params), (qubit,))
        if anchor is None:
            ir.append(merged)
        else:
            ir.insert_before(anchor, merged)

    for node in list(ir.nodes()):
        instruction = ir.instruction(node)
        if instruction.num_qubits == 1:
            qubit = instruction.qubits[0]
            runs.setdefault(qubit, []).append(instruction.gate)
            run_nodes.setdefault(qubit, []).append(node)
        else:
            for qubit in instruction.qubits:
                flush(qubit, anchor=node)
    for qubit in list(runs):
        flush(qubit, anchor=None)


def _cancel_adjacent_two_qubit_ir(ir: CircuitIR) -> None:
    """IR-native twin of :func:`_cancel_adjacent_two_qubit` (in place).

    The scan runs over a snapshot of the program order; cancellations remove
    both nodes, rotation merges substitute the later node in place — exactly
    the tombstone/rewrite bookkeeping of the flat-list version, expressed as
    IR primitives.
    """
    order = list(ir.nodes())
    last_on_pair: Dict[tuple, int] = {}
    last_touch: Dict[int, int] = {}
    last_nondiagonal_touch: Dict[int, int] = {}
    for index, node in enumerate(order):
        instruction = ir.instruction(node)
        qubits = instruction.qubits
        if instruction.num_qubits == 2:
            pair = tuple(sorted(qubits))
            previous = last_on_pair.get(pair)
            previous_index = previous if previous is not None else -1
            blocked = any(last_touch.get(q, -1) > previous_index for q in qubits)
            blocked_nondiagonal = any(
                last_nondiagonal_touch.get(q, -1) > previous_index for q in qubits
            )
            if previous is not None and order[previous] in ir:
                prev_instr = ir.instruction(order[previous])
                same_orientation = prev_instr.qubits == qubits
                name = instruction.gate.name
                if (
                    not blocked
                    and name in _SELF_INVERSE_2Q
                    and prev_instr.gate.name == name
                    and same_orientation
                ):
                    ir.remove_node(order[previous])
                    ir.remove_node(node)
                    last_on_pair.pop(pair, None)
                    for q in qubits:
                        last_touch[q] = index
                    continue
                merge_allowed = (not blocked) or (
                    name in _DIAGONAL_ROTATIONS and not blocked_nondiagonal
                )
                if (
                    merge_allowed
                    and name in _MERGEABLE_ROTATIONS
                    and prev_instr.gate.name == name
                    and same_orientation
                ):
                    angle = prev_instr.gate.params[0] + instruction.gate.params[0]
                    ir.remove_node(order[previous])
                    if abs(angle) < 1e-12:
                        ir.remove_node(node)
                    else:
                        ir.substitute_node(
                            node, Instruction(instruction.gate.with_params([angle]), qubits)
                        )
                    last_on_pair[pair] = index
                    for q in qubits:
                        last_touch[q] = index
                    continue
            last_on_pair[pair] = index
        for q in qubits:
            last_touch[q] = index
            if instruction.gate.name not in _DIAGONAL_GATES:
                last_nondiagonal_touch[q] = index


def peephole_optimize_ir(
    ir: CircuitIR,
    consolidate: bool = True,
    max_rounds: int = 4,
) -> None:
    """IR-native twin of :func:`peephole_optimize`: optimize ``ir`` in place.

    Fixed-point detection reads the IR's O(1) gate/2Q counters; the optional
    consolidation round snapshots the program so a non-improving rewrite can
    be rolled back transactionally (the flat version discards the candidate
    circuit in that case).
    """
    from repro.synthesis.blocks import consolidate_blocks_ir

    for _ in range(max_rounds):
        gates_before = len(ir)
        two_qubit_before = ir.two_qubit_count()
        _merge_one_qubit_runs_ir(ir)
        _cancel_adjacent_two_qubit_ir(ir)
        if len(ir) == gates_before and ir.two_qubit_count() == two_qubit_before:
            break
    if consolidate:
        two_qubit_before = ir.two_qubit_count()
        snapshot = list(ir.instructions())
        consolidate_blocks_ir(ir, form="cx", only_if_fewer_gates=True)
        if ir.two_qubit_count() <= two_qubit_before:
            _merge_one_qubit_runs_ir(ir)
        else:  # pragma: no cover - only_if_fewer_gates never increases #2Q
            ir.rewrite(snapshot)


def peephole_optimize(
    circuit: QuantumCircuit,
    consolidate: bool = True,
    max_rounds: int = 4,
) -> QuantumCircuit:
    """Iterate 1Q merging and 2Q cancellation to a fixed point.

    With ``consolidate`` the final round re-synthesizes maximal two-qubit
    runs with the minimal number of CNOTs (block consolidation), keeping the
    original run whenever re-synthesis would not help.
    """
    from repro.synthesis.blocks import consolidate_blocks

    current = circuit
    for _ in range(max_rounds):
        merged = _merge_one_qubit_runs(current)
        cancelled = _cancel_adjacent_two_qubit(merged)
        if len(cancelled) == len(current) and cancelled.count_two_qubit_gates() == current.count_two_qubit_gates():
            current = cancelled
            break
        current = cancelled
    if consolidate:
        consolidated = consolidate_blocks(current, form="cx", only_if_fewer_gates=True)
        if consolidated.count_two_qubit_gates() <= current.count_two_qubit_gates():
            current = _merge_one_qubit_runs(consolidated)
    return current


class PeepholeOptimizationPass(CompilerPass):
    """IR-native pass wrapper around :func:`peephole_optimize_ir`.

    Consumes and produces the shared :class:`~repro.ir.CircuitIR`; the
    circuit-level :meth:`run` entry keeps working through the base-class
    adapter and stays bit-identical to :func:`peephole_optimize`.
    """

    name = "peephole"
    consumes = "ir"
    produces = "ir"
    # The cancellation scan looks arbitrarily far back (per qubit pair), so
    # edits have unbounded influence radius — no region splice, but the pass
    # is pure in (program, config) and memoizes at whole-pass granularity.
    memo_safe = True

    def __init__(self, consolidate: bool = True, max_rounds: int = 4) -> None:
        self.consolidate = consolidate
        self.max_rounds = max_rounds

    def memo_config(self) -> Optional[str]:
        return f"consolidate={self.consolidate};max_rounds={self.max_rounds}"

    def run_ir(self, ir: CircuitIR, properties: Dict[str, Any]) -> CircuitIR:
        peephole_optimize_ir(ir, consolidate=self.consolidate, max_rounds=self.max_rounds)
        return ir
