"""Routing as a first-class pipeline pass.

Historically routing was special-cased outside the :class:`PassManager`
(each compiler called :class:`~repro.compiler.routing.sabre.SabreRouter` by
hand between two pass-manager runs).  Wrapping it as a
:class:`~repro.compiler.passes.base.CompilerPass` lets declarative
:class:`~repro.target.pipeline.PipelineSpec` stages express the whole
pipeline — including hardware-aware stages — as one ordered list.

The pass is IR-native: it consumes the shared
:class:`~repro.ir.CircuitIR`, hands its cached CSR
:class:`~repro.circuits.depgraph.DependencyGraph` straight to
:meth:`SabreRouter.run_graph` (no re-derivation from a flat gate list), and
adopts the routed program back into the same IR object.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.compiler.passes.base import CompilerPass
from repro.compiler.routing.coupling_map import CouplingMap
from repro.compiler.routing.sabre import SabreRouter
from repro.ir import CircuitIR

__all__ = ["SabreRoutingPass"]


class SabreRoutingPass(CompilerPass):
    """Map the circuit onto a device topology with (mirroring-)SABRE.

    Writes ``initial_layout``, ``final_layout``, ``inserted_swaps`` and
    ``absorbed_swaps`` into the property set.  With no coupling map the pass
    is a no-op, so topology-free targets can share the same pipeline spec.
    """

    name = "sabre_route"
    consumes = "ir"
    produces = "ir"
    # SABRE's lookahead makes every routing decision depend on global
    # context, so there is no bit-identical region splice — but the whole
    # pass is a pure function of (program, topology, settings) and memoizes
    # at pass granularity.
    memo_safe = True

    def __init__(
        self,
        coupling_map: Optional[CouplingMap],
        mirroring: bool = True,
        seed: int = 0,
        lookahead_size: int = 20,
        lookahead_weight: float = 0.5,
        noise_aware: bool = False,
        calibration=None,
    ) -> None:
        self.coupling_map = coupling_map
        self.mirroring = mirroring
        self.seed = seed
        self.lookahead_size = lookahead_size
        self.lookahead_weight = lookahead_weight
        # Noise-aware routing is a strict opt-in: with the default False the
        # pass (and its memo key) is byte-identical to the pre-calibration
        # behaviour.  When enabled it routes with BOTH the calibration-
        # weighted scorer and the distance-only one and keeps whichever
        # estimated fidelity is higher (see docs/noise.md), so it can never
        # score worse than the baseline.
        self.noise_aware = noise_aware
        self.calibration = calibration
        if noise_aware and calibration is None:
            raise ValueError("noise_aware routing needs a calibrated target")

    def memo_config(self) -> Optional[str]:
        if self.coupling_map is None:
            # No-op configuration: memoizing would store the whole program
            # for nothing.
            return None
        import hashlib
        import json

        topology = hashlib.sha256(
            json.dumps(
                {
                    "num_qubits": self.coupling_map.num_qubits,
                    "edges": sorted(self.coupling_map.edges),
                },
                sort_keys=True,
            ).encode("utf-8")
        ).hexdigest()
        config = (
            f"mirroring={self.mirroring};seed={self.seed};"
            f"lookahead={self.lookahead_size}:{self.lookahead_weight!r};"
            f"topology={topology}"
        )
        if self.noise_aware:
            # Only the opt-in path extends the key: noise_aware=False memo
            # entries stay interchangeable with pre-calibration ones.
            config += f";noise=1;cal={self.calibration.fingerprint()}"
        return config

    def run_ir(self, ir: CircuitIR, properties: Dict[str, Any]) -> CircuitIR:
        if self.coupling_map is None:
            return ir
        if self.noise_aware:
            return self._run_noise_aware(ir, properties)
        router = SabreRouter(
            self.coupling_map,
            mirroring=self.mirroring,
            lookahead_size=self.lookahead_size,
            lookahead_weight=self.lookahead_weight,
            seed=self.seed,
        )
        routing = router.run_graph(ir.dependency_graph(), name=ir.name)
        properties["initial_layout"] = routing.initial_layout
        properties["final_layout"] = routing.final_layout
        properties["inserted_swaps"] = routing.inserted_swaps
        properties["absorbed_swaps"] = routing.absorbed_swaps
        ir.adopt(routing.circuit)
        return ir

    def _run_noise_aware(self, ir: CircuitIR, properties: Dict[str, Any]) -> CircuitIR:
        model = self.calibration.routing_model(self.coupling_map)
        common = dict(
            mirroring=self.mirroring,
            lookahead_size=self.lookahead_size,
            lookahead_weight=self.lookahead_weight,
            seed=self.seed,
        )
        graph = ir.dependency_graph()
        distance_routing = SabreRouter(self.coupling_map, **common).run_graph(
            graph, name=ir.name
        )
        try:
            noise_routing = SabreRouter(
                self.coupling_map, noise_model=model, **common
            ).run_graph(graph, name=ir.name)
        except RuntimeError:
            # Weighted scoring failed to converge on this program; the
            # distance-only result is always available as the floor.
            noise_routing = distance_routing
        distance_log = self.calibration.estimated_log_fidelity(distance_routing.circuit)
        noise_log = self.calibration.estimated_log_fidelity(noise_routing.circuit)
        if noise_log >= distance_log:
            routing, strategy = noise_routing, "noise"
        else:
            routing, strategy = distance_routing, "distance"
        properties["initial_layout"] = routing.initial_layout
        properties["final_layout"] = routing.final_layout
        properties["inserted_swaps"] = routing.inserted_swaps
        properties["absorbed_swaps"] = routing.absorbed_swaps
        properties["routing_strategy"] = strategy
        properties["estimated_log_fidelity"] = max(noise_log, distance_log)
        properties["noise_log_fidelity"] = noise_log
        properties["distance_log_fidelity"] = distance_log
        ir.adopt(routing.circuit)
        return ir
