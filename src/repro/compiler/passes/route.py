"""Routing as a first-class pipeline pass.

Historically routing was special-cased outside the :class:`PassManager`
(each compiler called :class:`~repro.compiler.routing.sabre.SabreRouter` by
hand between two pass-manager runs).  Wrapping it as a
:class:`~repro.compiler.passes.base.CompilerPass` lets declarative
:class:`~repro.target.pipeline.PipelineSpec` stages express the whole
pipeline — including hardware-aware stages — as one ordered list.

The pass is IR-native: it consumes the shared
:class:`~repro.ir.CircuitIR`, hands its cached CSR
:class:`~repro.circuits.depgraph.DependencyGraph` straight to
:meth:`SabreRouter.run_graph` (no re-derivation from a flat gate list), and
adopts the routed program back into the same IR object.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.compiler.passes.base import CompilerPass
from repro.compiler.routing.coupling_map import CouplingMap
from repro.compiler.routing.sabre import SabreRouter
from repro.ir import CircuitIR

__all__ = ["SabreRoutingPass"]


class SabreRoutingPass(CompilerPass):
    """Map the circuit onto a device topology with (mirroring-)SABRE.

    Writes ``initial_layout``, ``final_layout``, ``inserted_swaps`` and
    ``absorbed_swaps`` into the property set.  With no coupling map the pass
    is a no-op, so topology-free targets can share the same pipeline spec.
    """

    name = "sabre_route"
    consumes = "ir"
    produces = "ir"
    # SABRE's lookahead makes every routing decision depend on global
    # context, so there is no bit-identical region splice — but the whole
    # pass is a pure function of (program, topology, settings) and memoizes
    # at pass granularity.
    memo_safe = True

    def __init__(
        self,
        coupling_map: Optional[CouplingMap],
        mirroring: bool = True,
        seed: int = 0,
        lookahead_size: int = 20,
        lookahead_weight: float = 0.5,
    ) -> None:
        self.coupling_map = coupling_map
        self.mirroring = mirroring
        self.seed = seed
        self.lookahead_size = lookahead_size
        self.lookahead_weight = lookahead_weight

    def memo_config(self) -> Optional[str]:
        if self.coupling_map is None:
            # No-op configuration: memoizing would store the whole program
            # for nothing.
            return None
        import hashlib
        import json

        topology = hashlib.sha256(
            json.dumps(
                {
                    "num_qubits": self.coupling_map.num_qubits,
                    "edges": sorted(self.coupling_map.edges),
                },
                sort_keys=True,
            ).encode("utf-8")
        ).hexdigest()
        return (
            f"mirroring={self.mirroring};seed={self.seed};"
            f"lookahead={self.lookahead_size}:{self.lookahead_weight!r};"
            f"topology={topology}"
        )

    def run_ir(self, ir: CircuitIR, properties: Dict[str, Any]) -> CircuitIR:
        if self.coupling_map is None:
            return ir
        router = SabreRouter(
            self.coupling_map,
            mirroring=self.mirroring,
            lookahead_size=self.lookahead_size,
            lookahead_weight=self.lookahead_weight,
            seed=self.seed,
        )
        routing = router.run_graph(ir.dependency_graph(), name=ir.name)
        properties["initial_layout"] = routing.initial_layout
        properties["final_layout"] = routing.final_layout
        properties["inserted_swaps"] = routing.inserted_swaps
        properties["absorbed_swaps"] = routing.absorbed_swaps
        ir.adopt(routing.circuit)
        return ir
