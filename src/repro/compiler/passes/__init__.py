"""Compilation passes of the Regulus compiler."""

from repro.compiler.passes.base import CompilerPass, PassManager
from repro.compiler.passes.decompose import (
    DecomposeToCnotPass,
    decompose_to_cnot,
    lower_high_level_gates,
)
from repro.compiler.passes.peephole import PeepholeOptimizationPass, peephole_optimize
from repro.compiler.passes.fuse import Fuse2QBlocksPass
from repro.compiler.passes.template_synthesis import TemplateSynthesisPass
from repro.compiler.passes.hierarchical import (
    HierarchicalSynthesisPass,
    compactness,
    dag_compacting,
    partition_into_blocks,
)
from repro.compiler.passes.mirror import MirrorNearIdentityPass
from repro.compiler.passes.finalize import FinalizeToCanPass
from repro.compiler.passes.route import SabreRoutingPass
from repro.compiler.passes.schedule import GateSlot, Schedule, SchedulingPass, asap_schedule

__all__ = [
    "CompilerPass",
    "PassManager",
    "DecomposeToCnotPass",
    "decompose_to_cnot",
    "lower_high_level_gates",
    "PeepholeOptimizationPass",
    "peephole_optimize",
    "Fuse2QBlocksPass",
    "TemplateSynthesisPass",
    "HierarchicalSynthesisPass",
    "compactness",
    "dag_compacting",
    "partition_into_blocks",
    "MirrorNearIdentityPass",
    "FinalizeToCanPass",
    "SabreRoutingPass",
    "GateSlot",
    "Schedule",
    "SchedulingPass",
    "asap_schedule",
]
