"""Program-agnostic hierarchical synthesis (Section 5.1).

Pipeline (Figure 7b):

#. fuse maximal 2Q runs into SU(4) blocks,
#. DAG compacting: exchange approximately-commuting SU(4)s to concentrate
   gates into fewer ``w``-qubit partitions (compactness),
#. partition the SU(4) circuit into ``w``-qubit blocks (default ``w = 3``),
#. conditionally re-synthesize each block whose SU(4) count exceeds the
   threshold ``m_th`` (default 4) with the numerical approximate synthesizer,
   keeping the original block when synthesis does not help.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.compiler.passes.base import CompilerPass
from repro.gates.gate import UnitaryGate
from repro.service.cache import SynthesisCache, unitary_fingerprint
from repro.simulators.statevector import apply_gate, apply_gate_sequence
from repro.synthesis.approximate import ApproximateSynthesizer
from repro.synthesis.blocks import consolidate_blocks

__all__ = [
    "MultiQubitBlock",
    "partition_into_blocks",
    "compactness",
    "dag_compacting",
    "HierarchicalSynthesisPass",
]


@dataclass
class MultiQubitBlock:
    """A contiguous group of instructions confined to at most ``w`` qubits."""

    qubits: Tuple[int, ...]
    instructions: List[Instruction] = field(default_factory=list)
    start_position: int = 0

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of 2Q gates in the block."""
        return sum(1 for instr in self.instructions if instr.is_two_qubit)

    def unitary(self) -> np.ndarray:
        """Unitary of the block on its (sorted) local qubits."""
        order = {q: i for i, q in enumerate(self.qubits)}
        dim = 2 ** len(self.qubits)
        operations = [
            (instruction.gate.matrix, [order[q] for q in instruction.qubits])
            for instruction in self.instructions
        ]
        return apply_gate_sequence(np.eye(dim, dtype=complex), operations, len(self.qubits))


def partition_into_blocks(
    circuit: QuantumCircuit, block_size: int = 3
) -> Tuple[List[MultiQubitBlock], List[Tuple[int, Instruction]]]:
    """Greedy partition of a 1Q/2Q circuit into blocks of ``block_size`` qubits.

    Returns ``(blocks, leftovers)``; every instruction belongs to exactly one
    of the two.  Blocks grow as long as adding the next gate keeps the block
    within ``block_size`` qubits and no intervening gate touched its qubits.
    """
    blocks: List[MultiQubitBlock] = []
    leftovers: List[Tuple[int, Instruction]] = []
    open_block: Dict[int, Optional[int]] = {}
    # Emission position of each qubit's most recent use: blocks are emitted at
    # their start position, so a block may only absorb a new qubit whose last
    # use was emitted strictly before that position (ordering correctness).
    last_emission: Dict[int, int] = {}

    def close(qubit: int) -> None:
        open_block[qubit] = None

    for position, instruction in enumerate(circuit):
        qubits = instruction.qubits
        if instruction.num_qubits > 2:
            for qubit in qubits:
                close(qubit)
                last_emission[qubit] = position
            leftovers.append((position, instruction))
            continue
        if instruction.num_qubits == 1:
            index = open_block.get(qubits[0])
            if index is not None:
                blocks[index].instructions.append(instruction)
                last_emission[qubits[0]] = blocks[index].start_position
            else:
                leftovers.append((position, instruction))
                last_emission[qubits[0]] = position
            continue
        pair = tuple(sorted(qubits))
        indices = {open_block.get(q) for q in pair}
        indices.discard(None)
        if len(indices) == 1:
            index = indices.pop()
            block = blocks[index]
            union = tuple(sorted(set(block.qubits) | set(pair)))
            new_qubits = [q for q in pair if q not in block.qubits]
            safe = all(
                last_emission.get(q, -1) < block.start_position for q in new_qubits
            )
            if len(union) <= block_size and safe:
                block.qubits = union
                block.instructions.append(instruction)
                for qubit in pair:
                    open_block[qubit] = index
                    last_emission[qubit] = block.start_position
                continue
        # Otherwise close whatever the two qubits were part of and start fresh.
        for qubit in pair:
            close(qubit)
        blocks.append(MultiQubitBlock(qubits=pair, instructions=[instruction], start_position=position))
        for qubit in pair:
            open_block[qubit] = len(blocks) - 1
            last_emission[qubit] = position
    return blocks, leftovers


def compactness(
    circuit: QuantumCircuit, block_size: int = 3, threshold: int = 4
) -> float:
    """Partitioning compactness metric (Section 5.1.3).

    Fraction of two-qubit gates that land in blocks dense enough to be worth
    re-synthesizing (more than ``threshold`` 2Q gates).  Higher is better: an
    ideal partition concentrates gates into few, dense blocks.
    """
    blocks, _ = partition_into_blocks(circuit, block_size=block_size)
    total = sum(block.num_two_qubit_gates for block in blocks)
    if total == 0:
        return 0.0
    dense = sum(
        block.num_two_qubit_gates
        for block in blocks
        if block.num_two_qubit_gates > threshold
    )
    return dense / total


def _commutator_norm(instr_a: Instruction, instr_b: Instruction) -> float:
    """Norm of the commutator of two 2Q gates embedded on their joint qubits."""
    qubits = sorted(set(instr_a.qubits) | set(instr_b.qubits))
    order = {q: i for i, q in enumerate(qubits)}
    dim = 2 ** len(qubits)
    a = apply_gate(np.eye(dim, dtype=complex), instr_a.gate.matrix, [order[q] for q in instr_a.qubits], len(qubits))
    b = apply_gate(np.eye(dim, dtype=complex), instr_b.gate.matrix, [order[q] for q in instr_b.qubits], len(qubits))
    return float(np.linalg.norm(a @ b - b @ a)) / dim


def dag_compacting(
    circuit: QuantumCircuit,
    block_size: int = 3,
    threshold: int = 4,
    commutation_tolerance: float = 1e-7,
    max_sweeps: int = 3,
) -> QuantumCircuit:
    """Exchange (approximately) commuting adjacent SU(4)s to raise compactness.

    Two neighbouring 2Q gates that share one qubit and commute within
    ``commutation_tolerance`` may be exchanged; the exchange is kept when it
    improves the compactness metric of the subsequent partitioning.
    """
    current = circuit
    best_score = compactness(current, block_size=block_size, threshold=threshold)
    for _ in range(max_sweeps):
        improved = False
        instructions = list(current)
        for index in range(len(instructions) - 1):
            first, second = instructions[index], instructions[index + 1]
            if not (first.is_two_qubit and second.is_two_qubit):
                continue
            shared = set(first.qubits) & set(second.qubits)
            if len(shared) != 1:
                continue
            if _commutator_norm(first, second) > commutation_tolerance:
                continue
            swapped = instructions[:index] + [second, first] + instructions[index + 2 :]
            candidate = QuantumCircuit(current.num_qubits, current.name)
            for instruction in swapped:
                candidate.append(instruction.gate, instruction.qubits)
            score = compactness(candidate, block_size=block_size, threshold=threshold)
            if score > best_score + 1e-12:
                current = candidate
                best_score = score
                improved = True
                break
        if not improved:
            break
    return current


class HierarchicalSynthesisPass(CompilerPass):
    """Two-tier partitioning + conditional approximate synthesis.

    When a :class:`~repro.service.cache.SynthesisCache` is supplied, each
    block's (expensive) numerical re-synthesis outcome — including the
    negative "synthesis did not help" outcome — is memoized by the exact
    bytes of the block unitary plus the solver settings, so identical dense
    blocks across a workload suite are synthesized exactly once.
    """

    name = "hierarchical_synthesis"
    memo_safe = True

    def __init__(
        self,
        block_size: int = 3,
        threshold: int = 4,
        tolerance: float = 1e-6,
        enable_dag_compacting: bool = True,
        synthesizer: Optional[ApproximateSynthesizer] = None,
        max_synthesis_blocks: Optional[int] = None,
        cache: Optional[SynthesisCache] = None,
    ) -> None:
        self.block_size = block_size
        self.threshold = threshold
        self.tolerance = tolerance
        self.enable_dag_compacting = enable_dag_compacting
        self.synthesizer = synthesizer or ApproximateSynthesizer(
            tolerance=tolerance, restarts=2, seed=2026, max_iterations=300
        )
        self.max_synthesis_blocks = max_synthesis_blocks
        self.cache = cache

    def memo_config(self) -> Optional[str]:
        synth = self.synthesizer
        if type(synth) is not ApproximateSynthesizer:
            # A custom synthesizer may hold state we cannot fingerprint;
            # disable memoization rather than risk replaying a wrong result.
            return None
        return (
            f"block_size={self.block_size};threshold={self.threshold};"
            f"tolerance={self.tolerance!r};dag={self.enable_dag_compacting};"
            f"max_blocks={self.max_synthesis_blocks};"
            f"synth={synth.tolerance!r}:{synth.restarts}:{synth.seed}:{synth.max_iterations}"
        )

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, properties: Dict[str, Any]) -> QuantumCircuit:
        fused = consolidate_blocks(circuit, form="unitary")
        if self.enable_dag_compacting:
            fused = dag_compacting(
                fused, block_size=self.block_size, threshold=self.threshold
            )
        blocks, leftovers = partition_into_blocks(fused, block_size=self.block_size)

        emissions: Dict[int, List[Instruction]] = {}
        for position, instruction in leftovers:
            emissions.setdefault(position, []).append(instruction)

        synthesized_count = 0
        for block in blocks:
            replacement = list(block.instructions)
            budget_ok = (
                self.max_synthesis_blocks is None
                or synthesized_count < self.max_synthesis_blocks
            )
            if block.num_two_qubit_gates > self.threshold and len(block.qubits) >= 2 and budget_ok:
                new_instructions = self._resynthesize(block)
                if new_instructions is not None:
                    replacement = new_instructions
                    synthesized_count += 1
            emissions.setdefault(block.start_position, []).extend(replacement)

        result = QuantumCircuit(circuit.num_qubits, circuit.name)
        for position in range(len(fused)):
            for instruction in emissions.get(position, []):
                result.append(instruction.gate, instruction.qubits)
        # Fuse any newly adjacent same-pair gates created by block rewrites.
        return consolidate_blocks(result, form="unitary")

    # ------------------------------------------------------------------
    def _resynthesize(self, block: MultiQubitBlock) -> Optional[List[Instruction]]:
        target = block.unitary()
        original_count = block.num_two_qubit_gates
        num_qubits = len(block.qubits)
        if self.cache is not None:
            synth = self.synthesizer
            key = unitary_fingerprint(
                target,
                "hierarchical_synthesis",
                f"count={original_count}",
                f"tol={self.tolerance}",
                f"synth={synth.tolerance}:{synth.restarts}:{synth.seed}:{synth.max_iterations}",
            )
            local = self.cache.get_or_compute(
                key, lambda: self._synthesize_local(target, num_qubits, original_count)
            )
        else:
            local = self._synthesize_local(target, num_qubits, original_count)
        if local is None:
            return None
        mapping = {local_q: phys for local_q, phys in enumerate(block.qubits)}
        return [instr.remap(mapping) for instr in local]

    def _synthesize_local(
        self, target: np.ndarray, num_qubits: int, original_count: int
    ) -> Optional[List[Instruction]]:
        """Synthesize ``target`` on local qubits; ``None`` when not worthwhile."""
        result = self.synthesizer.synthesize(
            target,
            num_qubits=num_qubits,
            max_blocks=min(original_count - 1, 6),
            min_blocks=min(3, max(original_count - 2, 1)),
        )
        if result is None or result.infidelity > self.tolerance:
            return None
        if result.two_qubit_count >= original_count:
            return None
        return list(result.circuit)
