"""Lowering passes: high-level gates to CCX-level IR and to the CNOT ISA.

``lower_high_level_gates`` expands MCX subroutines into CCX gates (the 3-qubit
IR granularity of the program-aware pass).  ``decompose_to_cnot`` lowers a
circuit all the way to ``{CX, 1Q}`` — the representation consumed by the
CNOT-based baselines and used to characterize the benchmark suite (Table 1).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.passes.base import CompilerPass
from repro.gates.gate import UnitaryGate
from repro.synthesis.mcx import expand_mcx_gates

__all__ = ["lower_high_level_gates", "decompose_to_cnot", "DecomposeToCnotPass"]

#: 1Q gate names that are already in the CNOT-ISA gate set.
_ONE_QUBIT_PASSTHROUGH = {
    "id",
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "t",
    "tdg",
    "sx",
    "rx",
    "ry",
    "rz",
    "p",
    "u3",
}


def lower_high_level_gates(
    circuit: QuantumCircuit, ancillas: Optional[Sequence[int]] = None
) -> QuantumCircuit:
    """Expand MCX gates into CCX gates (CCX-level IR for type-1 programs)."""
    return expand_mcx_gates(circuit, ancillas=ancillas)


def _append_ccx_cnot(circuit: QuantumCircuit, a: int, b: int, t: int) -> None:
    """Standard six-CNOT Toffoli decomposition."""
    circuit.h(t)
    circuit.cx(b, t)
    circuit.tdg(t)
    circuit.cx(a, t)
    circuit.t(t)
    circuit.cx(b, t)
    circuit.tdg(t)
    circuit.cx(a, t)
    circuit.t(b)
    circuit.t(t)
    circuit.h(t)
    circuit.cx(a, b)
    circuit.t(a)
    circuit.tdg(b)
    circuit.cx(a, b)


def decompose_to_cnot(circuit: QuantumCircuit) -> QuantumCircuit:
    """Lower a circuit to the conventional ``{CX, 1Q}`` ISA.

    Multi-controlled gates are expanded first; every remaining non-CX
    two-qubit gate (including fused SU(4) blocks) is re-synthesized with the
    minimal number of CNOTs.
    """
    from repro.synthesis.two_qubit import two_qubit_to_cnot_circuit

    lowered = lower_high_level_gates(circuit)
    result = QuantumCircuit(lowered.num_qubits, circuit.name)
    for instruction in lowered:
        gate = instruction.gate
        qubits = instruction.qubits
        if gate.num_qubits == 1:
            if gate.name in _ONE_QUBIT_PASSTHROUGH or isinstance(gate, UnitaryGate):
                result.append(gate, qubits)
            else:
                result.append(gate, qubits)
            continue
        if gate.name == "cx":
            result.append(gate, qubits)
            continue
        if gate.name == "ccx":
            _append_ccx_cnot(result, *qubits)
            continue
        if gate.name == "ccz":
            result.h(qubits[2])
            _append_ccx_cnot(result, *qubits)
            result.h(qubits[2])
            continue
        if gate.name == "cswap":
            control, ta, tb = qubits
            result.cx(tb, ta)
            _append_ccx_cnot(result, control, ta, tb)
            result.cx(tb, ta)
            continue
        if gate.num_qubits == 2:
            synthesized = two_qubit_to_cnot_circuit(gate.matrix, qubits=(0, 1))
            result.compose(synthesized, qubits=list(qubits))
            continue
        raise ValueError(
            f"cannot lower gate {gate.name!r} acting on {gate.num_qubits} qubits to the CNOT ISA"
        )
    return result


class DecomposeToCnotPass(CompilerPass):
    """Pass wrapper around :func:`decompose_to_cnot`."""

    name = "decompose_to_cnot"
    # Stateless and configuration-free: output depends only on the input
    # circuit, so the inherited empty memo_config() is exact.
    memo_safe = True

    def run(self, circuit: QuantumCircuit, properties: Dict[str, Any]) -> QuantumCircuit:
        return decompose_to_cnot(circuit)
