"""Finalization: express every fused SU(4) block in the ``{Can, U3}`` ISA.

This is the last logical-level pass of the Regulus pipeline: opaque ``su4``
unitary blocks (produced by fusion, template assembly, hierarchical synthesis
or routing absorption) are re-synthesized as one canonical gate plus
single-qubit corrections, and trivial (identity-class) blocks are dropped.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.passes.base import CompilerPass
from repro.gates.gate import UnitaryGate
from repro.synthesis.two_qubit import two_qubit_to_can_circuit

__all__ = ["FinalizeToCanPass"]


class FinalizeToCanPass(CompilerPass):
    """Convert fused unitary blocks to ``{Can, U3}`` and drop trivial gates."""

    name = "finalize_to_can"

    def __init__(self, merge_single_qubit: bool = True) -> None:
        self.merge_single_qubit = merge_single_qubit

    def run(self, circuit: QuantumCircuit, properties: Dict[str, Any]) -> QuantumCircuit:
        result = QuantumCircuit(circuit.num_qubits, circuit.name)
        for instruction in circuit:
            gate = instruction.gate
            if gate.num_qubits == 2 and (isinstance(gate, UnitaryGate) or gate.name != "can"):
                synthesized = two_qubit_to_can_circuit(gate.matrix, qubits=(0, 1))
                mapping = {0: instruction.qubits[0], 1: instruction.qubits[1]}
                for sub in synthesized:
                    remapped = sub.remap(mapping)
                    result.append(remapped.gate, remapped.qubits)
            else:
                result.append(gate, instruction.qubits)
        if self.merge_single_qubit:
            from repro.compiler.passes.peephole import _merge_one_qubit_runs

            result = _merge_one_qubit_runs(result)
        return result
