"""Finalization: express every fused SU(4) block in the ``{Can, U3}`` ISA.

This is the last logical-level pass of the Regulus pipeline: opaque ``su4``
unitary blocks (produced by fusion, template assembly, hierarchical synthesis
or routing absorption) are re-synthesized as one canonical gate plus
single-qubit corrections, and trivial (identity-class) blocks are dropped.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.compiler.passes.base import CompilerPass
from repro.gates.gate import UnitaryGate
from repro.ir import CircuitIR
from repro.synthesis.two_qubit import two_qubit_to_can_circuits_batch

__all__ = ["FinalizeToCanPass"]

#: Memo namespace version for the per-gate ``{Can, U3}`` expansion.  Bumped
#: when the synthesis arithmetic changes (v2: batched KAK numerics) so stores
#: written by older code are never replayed against the new computation.
_MEMO_CONTEXT = "finalize-can/2"


class FinalizeToCanPass(CompilerPass):
    """Convert fused unitary blocks to ``{Can, U3}`` and drop trivial gates.

    IR-native: each fused block node expands in place via ``replace_block``,
    then the single-qubit merge runs as the shared IR kernel.  The
    circuit-level :meth:`run` entry keeps working through the base-class
    adapter.

    All blocks awaiting synthesis are collected first and decomposed in one
    batched KAK call (:func:`two_qubit_to_can_circuits_batch`) — vectorized
    linalg over the exact-bytes-deduplicated stack.  Batch items are
    composition-independent, so it does not matter *which* blocks end up in
    the batch: a from-scratch compile (everything) and an incremental replay
    (memo misses only) synthesize any given block bit-identically.

    With a memo store attached, each 2Q decomposition is additionally
    memoized per gate content: the ``{Can, U3}`` expansion of a block is a
    pure function of its unitary, so an edited program replays every
    untouched block's (expensive KAK) decomposition from the store.
    """

    name = "finalize_to_can"
    consumes = "ir"
    produces = "ir"
    memo_safe = True

    def __init__(self, merge_single_qubit: bool = True, memo: Optional[Any] = None) -> None:
        self.merge_single_qubit = merge_single_qubit
        self.memo = memo

    def memo_config(self) -> Optional[str]:
        return f"merge={self.merge_single_qubit}"

    def run_ir(self, ir: CircuitIR, properties: Dict[str, Any]) -> CircuitIR:
        memo = self.memo
        if memo is not None:
            from repro.incremental import MISS, gate_region_key

        pending: List[Tuple[int, Any, Any, Optional[str]]] = []
        for node in list(ir.nodes()):
            instruction = ir.instruction(node)
            gate = instruction.gate
            if gate.num_qubits != 2 or (not isinstance(gate, UnitaryGate) and gate.name == "can"):
                continue
            if memo is not None:
                key = gate_region_key(gate, _MEMO_CONTEXT)
                cached = memo.lookup("region", key)
                if cached is not MISS:
                    self._replace(ir, node, instruction, cached)
                    continue
            else:
                key = None
            pending.append((node, instruction, gate, key))

        if pending:
            circuits = two_qubit_to_can_circuits_batch(
                [gate.matrix for _, _, gate, _ in pending], qubits=(0, 1)
            )
            for (node, instruction, gate, key), circuit in zip(pending, circuits):
                synthesized = list(circuit)
                if memo is not None:
                    memo.store("region", key, synthesized)
                self._replace(ir, node, instruction, synthesized)

        if self.merge_single_qubit:
            from repro.compiler.passes.peephole import _merge_one_qubit_runs_ir

            _merge_one_qubit_runs_ir(ir, memo=memo)
        return ir

    @staticmethod
    def _replace(ir: CircuitIR, node: int, instruction, synthesized) -> None:
        """Splice the local-wire ``{Can, U3}`` expansion over ``node``."""
        mapping = {0: instruction.qubits[0], 1: instruction.qubits[1]}
        ir.replace_block([node], [sub.remap(mapping) for sub in synthesized])
