"""Finalization: express every fused SU(4) block in the ``{Can, U3}`` ISA.

This is the last logical-level pass of the Regulus pipeline: opaque ``su4``
unitary blocks (produced by fusion, template assembly, hierarchical synthesis
or routing absorption) are re-synthesized as one canonical gate plus
single-qubit corrections, and trivial (identity-class) blocks are dropped.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.compiler.passes.base import CompilerPass
from repro.gates.gate import UnitaryGate
from repro.ir import CircuitIR
from repro.synthesis.two_qubit import two_qubit_to_can_circuit

__all__ = ["FinalizeToCanPass"]


class FinalizeToCanPass(CompilerPass):
    """Convert fused unitary blocks to ``{Can, U3}`` and drop trivial gates.

    IR-native: each fused block node expands in place via ``replace_block``,
    then the single-qubit merge runs as the shared IR kernel.  The
    circuit-level :meth:`run` entry keeps working through the base-class
    adapter.

    With a memo store attached, each 2Q decomposition is additionally
    memoized per gate content: the ``{Can, U3}`` expansion of a block is a
    pure function of its unitary, so an edited program replays every
    untouched block's (expensive KAK) decomposition from the store.
    """

    name = "finalize_to_can"
    consumes = "ir"
    produces = "ir"
    memo_safe = True

    def __init__(self, merge_single_qubit: bool = True, memo: Optional[Any] = None) -> None:
        self.merge_single_qubit = merge_single_qubit
        self.memo = memo

    def memo_config(self) -> Optional[str]:
        return f"merge={self.merge_single_qubit}"

    def run_ir(self, ir: CircuitIR, properties: Dict[str, Any]) -> CircuitIR:
        memo = self.memo
        for node in list(ir.nodes()):
            instruction = ir.instruction(node)
            gate = instruction.gate
            if gate.num_qubits == 2 and (isinstance(gate, UnitaryGate) or gate.name != "can"):
                synthesized = self._synthesize(gate, memo)
                mapping = {0: instruction.qubits[0], 1: instruction.qubits[1]}
                ir.replace_block([node], [sub.remap(mapping) for sub in synthesized])
        if self.merge_single_qubit:
            from repro.compiler.passes.peephole import _merge_one_qubit_runs_ir

            _merge_one_qubit_runs_ir(ir, memo=memo)
        return ir

    @staticmethod
    def _synthesize(gate, memo):
        """``{Can, U3}`` instructions for ``gate`` on local wires ``(0, 1)``."""
        if memo is None:
            return list(two_qubit_to_can_circuit(gate.matrix, qubits=(0, 1)))
        from repro.incremental import MISS, gate_region_key

        key = gate_region_key(gate, "finalize-can")
        cached = memo.lookup("region", key)
        if cached is not MISS:
            return cached
        synthesized = list(two_qubit_to_can_circuit(gate.matrix, qubits=(0, 1)))
        memo.store("region", key, synthesized)
        return synthesized
