"""Device connectivity graphs (coupling maps) and distance matrices."""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

import networkx as nx
import numpy as np

__all__ = ["CouplingMap"]


class CouplingMap:
    """Undirected device connectivity graph.

    Provides the topologies used in the evaluation: 1D chains and 2D grids
    (Figure 12), plus all-to-all connectivity for logical-level comparisons.
    """

    def __init__(self, edges: Iterable[Tuple[int, int]], num_qubits: int = None, name: str = "custom") -> None:
        self.graph = nx.Graph()
        edges = [(int(a), int(b)) for a, b in edges]
        if num_qubits is None:
            num_qubits = max((max(edge) for edge in edges), default=-1) + 1
        self.num_qubits = int(num_qubits)
        self.graph.add_nodes_from(range(self.num_qubits))
        self.graph.add_edges_from(edges)
        self.name = name
        # Lazily built, shared per map instance: every consumer (routing,
        # Target duration models, perf harness) sees the same arrays instead
        # of re-deriving them per call.
        self._distance: np.ndarray = None
        self._adjacency: np.ndarray = None
        self._neighbor_lists: List[List[int]] = None
        self._neighbor_sets: List[frozenset] = None
        self._edge_tuples: List[Tuple[int, int]] = None
        self._edge_array: np.ndarray = None
        self._incident_edge_ids: List[List[int]] = None
        self._incident_edge_csr: Tuple[np.ndarray, np.ndarray] = None

    # -- constructors --------------------------------------------------------
    @classmethod
    def line(cls, num_qubits: int) -> "CouplingMap":
        """1D chain ``q0 - q1 - ... - q_{n-1}``."""
        edges = [(i, i + 1) for i in range(num_qubits - 1)]
        return cls(edges, num_qubits=num_qubits, name="line")

    @classmethod
    def grid(cls, rows: int, columns: int) -> "CouplingMap":
        """2D grid of ``rows x columns`` qubits."""
        edges = []
        for r in range(rows):
            for c in range(columns):
                idx = r * columns + c
                if c + 1 < columns:
                    edges.append((idx, idx + 1))
                if r + 1 < rows:
                    edges.append((idx, idx + columns))
        return cls(edges, num_qubits=rows * columns, name="grid")

    @classmethod
    def grid_for(cls, num_qubits: int) -> "CouplingMap":
        """Smallest near-square grid with at least ``num_qubits`` qubits."""
        rows = max(1, int(math.floor(math.sqrt(num_qubits))))
        columns = int(math.ceil(num_qubits / rows))
        return cls.grid(rows, columns)

    @classmethod
    def all_to_all(cls, num_qubits: int) -> "CouplingMap":
        """Fully connected topology (logical-level compilation)."""
        edges = [(i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)]
        return cls(edges, num_qubits=num_qubits, name="all-to-all")

    @classmethod
    def heavy_hex(cls, rows: int = 1, columns: int = 1) -> "CouplingMap":
        """IBM-style heavy-hex lattice of ``rows x columns`` hexagonal cells.

        The heavy-hex graph is the hexagonal lattice with every edge
        subdivided once, so qubits sit on both the vertices and the edges of
        the hexagons and the maximum degree is 3.
        """
        lattice = nx.hexagonal_lattice_graph(rows, columns)
        vertices = sorted(lattice.nodes())
        index = {node: i for i, node in enumerate(vertices)}
        edges: List[Tuple[int, int]] = []
        next_qubit = len(vertices)
        for u, v in sorted(tuple(sorted(edge)) for edge in lattice.edges()):
            midpoint = next_qubit
            next_qubit += 1
            edges.append((index[u], midpoint))
            edges.append((midpoint, index[v]))
        return cls(edges, num_qubits=next_qubit, name="heavy-hex")

    @classmethod
    def heavy_hex_for(cls, num_qubits: int) -> "CouplingMap":
        """Smallest square heavy-hex lattice with at least ``num_qubits`` qubits."""
        cells = 1
        while True:
            lattice = cls.heavy_hex(cells, cells)
            if lattice.num_qubits >= num_qubits:
                return lattice
            cells += 1

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload (used by :class:`repro.target.target.Target`)."""
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "edges": [list(edge) for edge in self.edges],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CouplingMap":
        """Inverse of :meth:`to_dict`."""
        return cls(
            [tuple(edge) for edge in payload["edges"]],
            num_qubits=payload.get("num_qubits"),
            name=str(payload.get("name", "custom")),
        )

    # -- queries ---------------------------------------------------------------
    @property
    def edges(self) -> List[Tuple[int, int]]:
        """List of undirected edges."""
        return [tuple(sorted(edge)) for edge in self.graph.edges]

    def is_connected(self, qubit_a: int, qubit_b: int) -> bool:
        """True when the two physical qubits are adjacent."""
        return self.graph.has_edge(qubit_a, qubit_b)

    def adjacency_matrix(self) -> np.ndarray:
        """Boolean adjacency matrix (cached, read-only)."""
        if self._adjacency is None:
            matrix = np.zeros((self.num_qubits, self.num_qubits), dtype=bool)
            for a, b in self.graph.edges:
                matrix[a, b] = True
                matrix[b, a] = True
            matrix.setflags(write=False)
            self._adjacency = matrix
        return self._adjacency

    def neighbor_lists(self) -> List[List[int]]:
        """Sorted neighbour list per physical qubit (cached).

        ``neighbor_lists()[q]`` equals ``neighbors(q)``; the precomputed form
        avoids a networkx adjacency walk + sort per hot-path query.
        """
        if self._neighbor_lists is None:
            lists: List[List[int]] = [[] for _ in range(self.num_qubits)]
            for a, b in self.graph.edges:
                lists[a].append(b)
                lists[b].append(a)
            for entries in lists:
                entries.sort()
            self._neighbor_lists = lists
        return self._neighbor_lists

    def edge_tuples(self) -> List[Tuple[int, int]]:
        """Sorted list of undirected edges as ``(low, high)`` tuples (cached).

        The position of an edge in this list is its *edge id*; ids are
        assigned in lexicographic edge order, so a sorted list of ids maps
        back to a lexicographically sorted list of edges.
        """
        if self._edge_tuples is None:
            self._edge_tuples = sorted(tuple(sorted(edge)) for edge in self.graph.edges)
        return self._edge_tuples

    def edge_array(self) -> np.ndarray:
        """``(num_edges, 2)`` integer array of :meth:`edge_tuples` (cached)."""
        if self._edge_array is None:
            edges = self.edge_tuples()
            array = np.asarray(edges, dtype=np.int64) if edges else np.empty((0, 2), dtype=np.int64)
            array.setflags(write=False)
            self._edge_array = array
        return self._edge_array

    def incident_edge_ids(self) -> List[List[int]]:
        """Edge ids incident to each physical qubit (cached, ids ascending)."""
        if self._incident_edge_ids is None:
            incident: List[List[int]] = [[] for _ in range(self.num_qubits)]
            for edge_id, (a, b) in enumerate(self.edge_tuples()):
                incident[a].append(edge_id)
                incident[b].append(edge_id)
            self._incident_edge_ids = incident
        return self._incident_edge_ids

    def incident_edge_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`incident_edge_ids` in CSR form (cached, read-only int64).

        Returns ``(indptr, indices)`` with the edge ids incident to physical
        qubit ``p`` stored (ascending) at ``indices[indptr[p]:indptr[p+1]]``
        — the flat layout consumed by the native scoring kernel.
        """
        if self._incident_edge_csr is None:
            incident = self.incident_edge_ids()
            indptr = np.zeros(self.num_qubits + 1, dtype=np.int64)
            for qubit, entries in enumerate(incident):
                indptr[qubit + 1] = indptr[qubit] + len(entries)
            indices = np.asarray(
                [edge_id for entries in incident for edge_id in entries],
                dtype=np.int64,
            )
            if indices.size == 0:
                indices = np.empty(0, dtype=np.int64)
            indptr.setflags(write=False)
            indices.setflags(write=False)
            self._incident_edge_csr = (indptr, indices)
        return self._incident_edge_csr

    def neighbor_sets(self) -> List[frozenset]:
        """Neighbour set per physical qubit (cached; O(1) adjacency tests)."""
        if self._neighbor_sets is None:
            self._neighbor_sets = [frozenset(entries) for entries in self.neighbor_lists()]
        return self._neighbor_sets

    def neighbors(self, qubit: int) -> List[int]:
        """Neighbouring physical qubits (sorted; fresh list per call)."""
        return list(self.neighbor_lists()[qubit])

    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path hop-count matrix (cached, read-only).

        Computed by a vectorized breadth-first search over the adjacency
        matrix (one frontier expansion per distance level, all sources at
        once) and stored as a compact ``int32`` array — hop counts are small
        integers, so downstream heuristic sums stay exact.  Unreachable
        pairs are stored as ``-1``; :meth:`distance` reports them as ``inf``.
        """
        if self._distance is None:
            n = self.num_qubits
            # int64 accumulation: a uint8 matmul would overflow (and report
            # false unreachability) as soon as a frontier row has a multiple
            # of 256 neighbours at the same level.
            adjacency = self.adjacency_matrix().astype(np.int64)
            matrix = np.full((n, n), -1, dtype=np.int32)
            np.fill_diagonal(matrix, 0)
            visited = np.eye(n, dtype=bool)
            frontier = np.eye(n, dtype=bool)
            level = 0
            while frontier.any():
                level += 1
                frontier = ((frontier.astype(np.int64) @ adjacency) > 0) & ~visited
                matrix[frontier] = level
                visited |= frontier
            matrix.setflags(write=False)
            self._distance = matrix
        return self._distance

    def distance(self, qubit_a: int, qubit_b: int) -> float:
        """Shortest-path distance between two physical qubits (inf if unreachable)."""
        hops = int(self.distance_matrix()[qubit_a, qubit_b])
        return float(hops) if hops >= 0 else math.inf

    def __repr__(self) -> str:
        return f"CouplingMap({self.name}, qubits={self.num_qubits}, edges={len(self.edges)})"
