"""Device connectivity graphs (coupling maps) and distance matrices."""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

import networkx as nx
import numpy as np

__all__ = ["CouplingMap"]


class CouplingMap:
    """Undirected device connectivity graph.

    Provides the topologies used in the evaluation: 1D chains and 2D grids
    (Figure 12), plus all-to-all connectivity for logical-level comparisons.
    """

    def __init__(self, edges: Iterable[Tuple[int, int]], num_qubits: int = None, name: str = "custom") -> None:
        self.graph = nx.Graph()
        edges = [(int(a), int(b)) for a, b in edges]
        if num_qubits is None:
            num_qubits = max((max(edge) for edge in edges), default=-1) + 1
        self.num_qubits = int(num_qubits)
        self.graph.add_nodes_from(range(self.num_qubits))
        self.graph.add_edges_from(edges)
        self.name = name
        self._distance: np.ndarray = None

    # -- constructors --------------------------------------------------------
    @classmethod
    def line(cls, num_qubits: int) -> "CouplingMap":
        """1D chain ``q0 - q1 - ... - q_{n-1}``."""
        edges = [(i, i + 1) for i in range(num_qubits - 1)]
        return cls(edges, num_qubits=num_qubits, name="line")

    @classmethod
    def grid(cls, rows: int, columns: int) -> "CouplingMap":
        """2D grid of ``rows x columns`` qubits."""
        edges = []
        for r in range(rows):
            for c in range(columns):
                idx = r * columns + c
                if c + 1 < columns:
                    edges.append((idx, idx + 1))
                if r + 1 < rows:
                    edges.append((idx, idx + columns))
        return cls(edges, num_qubits=rows * columns, name="grid")

    @classmethod
    def grid_for(cls, num_qubits: int) -> "CouplingMap":
        """Smallest near-square grid with at least ``num_qubits`` qubits."""
        rows = max(1, int(math.floor(math.sqrt(num_qubits))))
        columns = int(math.ceil(num_qubits / rows))
        return cls.grid(rows, columns)

    @classmethod
    def all_to_all(cls, num_qubits: int) -> "CouplingMap":
        """Fully connected topology (logical-level compilation)."""
        edges = [(i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)]
        return cls(edges, num_qubits=num_qubits, name="all-to-all")

    @classmethod
    def heavy_hex(cls, rows: int = 1, columns: int = 1) -> "CouplingMap":
        """IBM-style heavy-hex lattice of ``rows x columns`` hexagonal cells.

        The heavy-hex graph is the hexagonal lattice with every edge
        subdivided once, so qubits sit on both the vertices and the edges of
        the hexagons and the maximum degree is 3.
        """
        lattice = nx.hexagonal_lattice_graph(rows, columns)
        vertices = sorted(lattice.nodes())
        index = {node: i for i, node in enumerate(vertices)}
        edges: List[Tuple[int, int]] = []
        next_qubit = len(vertices)
        for u, v in sorted(tuple(sorted(edge)) for edge in lattice.edges()):
            midpoint = next_qubit
            next_qubit += 1
            edges.append((index[u], midpoint))
            edges.append((midpoint, index[v]))
        return cls(edges, num_qubits=next_qubit, name="heavy-hex")

    @classmethod
    def heavy_hex_for(cls, num_qubits: int) -> "CouplingMap":
        """Smallest square heavy-hex lattice with at least ``num_qubits`` qubits."""
        cells = 1
        while True:
            lattice = cls.heavy_hex(cells, cells)
            if lattice.num_qubits >= num_qubits:
                return lattice
            cells += 1

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload (used by :class:`repro.target.target.Target`)."""
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "edges": [list(edge) for edge in self.edges],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CouplingMap":
        """Inverse of :meth:`to_dict`."""
        return cls(
            [tuple(edge) for edge in payload["edges"]],
            num_qubits=payload.get("num_qubits"),
            name=str(payload.get("name", "custom")),
        )

    # -- queries ---------------------------------------------------------------
    @property
    def edges(self) -> List[Tuple[int, int]]:
        """List of undirected edges."""
        return [tuple(sorted(edge)) for edge in self.graph.edges]

    def is_connected(self, qubit_a: int, qubit_b: int) -> bool:
        """True when the two physical qubits are adjacent."""
        return self.graph.has_edge(qubit_a, qubit_b)

    def neighbors(self, qubit: int) -> List[int]:
        """Neighbouring physical qubits."""
        return sorted(self.graph.neighbors(qubit))

    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distance matrix (cached)."""
        if self._distance is None:
            matrix = np.full((self.num_qubits, self.num_qubits), np.inf)
            for source, lengths in nx.all_pairs_shortest_path_length(self.graph):
                for target, dist in lengths.items():
                    matrix[source, target] = dist
            self._distance = matrix
        return self._distance

    def distance(self, qubit_a: int, qubit_b: int) -> float:
        """Shortest-path distance between two physical qubits."""
        return float(self.distance_matrix()[qubit_a, qubit_b])

    def __repr__(self) -> str:
        return f"CouplingMap({self.name}, qubits={self.num_qubits}, edges={len(self.edges)})"
