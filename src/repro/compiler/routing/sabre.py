"""SABRE qubit routing and the SU(4)-aware mirroring-SABRE variant.

SABRE (Li, Ding, Xie 2019) routes a circuit onto a constrained topology by
repeatedly executing the gates of the current *front layer* whose qubits are
adjacent, and otherwise inserting the SWAP that minimizes a distance-based
heuristic with a lookahead term.

Mirroring-SABRE (Section 5.3.2) additionally tracks the *last mapped layer*:
SWAP candidates that can be absorbed into the most recently emitted SU(4)
gate on the same physical pair (``SU(4) . SWAP`` is still a single SU(4)) are
preferred whenever they also lower the heuristic cost, eliminating the 2Q
overhead of those SWAPs entirely.

This is the array-native fast path co-designed with the access pattern of
the algorithm:

* the dependency DAG is a CSR :class:`~repro.circuits.depgraph.DependencyGraph`
  consumed as flat arrays (plus plain-list mirrors for the scalar loop);
* the executable front is rebuilt per pass (no ``list.remove`` rescans) and
  adjacency checks hit precomputed neighbour sets;
* the SWAP heuristic is evaluated for *all* candidates at once: one layout
  gather over the concatenated front+lookahead qubit array, one broadcast
  trial-position computation and vectorized integer distance sums;
* the lookahead (extended) set is only recomputed after a gate executes —
  consecutive stalls reuse it;
* the stall scoring itself (candidate collection + cost evaluation) runs
  behind the :mod:`repro.kernels` backend interface — the compiled kernel
  when available, the reference numpy arithmetic otherwise.  Candidate
  *selection* (argmin / stable argsort + absorption) stays here, so the
  tie-breaking semantics are backend-independent.

Because all distances are small integers the vectorized sums are exact, and
the routed output is **bit-identical** to the frozen pre-optimization
baseline in :mod:`repro.compiler.routing.sabre_reference` (enforced by the
regression tests and re-checked by ``repro perf``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.depgraph import DependencyGraph
from repro.circuits.instruction import Instruction
from repro.compiler.routing.coupling_map import CouplingMap
from repro.gates import standard
from repro.gates.gate import UnitaryGate
from repro.kernels import make_sabre_scorer

__all__ = ["RoutingResult", "SabreRouter"]

_SWAP_MATRIX = standard.swap_gate().matrix


@dataclass
class RoutingResult:
    """Output of a routing run."""

    circuit: QuantumCircuit
    initial_layout: List[int]
    final_layout: List[int]
    inserted_swaps: int
    absorbed_swaps: int

    @property
    def swap_overhead(self) -> int:
        """SWAP gates that actually cost a two-qubit gate."""
        return self.inserted_swaps


class SabreRouter:
    """SABRE routing with optional SU(4)-aware SWAP absorption."""

    def __init__(
        self,
        coupling_map: CouplingMap,
        mirroring: bool = False,
        lookahead_size: int = 20,
        lookahead_weight: float = 0.5,
        decay_increment: float = 0.001,
        decay_reset_interval: int = 5,
        seed: int = 0,
        noise_model=None,
    ) -> None:
        self.coupling_map = coupling_map
        self.mirroring = mirroring
        self.lookahead_size = lookahead_size
        self.lookahead_weight = lookahead_weight
        self.decay_increment = decay_increment
        self.decay_reset_interval = decay_reset_interval
        self.seed = seed
        #: Optional :class:`~repro.compiler.routing.noise.NoiseRoutingModel`:
        #: calibration-weighted distances + per-edge SWAP surcharge.  ``None``
        #: keeps the historical distance-only scoring bit-for-bit.
        self.noise_model = noise_model

    # ------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        initial_layout: Optional[Sequence[int]] = None,
    ) -> RoutingResult:
        """Route ``circuit`` onto the coupling map.

        ``initial_layout[logical] = physical``; defaults to the identity.
        The routed circuit acts on physical wires.
        """
        graph = DependencyGraph.from_circuit(circuit)
        return self.run_graph(graph, initial_layout=initial_layout, name=circuit.name)

    def run_graph(
        self,
        graph: DependencyGraph,
        initial_layout: Optional[Sequence[int]] = None,
        name: str = "circuit",
    ) -> RoutingResult:
        """Route a prebuilt dependency graph onto the coupling map.

        This is the entry point used by the IR pipeline: the
        :class:`~repro.ir.CircuitIR` hands over its cached
        :class:`DependencyGraph` directly, so routing never re-derives the
        dependency structure from a flat gate list.
        """
        for instruction in graph.instructions:
            if len(instruction.qubits) > 2:
                raise ValueError("routing expects a circuit with only 1Q/2Q gates")
        num_physical = self.coupling_map.num_qubits
        if graph.num_qubits > num_physical:
            raise ValueError("circuit does not fit on the coupling map")
        if initial_layout is None:
            layout_list = list(range(graph.num_qubits))
        else:
            layout_list = [int(q) for q in initial_layout]
            for physical in layout_list:
                if not 0 <= physical < num_physical:
                    raise ValueError(
                        f"qubit {physical} out of range for a {num_physical}-qubit circuit"
                    )
        # ``layout`` (numpy) feeds the vectorized heuristic; ``layout_list``
        # (plain ints) feeds the scalar execute loop.  Both are updated on
        # every SWAP.
        layout = np.asarray(layout_list, dtype=np.int64)
        phys_to_logical = [-1] * num_physical
        for logical, physical in enumerate(layout_list):
            phys_to_logical[physical] = logical

        neighbor_sets = self.coupling_map.neighbor_sets()
        edge_tuples = self.coupling_map.edge_tuples()
        score_stall = make_sabre_scorer(self.coupling_map, noise=self.noise_model)

        instructions = graph.instructions
        succ_ptr = graph.succ_indptr.tolist()
        succ = graph.succ_indices.tolist()
        indegree = graph.indegree_vector().tolist()
        front: List[int] = graph.front_layer()

        # Per-node qubit arrays/lists for the heuristic and execute loops.
        arity1: List[bool] = []
        q0_list: List[int] = []
        q1_list: List[int] = []
        for instruction in instructions:
            qubits = instruction.qubits
            q0_list.append(qubits[0])
            if len(qubits) == 2:
                q1_list.append(qubits[1])
                arity1.append(False)
            else:
                q1_list.append(qubits[0])
                arity1.append(True)
        node_q0 = np.asarray(q0_list, dtype=np.int64) if q0_list else np.empty(0, dtype=np.int64)
        node_q1 = np.asarray(q1_list, dtype=np.int64) if q1_list else np.empty(0, dtype=np.int64)

        output = QuantumCircuit(num_physical, name)
        out_list = output.instructions
        decay = np.ones(num_physical)
        lookahead_weight = self.lookahead_weight
        decay_increment = self.decay_increment
        decay_reset_interval = self.decay_reset_interval
        mirroring = self.mirroring
        inserted_swaps = 0
        absorbed_swaps = 0
        swaps_since_reset = 0
        # Last emitted 2Q gate per physical pair and the last output position
        # touching each physical qubit (for SWAP absorption).
        last_gate_on_pair: Dict[Tuple[int, int], int] = {}
        last_touch: Dict[int, int] = {}

        # Stall-time arrays, reused across consecutive SWAP decisions while
        # no gate executes in between (the front — and therefore the
        # lookahead set — only changes when a gate is emitted).  The front
        # and lookahead qubit pairs are concatenated into one flat logical
        # array ``(q0_0..q0_{P-1}, q1_0..q1_{P-1})`` so each stall needs a
        # single layout gather and a single trial-position computation.
        pair_qubits: Optional[np.ndarray] = None  # (2P,) logical qubits
        num_front = 0  # F: leading pairs from the front layer
        num_ext = 0  # E: trailing pairs from the lookahead set
        front_dirty = True

        max_steps = 50 * (graph.num_nodes + 10) * max(1, num_physical)
        steps = 0
        while front:
            steps += 1
            if steps > max_steps:
                raise RuntimeError("SABRE routing failed to converge (step limit exceeded)")
            # Execute everything currently executable.  Each pass rebuilds
            # the front (survivors keep their order, newly released nodes
            # append), replacing the historical O(front) list.remove scans.
            while True:
                progressed = False
                survivors: List[int] = []
                released: List[int] = []
                for node in front:
                    p0 = layout_list[q0_list[node]]
                    if arity1[node]:
                        physical: Tuple[int, ...] = (p0,)
                    else:
                        p1 = layout_list[q1_list[node]]
                        if p1 not in neighbor_sets[p0]:
                            survivors.append(node)
                            continue
                        physical = (p0, p1)
                        pair = (p0, p1) if p0 < p1 else (p1, p0)
                    out_list.append(Instruction.unchecked(instructions[node].gate, physical))
                    position = len(out_list) - 1
                    if len(physical) == 2:
                        last_gate_on_pair[pair] = position
                        last_touch[p1] = position
                    last_touch[p0] = position
                    for index in range(succ_ptr[node], succ_ptr[node + 1]):
                        successor = succ[index]
                        remaining = indegree[successor] - 1
                        indegree[successor] = remaining
                        if remaining == 0:
                            released.append(successor)
                    progressed = True
                    front_dirty = True
                front = survivors + released
                if not progressed or not front:
                    break
            if not front:
                break

            # No executable gate: choose a SWAP.
            if front_dirty:
                # At a stall every front node is a blocked 2Q gate (1Q gates
                # always execute), so the front *is* the 2Q front.
                ext_nodes = self._extended_nodes(front, succ_ptr, succ, arity1, len(instructions))
                num_front = len(front)
                num_ext = len(ext_nodes)
                nodes = front + ext_nodes
                pair_qubits = np.concatenate((node_q0[nodes], node_q1[nodes]))
                front_dirty = False

            # Candidate SWAPs = coupling edges incident to a front physical
            # qubit, as sorted edge *ids* (edge ids are assigned in
            # lexicographic edge order, so sorted ids == the reference's
            # lexicographically sorted edge list).  Collection and the
            # distance/decay cost arithmetic run on the selected kernels
            # backend; both backends are bit-identical (exact integer sums,
            # same IEEE-754 operation order).
            ids, costs, base_cost = score_stall(
                layout, pair_qubits, num_front, num_ext, lookahead_weight, decay
            )
            if not ids:
                raise RuntimeError("no SWAP candidates found; is the coupling map connected?")

            chosen: Optional[Tuple[int, int]] = None
            absorb = False
            if mirroring:
                # Prefer candidates absorbable by the last mapped layer that
                # also improve on the pre-SWAP heuristic cost.  Candidates
                # are visited in (cost, edge) order — the stable argsort over
                # the lexicographically sorted candidate list reproduces the
                # reference tie-breaking exactly.
                order = np.argsort(costs, kind="stable").tolist()
                cost_list = costs.tolist()
                pair_get = last_gate_on_pair.get
                touch_get = last_touch.get
                for index in order:
                    if not cost_list[index] < base_cost:
                        break
                    edge = edge_tuples[ids[index]]
                    position = pair_get(edge)
                    if (
                        position is not None
                        and touch_get(edge[0], -1) <= position
                        and touch_get(edge[1], -1) <= position
                    ):
                        chosen = edge
                        absorb = True
                        break
                if chosen is None:
                    chosen = edge_tuples[ids[order[0]]]
            else:
                chosen = edge_tuples[ids[int(np.argmin(costs))]]

            if absorb:
                position = last_gate_on_pair[chosen]
                previous = out_list[position]
                merged_matrix = _SWAP_MATRIX @ previous.gate.matrix
                out_list[position] = Instruction(
                    UnitaryGate(merged_matrix, label="su4"), previous.qubits
                )
                absorbed_swaps += 1
            else:
                out_list.append(Instruction.unchecked(standard.swap_gate(), chosen))
                position = len(out_list) - 1
                last_gate_on_pair[chosen] = position
                last_touch[chosen[0]] = position
                last_touch[chosen[1]] = position
                inserted_swaps += 1
            swapped_a, swapped_b = chosen
            logical_a = phys_to_logical[swapped_a]
            logical_b = phys_to_logical[swapped_b]
            if logical_a >= 0:
                layout_list[logical_a] = swapped_b
                layout[logical_a] = swapped_b
            if logical_b >= 0:
                layout_list[logical_b] = swapped_a
                layout[logical_b] = swapped_a
            phys_to_logical[swapped_a] = logical_b
            phys_to_logical[swapped_b] = logical_a
            decay[swapped_a] += decay_increment
            decay[swapped_b] += decay_increment
            swaps_since_reset += 1
            if swaps_since_reset >= decay_reset_interval:
                decay[:] = 1.0
                swaps_since_reset = 0

        return RoutingResult(
            circuit=output,
            initial_layout=(
                list(initial_layout) if initial_layout is not None else list(range(graph.num_qubits))
            ),
            final_layout=layout_list,
            inserted_swaps=inserted_swaps,
            absorbed_swaps=absorbed_swaps,
        )

    # ------------------------------------------------------------------
    def _extended_nodes(
        self,
        front: Sequence[int],
        succ_ptr: Sequence[int],
        succ: Sequence[int],
        arity1: Sequence[bool],
        num_nodes: int,
    ) -> List[int]:
        """Two-qubit nodes of the lookahead (extended) set.

        Breadth-first over successors from the front, in front order,
        truncated at ``lookahead_size`` two-qubit gates — the same traversal
        (and therefore the same set, in the same order) as the reference.
        """
        lookahead_size = self.lookahead_size
        extended: List[int] = []
        frontier = deque(front)
        visited = bytearray(num_nodes)
        for node in front:
            visited[node] = 1
        while frontier and len(extended) < lookahead_size:
            node = frontier.popleft()
            for index in range(succ_ptr[node], succ_ptr[node + 1]):
                successor = succ[index]
                if visited[successor]:
                    continue
                visited[successor] = 1
                if not arity1[successor]:
                    extended.append(successor)
                frontier.append(successor)
        return extended
