"""Frozen pre-optimization SABRE implementation (baseline oracle).

This module preserves, verbatim in behaviour, the original list-and-networkx
implementation of (mirroring-)SABRE that shipped before the array-based fast
path in :mod:`repro.compiler.routing.sabre`.  It exists for two reasons:

* **Equivalence testing** — the fast path guarantees bit-identical routed
  output; the regression tests route random circuits and the workload suite
  through both implementations and compare gate-for-gate.
* **Performance baselines** — ``repro perf`` times this implementation next
  to the fast path and records the speedup in ``BENCH_*.json``, so the perf
  trajectory is anchored to a fixed reference rather than a moving target.

Do not optimize this module; it is intentionally the slow O(n·front) loop
(``front.remove``, per-candidate Python heuristic sums, dict-based DAG).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.depgraph import DependencyGraph
from repro.circuits.instruction import Instruction
from repro.compiler.routing.coupling_map import CouplingMap
from repro.gates import standard
from repro.gates.gate import UnitaryGate

__all__ = ["ReferenceSabreRouter"]

_SWAP_MATRIX = standard.swap_gate().matrix


class ReferenceSabreRouter:
    """The pre-fast-path SABRE router (see module docstring).

    Construction arguments and :meth:`run` semantics match
    :class:`repro.compiler.routing.sabre.SabreRouter` exactly.
    """

    def __init__(
        self,
        coupling_map: CouplingMap,
        mirroring: bool = False,
        lookahead_size: int = 20,
        lookahead_weight: float = 0.5,
        decay_increment: float = 0.001,
        decay_reset_interval: int = 5,
        seed: int = 0,
    ) -> None:
        self.coupling_map = coupling_map
        self.mirroring = mirroring
        self.lookahead_size = lookahead_size
        self.lookahead_weight = lookahead_weight
        self.decay_increment = decay_increment
        self.decay_reset_interval = decay_reset_interval
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, initial_layout: Optional[Sequence[int]] = None):
        from repro.compiler.routing.sabre import RoutingResult

        if circuit.max_gate_arity() > 2:
            raise ValueError("routing expects a circuit with only 1Q/2Q gates")
        num_physical = self.coupling_map.num_qubits
        if circuit.num_qubits > num_physical:
            raise ValueError("circuit does not fit on the coupling map")
        if initial_layout is None:
            layout = list(range(circuit.num_qubits))
        else:
            layout = list(initial_layout)
        distance = self.coupling_map.distance_matrix()

        dag = DependencyGraph.from_circuit(circuit).to_networkx()
        indegree = {node: dag.in_degree(node) for node in dag.nodes}
        front: List[int] = [node for node, degree in indegree.items() if degree == 0]

        output = QuantumCircuit(num_physical, circuit.name)
        decay = np.ones(num_physical)
        inserted_swaps = 0
        absorbed_swaps = 0
        swaps_since_reset = 0
        last_gate_on_pair: Dict[Tuple[int, int], int] = {}
        last_touch: Dict[int, int] = {}

        def emit(instruction: Instruction, physical_qubits: Tuple[int, ...]) -> None:
            output.append(instruction.gate, physical_qubits)
            position = len(output) - 1
            if len(physical_qubits) == 2:
                last_gate_on_pair[tuple(sorted(physical_qubits))] = position
            for qubit in physical_qubits:
                last_touch[qubit] = position

        def release(node: int) -> None:
            for successor in dag.successors(node):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    front.append(successor)

        max_steps = 50 * (len(circuit) + 10) * max(1, num_physical)
        steps = 0
        while front:
            steps += 1
            if steps > max_steps:
                raise RuntimeError("SABRE routing failed to converge (step limit exceeded)")
            progressed = True
            while progressed and front:
                progressed = False
                for node in list(front):
                    instruction: Instruction = dag.nodes[node]["instruction"]
                    physical = tuple(layout[q] for q in instruction.qubits)
                    if instruction.num_qubits == 1 or self.coupling_map.is_connected(*physical):
                        emit(instruction, physical)
                        front.remove(node)
                        release(node)
                        progressed = True
            if not front:
                break

            front_2q = [
                dag.nodes[node]["instruction"]
                for node in front
                if dag.nodes[node]["instruction"].num_qubits == 2
            ]
            extended = self._extended_set(dag, front, indegree)
            candidates = self._swap_candidates(front_2q, layout)
            if not candidates:
                raise RuntimeError("no SWAP candidates found; is the coupling map connected?")

            base_cost = self._heuristic_cost(front_2q, extended, layout, distance)
            scored: List[Tuple[float, Tuple[int, int]]] = []
            for edge in candidates:
                trial_layout = self._apply_swap(layout, edge)
                cost = self._heuristic_cost(front_2q, extended, trial_layout, distance)
                cost *= max(decay[edge[0]], decay[edge[1]])
                scored.append((cost, edge))
            scored.sort(key=lambda item: (item[0], item[1]))

            chosen: Optional[Tuple[int, int]] = None
            absorb = False
            if self.mirroring:
                absorbable = [
                    (cost, edge)
                    for cost, edge in scored
                    if cost < base_cost and self._is_absorbable(edge, last_gate_on_pair, last_touch)
                ]
                if absorbable:
                    chosen = absorbable[0][1]
                    absorb = True
            if chosen is None:
                chosen = scored[0][1]

            if absorb:
                position = last_gate_on_pair[tuple(sorted(chosen))]
                previous = output.instructions[position]
                merged_matrix = _SWAP_MATRIX @ previous.gate.matrix
                output.instructions[position] = Instruction(
                    UnitaryGate(merged_matrix, label="su4"), previous.qubits
                )
                absorbed_swaps += 1
            else:
                emit(Instruction(standard.swap_gate(), (0, 1)), tuple(chosen))
                inserted_swaps += 1
            layout = self._apply_swap(layout, chosen)
            decay[chosen[0]] += self.decay_increment
            decay[chosen[1]] += self.decay_increment
            swaps_since_reset += 1
            if swaps_since_reset >= self.decay_reset_interval:
                decay[:] = 1.0
                swaps_since_reset = 0

        return RoutingResult(
            circuit=output,
            initial_layout=list(initial_layout) if initial_layout is not None else list(range(circuit.num_qubits)),
            final_layout=layout,
            inserted_swaps=inserted_swaps,
            absorbed_swaps=absorbed_swaps,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _apply_swap(layout: Sequence[int], edge: Tuple[int, int]) -> List[int]:
        new_layout = list(layout)
        for logical, physical in enumerate(new_layout):
            if physical == edge[0]:
                new_layout[logical] = edge[1]
            elif physical == edge[1]:
                new_layout[logical] = edge[0]
        return new_layout

    def _swap_candidates(
        self, front_2q: Sequence[Instruction], layout: Sequence[int]
    ) -> List[Tuple[int, int]]:
        involved: Set[int] = set()
        for instruction in front_2q:
            for qubit in instruction.qubits:
                involved.add(layout[qubit])
        candidates: Set[Tuple[int, int]] = set()
        for physical in involved:
            for neighbor in self.coupling_map.neighbors(physical):
                candidates.add(tuple(sorted((physical, neighbor))))
        return sorted(candidates)

    def _extended_set(
        self, dag, front: Sequence[int], indegree: Dict[int, int]
    ) -> List[Instruction]:
        extended: List[Instruction] = []
        frontier = list(front)
        visited: Set[int] = set(front)
        while frontier and len(extended) < self.lookahead_size:
            node = frontier.pop(0)
            for successor in dag.successors(node):
                if successor in visited:
                    continue
                visited.add(successor)
                instruction = dag.nodes[successor]["instruction"]
                if instruction.num_qubits == 2:
                    extended.append(instruction)
                frontier.append(successor)
        return extended

    def _heuristic_cost(
        self,
        front_2q: Sequence[Instruction],
        extended: Sequence[Instruction],
        layout: Sequence[int],
        distance: np.ndarray,
    ) -> float:
        if not front_2q:
            return 0.0
        front_cost = sum(
            distance[layout[instr.qubits[0]], layout[instr.qubits[1]]] for instr in front_2q
        ) / len(front_2q)
        if extended:
            lookahead = sum(
                distance[layout[instr.qubits[0]], layout[instr.qubits[1]]] for instr in extended
            ) / len(extended)
        else:
            lookahead = 0.0
        return front_cost + self.lookahead_weight * lookahead

    def _is_absorbable(
        self,
        edge: Tuple[int, int],
        last_gate_on_pair: Dict[Tuple[int, int], int],
        last_touch: Dict[int, int],
    ) -> bool:
        pair = tuple(sorted(edge))
        position = last_gate_on_pair.get(pair)
        if position is None:
            return False
        return all(last_touch.get(q, -1) <= position for q in pair)
