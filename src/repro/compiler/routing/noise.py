"""Calibration-weighted SABRE scoring: the noise-aware routing model.

Distance-only SABRE treats every coupling edge as equally good.  On a real
device they are not: two-qubit error rates routinely spread over an order of
magnitude across edges, and gate durations vary with the pair.  This module
turns a :class:`~repro.microarch.calibration.CalibrationData` into the two
integer tables the stall scorer consumes:

* ``distance`` — an all-pairs shortest-path matrix over *weighted* edges,
  where edge ``e`` costs ``w_e = -log1p(-error_e) + duration_weight *
  (duration_e / mean_duration)``.  The weights are normalized by their mean
  and quantized to int64 as ``round(norm_e * SCALE)``, then closed under
  min-plus (Floyd-Warshall), so the scorer's integer sums stay exact in both
  the numpy and C backends.
* ``swap_penalty`` — a per-edge surcharge ``round(swap_bias * (norm_e -
  norm_min) * SCALE)`` added to a candidate's cost (never to the pre-SWAP
  base cost), steering SWAP insertion itself away from the worst edges.

**Exact uniform reduction.**  ``SCALE`` is a power of two (``1 << 20``).
Under a *uniform* calibration every normalized weight is ``1.0`` and every
quantized weight is exactly ``SCALE``, so the weighted distance matrix is
exactly ``SCALE`` times the hop-count matrix and every penalty is exactly
zero.  Every float cost the scorer computes is then exactly ``SCALE`` times
the distance-only cost — scaling by a power of two commutes with IEEE-754
rounding — so every ``argmin`` / stable ``argsort`` / ``cost < base_cost``
decision is identical and the routed output is **bit-identical** to
distance-only routing (property-tested on both kernel backends).

The portfolio entry point :func:`compare_routing_strategies` routes a
circuit both ways, scores each result with the calibration's estimated log
fidelity, and keeps the better one — so noise-aware compilation can never
produce a lower estimated fidelity than the distance-only baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "SCALE",
    "NoiseRoutingModel",
    "StrategyComparison",
    "build_noise_model",
    "compare_routing_strategies",
    "estimated_log_fidelity",
]

#: Quantization scale for normalized edge weights.  A power of two, so the
#: uniform-calibration cost surface is an exact power-of-two multiple of the
#: distance-only one (see the module docstring).
SCALE = 1 << 20

#: Unreachable sentinel for the min-plus closure: far above any real path
#: weight (<= ~2**36) yet safe to add to itself in int64.
_INF = 1 << 40


@dataclass(frozen=True)
class NoiseRoutingModel:
    """Integer tables driving calibration-weighted stall scoring."""

    #: (n, n) int64 weighted shortest-path matrix (quantized, min-plus closed).
    distance: np.ndarray
    #: (num_edges,) int64 per-candidate SWAP surcharge, aligned with the
    #: coupling map's lexicographic edge ids.
    swap_penalty: np.ndarray
    #: Content hash of the calibration this model was built from (memo keys).
    fingerprint: str

    @property
    def num_qubits(self) -> int:
        return int(self.distance.shape[0])


def build_noise_model(
    coupling_map,
    calibration,
    duration_weight: float = 0.0,
    swap_bias: float = 0.4,
) -> NoiseRoutingModel:
    """Quantized weighted-distance tables for ``calibration`` on ``coupling_map``.

    ``duration_weight`` sets how much a slow edge costs relative to a lossy
    one; ``swap_bias`` scales the extra surcharge a candidate SWAP pays for
    sitting on a worse-than-best edge.  The surcharge competes with the
    *front-averaged* distance term, so a large bias can make every
    distance-reducing SWAP look worse than oscillating on the cheapest edge
    — keep it well below 1 (the portfolio caller also falls back to the
    distance-only result if the weighted router fails to converge).
    """
    calibration.validate_against(coupling_map)
    edge_array = coupling_map.edge_array()
    num_edges = edge_array.shape[0]
    n = coupling_map.num_qubits

    errors = np.empty(num_edges, dtype=np.float64)
    durations = np.empty(num_edges, dtype=np.float64)
    for index in range(num_edges):
        entry = calibration.edge(int(edge_array[index, 0]), int(edge_array[index, 1]))
        errors[index] = entry.error
        durations[index] = entry.duration
    duration_ref = float(durations.mean()) if durations.size else 1.0
    if duration_ref <= 0.0:
        duration_ref = 1.0
    weights = -np.log1p(-errors) + duration_weight * (durations / duration_ref)
    mean_weight = float(weights.mean()) if weights.size else 1.0
    if mean_weight <= 0.0:
        # A degenerate all-zero calibration still needs positive edge costs
        # for the shortest-path closure to mean anything.
        normalized = np.ones_like(weights)
    else:
        normalized = weights / mean_weight
    quantized = np.rint(normalized * SCALE).astype(np.int64)
    # Zero-weight edges would make distinct layouts tie at distance 0; keep
    # every hop strictly positive.
    np.maximum(quantized, 1, out=quantized)
    min_norm = float(normalized.min()) if normalized.size else 0.0
    penalty = np.rint(swap_bias * (normalized - min_norm) * SCALE)
    swap_penalty = penalty.astype(np.int64)

    distance = np.full((n, n), _INF, dtype=np.int64)
    np.fill_diagonal(distance, 0)
    for index in range(num_edges):
        a = int(edge_array[index, 0])
        b = int(edge_array[index, 1])
        weight = int(quantized[index])
        if weight < distance[a, b]:
            distance[a, b] = weight
            distance[b, a] = weight
    for k in range(n):
        np.minimum(
            distance, distance[:, k, None] + distance[None, k, :], out=distance
        )
    distance = np.ascontiguousarray(distance)
    distance.setflags(write=False)
    swap_penalty.setflags(write=False)
    return NoiseRoutingModel(
        distance=distance,
        swap_penalty=swap_penalty,
        fingerprint=calibration.fingerprint(),
    )


def estimated_log_fidelity(circuit, calibration) -> float:
    """Log estimated fidelity of a *routed* (physical-wire) circuit."""
    return calibration.estimated_log_fidelity(circuit)


@dataclass(frozen=True)
class StrategyComparison:
    """Outcome of routing one circuit with and without the noise model."""

    #: The kept routing result (the higher estimated-fidelity one).
    chosen: "RoutingResult"
    #: ``"noise"`` or ``"distance"`` — which strategy produced ``chosen``.
    strategy: str
    noise_log_fidelity: float
    distance_log_fidelity: float
    noise_result: "RoutingResult"
    distance_result: "RoutingResult"

    @property
    def improvement(self) -> float:
        """Fidelity ratio chosen/distance-only (>= 1 by construction)."""
        chosen_log = max(self.noise_log_fidelity, self.distance_log_fidelity)
        return float(np.exp(chosen_log - self.distance_log_fidelity))


def compare_routing_strategies(
    graph,
    target,
    mirroring: bool = True,
    seed: int = 0,
    lookahead_size: int = 20,
    lookahead_weight: float = 0.5,
    initial_layout=None,
    name: str = "circuit",
    duration_weight: float = 0.0,
    swap_bias: float = 0.4,
) -> StrategyComparison:
    """Route ``graph`` with both strategies and keep the better one.

    ``graph`` is a :class:`~repro.circuits.depgraph.DependencyGraph` (the IR
    pipeline's native currency).  The noise result wins ties, so a uniform
    calibration — where both routings are bit-identical — reports the
    ``"noise"`` strategy with improvement exactly 1.0.
    """
    from repro.compiler.routing.sabre import SabreRouter

    if target.calibration is None or target.coupling_map is None:
        raise ValueError("compare_routing_strategies needs a calibrated target")
    noise_model = target.calibration.routing_model(
        target.coupling_map, duration_weight=duration_weight, swap_bias=swap_bias
    )
    common = dict(
        mirroring=mirroring,
        lookahead_size=lookahead_size,
        lookahead_weight=lookahead_weight,
        seed=seed,
    )
    distance_router = SabreRouter(target.coupling_map, **common)
    noise_router = SabreRouter(target.coupling_map, noise_model=noise_model, **common)
    distance_result = distance_router.run_graph(
        graph, initial_layout=initial_layout, name=name
    )
    try:
        noise_result = noise_router.run_graph(
            graph, initial_layout=initial_layout, name=name
        )
    except RuntimeError:
        # The surcharge landscape failed to converge on this program; the
        # distance-only result is always available as the floor.
        noise_result = distance_result
    distance_log = target.calibration.estimated_log_fidelity(distance_result.circuit)
    noise_log = target.calibration.estimated_log_fidelity(noise_result.circuit)
    if noise_log >= distance_log:
        chosen, strategy = noise_result, "noise"
    else:
        chosen, strategy = distance_result, "distance"
    return StrategyComparison(
        chosen=chosen,
        strategy=strategy,
        noise_log_fidelity=noise_log,
        distance_log_fidelity=distance_log,
        noise_result=noise_result,
        distance_result=distance_result,
    )
