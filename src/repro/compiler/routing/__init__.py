"""Qubit mapping and routing: SABRE and the SU(4)-aware mirroring-SABRE."""

from repro.compiler.routing.coupling_map import CouplingMap
from repro.compiler.routing.sabre import RoutingResult, SabreRouter

__all__ = ["CouplingMap", "SabreRouter", "RoutingResult"]
