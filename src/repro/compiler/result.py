"""Compilation results: the compiled circuit plus evaluation metadata.

:class:`CompilationResult` is produced by :func:`repro.target.api.compile`
(and by the deprecated compiler-class shims that delegate to it).  All of the
paper's headline metrics — #2Q, Depth2Q, the distinct-gate calibration proxy,
the genAshN pulse duration and the inserted-SWAP routing overhead — are
derived here, costed against the :class:`~repro.target.target.Target` the
circuit was compiled for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.metrics import (
    circuit_duration,
    count_distinct_two_qubit_gates,
    count_two_qubit_gates,
    two_qubit_depth,
)
from repro.compiler.passes.base import PassRecord
from repro.microarch.hamiltonian import CouplingHamiltonian

__all__ = ["CompilationResult"]


def _coerce_target(coupling: Union[None, CouplingHamiltonian, "Target"]) -> Optional["Target"]:
    """Normalize a legacy ``coupling`` argument into a (cached) Target."""
    if coupling is None:
        return None
    from repro.target.target import Target

    if isinstance(coupling, Target):
        return coupling
    return Target.for_coupling(coupling)


@dataclass
class CompilationResult:
    """Compiled circuit plus the metadata needed by the evaluation harness."""

    circuit: QuantumCircuit
    compiler_name: str
    compile_seconds: float
    properties: Mapping[str, Any] = field(default_factory=dict)
    pass_records: List[PassRecord] = field(default_factory=list)
    #: The device the circuit was compiled for; ``None`` falls back to the
    #: cached default XY target when costing durations.
    target: Optional[Any] = None
    #: Circuit<->IR marshalling counters accumulated during this compile
    #: (delta of :func:`repro.ir.conversion_stats` around the pipeline run).
    conversions: Dict[str, int] = field(default_factory=dict)
    #: Memo hit/miss counters for this compile (a
    #: :class:`~repro.incremental.MemoStats` delta) when memoization was on.
    memo_stats: Optional[Any] = None
    #: The memo store used by this compile; handing the result to
    #: ``compile(..., previous=result)`` reuses it.  Dropped on pickling
    #: (the store holds locks and file handles).
    memo: Optional[Any] = field(default=None, repr=False, compare=False)
    #: The resolved pipeline spec, so ``previous=`` recompiles reuse the
    #: exact stage configuration.  Dropped on pickling alongside ``memo``
    #: (stage configs may hold arbitrary objects).
    spec: Optional[Any] = field(default=None, repr=False, compare=False)

    # -- metrics -----------------------------------------------------------
    @property
    def num_two_qubit_gates(self) -> int:
        """#2Q of the compiled circuit."""
        return count_two_qubit_gates(self.circuit)

    @property
    def two_qubit_depth(self) -> int:
        """Depth2Q of the compiled circuit."""
        return two_qubit_depth(self.circuit)

    @property
    def depth(self) -> int:
        """Full circuit depth (all gates, not just two-qubit ones)."""
        return self.circuit.depth()

    @property
    def distinct_two_qubit_gates(self) -> int:
        """Number of distinct 2Q gates (calibration overhead proxy)."""
        return count_distinct_two_qubit_gates(self.circuit)

    def duration(
        self, target: Union[None, CouplingHamiltonian, "Target"] = None
    ) -> float:
        """Pulse duration of the compiled circuit.

        SU(4)-ISA results are costed with the genAshN duration model;
        CNOT-ISA results (compilers that stamp ``properties["isa"] = "cnot"``)
        with the conventional CNOT pulse, matching the paper's Table 2
        convention.

        ``target`` may be a :class:`~repro.target.target.Target`, a bare
        :class:`CouplingHamiltonian` (legacy calling convention) or ``None``
        (use the result's own target, falling back to the cached default XY
        device).  The per-gate duration model is memoized on the target, so
        repeated calls — e.g. ``summary()`` over a whole suite — reuse one
        model instead of rebuilding it per circuit.
        """
        from repro.target.target import Target

        resolved = _coerce_target(target) or self.target or Target.default()
        isa = "cnot" if self.properties.get("isa") == "cnot" else "su4"
        return circuit_duration(self.circuit, resolved.duration_model(isa))

    @property
    def final_permutation(self) -> List[int]:
        """Qubit permutation accumulated by mirroring and routing."""
        permutation = self.properties.get("mirror_permutation")
        if permutation is None:
            permutation = list(range(self.circuit.num_qubits))
        return permutation

    @property
    def routing_overhead(self) -> Optional[int]:
        """Inserted (non-absorbed) SWAPs, when routing ran."""
        return self.properties.get("inserted_swaps")

    def summary(self) -> Dict[str, Any]:
        """Flat dictionary used by the experiment harness and the CLI.

        Carries the paper's headline metrics: #2Q, Depth2Q, the distinct-gate
        calibration proxy, the genAshN pulse duration, (when routing ran) the
        inserted-SWAP overhead, and the name of the target device.
        """
        payload = {
            "compiler": self.compiler_name,
            "target": self.target.name if self.target is not None else None,
            "num_2q": self.num_two_qubit_gates,
            "depth_2q": self.two_qubit_depth,
            "depth": self.depth,
            "distinct_2q": self.distinct_two_qubit_gates,
            "duration": self.duration(),
            "routing_overhead": self.routing_overhead,
            "compile_seconds": self.compile_seconds,
            "conversions": sum(self.conversions.values()) if self.conversions else 0,
        }
        if self.memo_stats is not None:
            stats = self.memo_stats
            payload["memo_hits"] = stats.pass_hits + stats.region_hits
            payload["memo_misses"] = stats.pass_misses + stats.region_misses
        return payload

    # -- serialization -------------------------------------------------------
    # The memo store holds locks/file handles and stage configs may hold
    # arbitrary objects: both stay behind when a result crosses a process
    # boundary (the daemon's workers pickle summaries, not stores).
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["memo"] = None
        state["spec"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
