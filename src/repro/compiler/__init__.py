"""The Regulus compiler: SU(4)-native compilation framework of ReQISC."""

from repro.compiler.reqisc import CompilationResult, ReQISCCompiler
from repro.compiler.baselines import CnotBaselineCompiler, Su4FusionBaselineCompiler

__all__ = [
    "CompilationResult",
    "ReQISCCompiler",
    "CnotBaselineCompiler",
    "Su4FusionBaselineCompiler",
]
