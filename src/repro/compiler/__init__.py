"""The Regulus compiler: SU(4)-native compilation framework of ReQISC.

The public API is the declarative one in :mod:`repro.target` (``Target`` +
``PipelineSpec`` + ``compile``); the compiler classes re-exported here are
deprecated shims kept for backward compatibility.
"""

from repro.compiler.result import CompilationResult
from repro.compiler.reqisc import ReQISCCompiler
from repro.compiler.baselines import CnotBaselineCompiler, Su4FusionBaselineCompiler

__all__ = [
    "CompilationResult",
    "ReQISCCompiler",
    "CnotBaselineCompiler",
    "Su4FusionBaselineCompiler",
]
