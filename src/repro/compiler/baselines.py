"""Deprecated shims for the baseline compilers.

The baseline pipelines (Qiskit-O3 / TKet stand-ins and the "-SU(4)" fusion
variants — see DESIGN.md, "Substitutions") now live in the declarative API:
:func:`repro.target.pipeline.cnot_baseline_pipeline` and
:func:`repro.target.pipeline.su4_fusion_pipeline` build the named
:class:`~repro.target.pipeline.PipelineSpec` objects, and
:func:`repro.target.api.compile` runs them against a
:class:`~repro.target.target.Target`.  The classes below are deprecated thin
wrappers kept for backward compatibility; output is bit-identical.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.result import CompilationResult
from repro.compiler.routing.coupling_map import CouplingMap

__all__ = ["CnotBaselineCompiler", "Su4FusionBaselineCompiler"]


class CnotBaselineCompiler:
    """Deprecated: use ``compile(circuit, spec='qiskit-like'/'tket-like')``."""

    def __init__(
        self,
        name: str = "qiskit-like",
        pauli_simp: bool = False,
        consolidate: bool = True,
        coupling_map: Optional[CouplingMap] = None,
        physical_optimization: bool = True,
        seed: int = 0,
    ) -> None:
        warnings.warn(
            "CnotBaselineCompiler is deprecated; use repro.target.compile("
            "circuit, target=..., spec='qiskit-like'/'tket-like') instead "
            "(see docs/targets.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.baseline_name = name
        self.pauli_simp = pauli_simp
        self.consolidate = consolidate
        self.coupling_map = coupling_map
        self.physical_optimization = physical_optimization
        self.seed = seed

    @property
    def name(self) -> str:
        """Reporting name."""
        return self.baseline_name

    def compile(self, circuit: QuantumCircuit) -> CompilationResult:
        """Compile ``circuit`` to the optimized ``{CX, U3}`` representation."""
        from repro.target.api import compile as compile_circuit
        from repro.target.pipeline import cnot_baseline_pipeline
        from repro.target.target import Target

        spec = cnot_baseline_pipeline(
            name=self.baseline_name,
            pauli_simp=self.pauli_simp,
            consolidate=self.consolidate,
            physical_optimization=self.physical_optimization,
        )
        target = Target.from_device(coupling_map=self.coupling_map, isa="cnot")
        return compile_circuit(circuit, target=target, spec=spec, seed=self.seed)


class Su4FusionBaselineCompiler:
    """Deprecated: use ``compile(circuit, spec='qiskit-su4'/'tket-su4'/'bqskit-su4')``."""

    def __init__(
        self,
        variant: str = "qiskit-su4",
        coupling_map: Optional[CouplingMap] = None,
        synthesis_tolerance: float = 1e-6,
        seed: int = 0,
    ) -> None:
        warnings.warn(
            "Su4FusionBaselineCompiler is deprecated; use repro.target.compile("
            "circuit, target=..., spec='qiskit-su4'/'tket-su4'/'bqskit-su4') "
            "instead (see docs/targets.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        if variant not in ("qiskit-su4", "tket-su4", "bqskit-su4"):
            raise ValueError("variant must be qiskit-su4, tket-su4 or bqskit-su4")
        self.variant = variant
        self.coupling_map = coupling_map
        self.synthesis_tolerance = synthesis_tolerance
        self.seed = seed

    @property
    def name(self) -> str:
        """Reporting name."""
        return self.variant

    def compile(self, circuit: QuantumCircuit) -> CompilationResult:
        """Compile ``circuit`` into SU(4) gates without ReQISC's co-design."""
        from repro.target.api import compile as compile_circuit
        from repro.target.pipeline import su4_fusion_pipeline
        from repro.target.target import Target

        spec = su4_fusion_pipeline(
            variant=self.variant, synthesis_tolerance=self.synthesis_tolerance
        )
        target = Target.from_device(coupling_map=self.coupling_map)
        return compile_circuit(circuit, target=target, spec=spec, seed=self.seed)
