"""Baseline compilers.

The paper compares ReQISC against Qiskit (O3), TKet (PauliSimp +
FullPeepholeOptimise) and BQSKit, plus "-SU(4)" variants of each that append
a 2Q-block fusion stage.  None of those packages are available offline, so
this module provides functionally equivalent stand-ins built from the same
substrate passes (see DESIGN.md, "Substitutions"):

* :class:`CnotBaselineCompiler` — decompose to ``{CX, 1Q}``, merge 1Q runs,
  cancel/merge adjacent 2Q gates, consolidate 2Q runs and re-synthesize them
  with minimal CNOT counts; optional rotation-merging "PauliSimp" front end
  and SABRE routing with SWAP decomposition + physical peephole.
* :class:`Su4FusionBaselineCompiler` — the "-SU(4)" variants: the CNOT
  baseline followed by naive 2Q-block fusion into SU(4) gates
  (``qiskit-su4`` / ``tket-su4``), or aggressive per-block numerical
  re-synthesis without template reuse (``bqskit-su4``).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.passes.base import PassManager
from repro.compiler.passes.decompose import DecomposeToCnotPass
from repro.compiler.passes.finalize import FinalizeToCanPass
from repro.compiler.passes.fuse import Fuse2QBlocksPass
from repro.compiler.passes.hierarchical import HierarchicalSynthesisPass
from repro.compiler.passes.peephole import PeepholeOptimizationPass
from repro.compiler.reqisc import CompilationResult
from repro.compiler.routing.coupling_map import CouplingMap
from repro.compiler.routing.sabre import SabreRouter
from repro.synthesis.approximate import ApproximateSynthesizer

__all__ = ["CnotBaselineCompiler", "Su4FusionBaselineCompiler"]


class CnotBaselineCompiler:
    """CNOT-ISA baseline compiler (Qiskit-O3 / TKet stand-in)."""

    def __init__(
        self,
        name: str = "qiskit-like",
        pauli_simp: bool = False,
        consolidate: bool = True,
        coupling_map: Optional[CouplingMap] = None,
        physical_optimization: bool = True,
        seed: int = 0,
    ) -> None:
        self.baseline_name = name
        self.pauli_simp = pauli_simp
        self.consolidate = consolidate
        self.coupling_map = coupling_map
        self.physical_optimization = physical_optimization
        self.seed = seed

    @property
    def name(self) -> str:
        """Reporting name."""
        return self.baseline_name

    def compile(self, circuit: QuantumCircuit) -> CompilationResult:
        """Compile ``circuit`` to the optimized ``{CX, U3}`` representation."""
        start = time.perf_counter()
        properties: Dict[str, Any] = {"isa": "cnot"}
        manager = PassManager()
        if self.pauli_simp:
            # Rotation merging on the high-level representation (the role of
            # TKet's PauliSimp for Trotterized / variational programs).
            manager.append(PeepholeOptimizationPass(consolidate=False))
        manager.append(DecomposeToCnotPass())
        manager.append(PeepholeOptimizationPass(consolidate=self.consolidate))
        compiled = manager.run(circuit, properties)
        records = list(manager.records)

        if self.coupling_map is not None:
            router = SabreRouter(self.coupling_map, mirroring=False, seed=self.seed)
            routing = router.run(compiled)
            properties["initial_layout"] = routing.initial_layout
            properties["final_layout"] = routing.final_layout
            properties["inserted_swaps"] = routing.inserted_swaps
            properties["absorbed_swaps"] = routing.absorbed_swaps
            physical = PassManager()
            physical.append(DecomposeToCnotPass())
            if self.physical_optimization:
                physical.append(PeepholeOptimizationPass(consolidate=self.consolidate))
            compiled = physical.run(routing.circuit, properties)
            records.extend(physical.records)

        elapsed = time.perf_counter() - start
        return CompilationResult(
            circuit=compiled,
            compiler_name=self.name,
            compile_seconds=elapsed,
            properties=properties,
            pass_records=records,
        )


class Su4FusionBaselineCompiler:
    """"-SU(4)" baseline variants (Section 6.6.1 ablation)."""

    def __init__(
        self,
        variant: str = "qiskit-su4",
        coupling_map: Optional[CouplingMap] = None,
        synthesis_tolerance: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if variant not in ("qiskit-su4", "tket-su4", "bqskit-su4"):
            raise ValueError("variant must be qiskit-su4, tket-su4 or bqskit-su4")
        self.variant = variant
        self.coupling_map = coupling_map
        self.synthesis_tolerance = synthesis_tolerance
        self.seed = seed

    @property
    def name(self) -> str:
        """Reporting name."""
        return self.variant

    def compile(self, circuit: QuantumCircuit) -> CompilationResult:
        """Compile ``circuit`` into SU(4) gates without ReQISC's co-design."""
        start = time.perf_counter()
        cnot_stage = CnotBaselineCompiler(
            name=self.variant,
            pauli_simp=self.variant == "tket-su4",
            coupling_map=self.coupling_map,
            seed=self.seed,
        )
        cnot_result = cnot_stage.compile(circuit)
        properties = dict(cnot_result.properties)
        properties["isa"] = "su4"
        manager = PassManager()
        if self.variant == "bqskit-su4":
            # Aggressive per-block numerical re-synthesis with no template
            # reuse: good #2Q, but every block yields fresh SU(4) parameters
            # (the "distinct-gate explosion" discussed in the ablation study).
            manager.append(Fuse2QBlocksPass(form="unitary"))
            manager.append(
                HierarchicalSynthesisPass(
                    threshold=2,
                    tolerance=self.synthesis_tolerance,
                    enable_dag_compacting=False,
                    synthesizer=ApproximateSynthesizer(
                        tolerance=self.synthesis_tolerance, restarts=2, seed=self.seed
                    ),
                )
            )
        else:
            manager.append(Fuse2QBlocksPass(form="unitary"))
        manager.append(FinalizeToCanPass())
        compiled = manager.run(cnot_result.circuit, properties)
        elapsed = time.perf_counter() - start
        return CompilationResult(
            circuit=compiled,
            compiler_name=self.name,
            compile_seconds=elapsed,
            properties=properties,
            pass_records=cnot_result.pass_records + list(manager.records),
        )
