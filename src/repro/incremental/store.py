"""The pass-level memo store behind incremental recompilation.

:class:`PassMemoStore` is a thin, namespaced view over a
:class:`~repro.service.cache.SynthesisCache` — it inherits the two-tier
layout (memory LRU + concurrency-safe append-only segment store on disk)
and adds:

* **key namespacing** by memo kind (``"pass"`` for whole-pass rewrites,
  ``"region"`` for per-block/per-run results inside a pass) and by the
  ``repro`` version, so a release whose pass behavior changed can never
  replay a stale disk entry;
* **layered hit/miss counters** (:class:`MemoStats`), split by kind, that
  :func:`repro.target.api.compile` surfaces through
  ``CompilationResult.summary()`` and the daemon aggregates per session.

Because every entry is keyed by the exact content bytes of the unit it
replaces (the whole pass input, or a self-contained region whose rewrite is
a pure function of region content), replaying a memo hit is bit-identical
to recomputation by construction — the property the ``incr`` perf family
and the randomized edit-sequence tests gate in CI.

The store is **not picklable** (the backing cache holds locks and file
handles); :class:`~repro.compiler.result.CompilationResult` drops its memo
handle when crossing a process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha256
from typing import Any, Dict, Optional

from repro import __version__
from repro.service.cache import SynthesisCache

__all__ = ["MISS", "MemoStats", "PassMemoStore"]


class _MemoMiss:
    """Sentinel distinguishing "no entry" from a stored ``None`` result."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<memo miss>"


#: Returned by :meth:`PassMemoStore.lookup` when no entry exists.
MISS = _MemoMiss()


@dataclass
class MemoStats:
    """Layered memo counters: whole-pass and region-level hits/misses."""

    pass_hits: int = 0
    pass_misses: int = 0
    region_hits: int = 0
    region_misses: int = 0
    stores: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary (summary/CLI/daemon-stats serialization)."""
        return {
            "pass_hits": self.pass_hits,
            "pass_misses": self.pass_misses,
            "region_hits": self.region_hits,
            "region_misses": self.region_misses,
            "stores": self.stores,
        }

    def snapshot(self) -> "MemoStats":
        """Independent copy of the current counters."""
        return MemoStats(
            self.pass_hits,
            self.pass_misses,
            self.region_hits,
            self.region_misses,
            self.stores,
        )

    def delta_since(self, earlier: "MemoStats") -> "MemoStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return MemoStats(
            self.pass_hits - earlier.pass_hits,
            self.pass_misses - earlier.pass_misses,
            self.region_hits - earlier.region_hits,
            self.region_misses - earlier.region_misses,
            self.stores - earlier.stores,
        )

    def merge(self, other: "MemoStats") -> None:
        """Accumulate another snapshot into this one."""
        self.pass_hits += other.pass_hits
        self.pass_misses += other.pass_misses
        self.region_hits += other.region_hits
        self.region_misses += other.region_misses
        self.stores += other.stores


class PassMemoStore:
    """Content-addressed memo store for pass and region rewrite results.

    Parameters
    ----------
    capacity:
        Memory-tier LRU capacity when the store owns its backing cache.
    directory:
        Optional disk directory (the segment store) when owning the cache.
    backing:
        An existing :class:`SynthesisCache` to share instead of owning one —
        the daemon's workers hand in their warm per-shard cache so memo
        entries persist (and flow between processes) through the same
        segment store as synthesis results.
    """

    def __init__(
        self,
        capacity: int = 8192,
        directory: Optional[str] = None,
        backing: Optional[SynthesisCache] = None,
    ) -> None:
        if backing is not None:
            self.backing = backing
            self._owns_backing = False
        else:
            self.backing = SynthesisCache(capacity=capacity, directory=directory)
            self._owns_backing = True
        self.stats = MemoStats()
        # Version-scoped namespace: a repro upgrade that changes any pass's
        # behavior must never replay entries written by the old code.
        self._tag = f"incr/{__version__}"

    # ------------------------------------------------------------------
    def _key(self, kind: str, key: str) -> str:
        return sha256(f"{self._tag}|{kind}|{key}".encode("utf-8")).hexdigest()

    def lookup(self, kind: str, key: str) -> Any:
        """Fetch the entry for ``(kind, key)``; :data:`MISS` when absent."""
        value = self.backing.get(self._key(kind, key), MISS)
        if value is MISS:
            if kind == "pass":
                self.stats.pass_misses += 1
            else:
                self.stats.region_misses += 1
        else:
            if kind == "pass":
                self.stats.pass_hits += 1
            else:
                self.stats.region_hits += 1
        return value

    def store(self, kind: str, key: str, value: Any) -> None:
        """Insert ``value`` (both tiers; ``None`` results are cached too)."""
        self.backing.put(self._key(kind, key), value)
        self.stats.stores += 1

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Current memo counters as a flat dict."""
        return self.stats.as_dict()

    def flush(self) -> None:
        """Publish the backing cache's disk index."""
        self.backing.flush()

    def compact(self) -> Dict[str, int]:
        """Compact the backing cache's segment store (offline maintenance)."""
        return self.backing.compact()

    def scrub(self) -> Dict[str, Any]:
        """Scrub the backing cache's segment store (offline maintenance).

        Memoized pass results share the synthesis cache's segment format, so
        the same CRC-verify / quarantine / salvage pass
        (:meth:`~repro.service.cache.SynthesisCache.scrub`) repairs them too.
        """
        return self.backing.scrub()

    def disk_stats(self) -> Dict[str, Any]:
        """Disk inventory and health counters of the backing cache."""
        return self.backing.disk_stats()

    def close(self) -> None:
        """Close the backing cache iff this store owns it."""
        if self._owns_backing:
            self.backing.close()

    # Locks and file handles never cross process boundaries.
    def __reduce__(self):
        raise TypeError(
            "PassMemoStore is not picklable; results drop their memo handle "
            "when serialized (see CompilationResult.__getstate__)"
        )

    def __repr__(self) -> str:
        return (
            f"PassMemoStore(tag={self._tag!r}, owns_backing={self._owns_backing}, "
            f"stats={self.stats.as_dict()})"
        )
