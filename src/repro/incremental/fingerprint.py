"""Deterministic content fingerprints for IR regions and whole programs.

This generalizes the exact-bytes keying scheme of
:func:`repro.service.cache.circuit_fingerprint` into a reusable
content-addressing layer for incremental recompilation:

* every :class:`~repro.gates.gate.Gate` has a canonical byte string — name,
  arity and either the exact parameter bytes (named gates resolve their
  matrix purely from ``(name, params)``) or the exact matrix bytes
  (:class:`~repro.gates.gate.UnitaryGate`);
* an :class:`~repro.circuits.instruction.Instruction` adds its wire tuple;
* a *region* (any instruction sequence) hashes its members in program order
  with length prefixes, optionally relabelling wires by first appearance so
  structurally identical regions on different physical qubits share a key;
* a *program* (a :class:`~repro.circuits.circuit.QuantumCircuit` or a
  :class:`~repro.ir.CircuitIR`) adds its qubit count.

Fingerprints are position-free and id-free — they hash gate content and
wire connectivity in program order, never node ids — so they are invariant
under the IR's node-id renumbering (``adopt``/``rewrite`` reload, interleaved
insert/remove churn) and, being SHA-256 over deterministic bytes, stable
across processes and machines.

Caching: gate bytes are interned on the gate object (gates are immutable and
widely shared through the matrix intern pools), instruction bytes on the
instruction, and whole-IR digests on the IR keyed by its mutation counter
(:attr:`~repro.ir.CircuitIR.version`) — the dirty-tracking hook that makes
re-fingerprinting an unchanged program O(1).
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Iterable, Optional, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.gates.gate import Gate, UnitaryGate
from repro.ir import CircuitIR

__all__ = [
    "gate_content",
    "instruction_content",
    "gate_region_key",
    "gates_region_key",
    "region_fingerprint",
    "program_fingerprint",
    "target_fingerprint",
]

_LEN = struct.Struct("<I")


def gate_content(gate: Gate) -> bytes:
    """Canonical content bytes of a gate (cached on the gate object).

    Named gates are identified by ``(name, arity, exact param bytes)`` —
    their matrix is a pure function of that triple through the builder
    registry.  Explicit-matrix gates (:class:`UnitaryGate`) are identified by
    their exact matrix bytes, mirroring
    :func:`repro.service.cache.circuit_fingerprint`.
    """
    cached = getattr(gate, "_content", None)
    if cached is None:
        name = gate.name.encode("utf-8")
        if isinstance(gate, UnitaryGate):
            body = np.ascontiguousarray(gate.matrix, dtype=np.complex128).tobytes()
            tag = b"U"
        else:
            body = np.asarray(gate.params, dtype=np.float64).tobytes()
            tag = b"G"
        cached = b"".join(
            (tag, _LEN.pack(len(name)), name, _LEN.pack(gate.num_qubits), body)
        )
        try:
            gate._content = cached
        except AttributeError:  # foreign Gate subclass without the slot
            pass
    return cached


def instruction_content(instruction: Instruction) -> bytes:
    """Content bytes of one instruction: gate content plus its wire tuple."""
    cached = getattr(instruction, "_content", None)
    if cached is None:
        qubits = instruction.qubits
        cached = gate_content(instruction.gate) + struct.pack(
            f"<{len(qubits)}i", *qubits
        )
        object.__setattr__(instruction, "_content", cached)
    return cached


def gate_region_key(gate: Gate, *context: str) -> str:
    """Region key of a single-gate region (e.g. one fused SU(4) block)."""
    digest = hashlib.sha256(gate_content(gate))
    for tag in context:
        digest.update(b"\x00")
        digest.update(tag.encode("utf-8"))
    return digest.hexdigest()


def gates_region_key(gates: Iterable[Gate], *context: str) -> str:
    """Region key of an ordered gate run on one wire (wire identity elided)."""
    digest = hashlib.sha256()
    for gate in gates:
        payload = gate_content(gate)
        digest.update(_LEN.pack(len(payload)))
        digest.update(payload)
    for tag in context:
        digest.update(b"\x00")
        digest.update(tag.encode("utf-8"))
    return digest.hexdigest()


def region_fingerprint(
    instructions: Iterable[Instruction],
    *context: str,
    localize: bool = False,
) -> str:
    """Fingerprint of an instruction sequence (a subgraph in program order).

    With ``localize`` wires are relabelled by first appearance, so two
    regions that are identical up to a qubit relabelling share a key (used
    for per-block memo entries stored on local wires).
    """
    digest = hashlib.sha256()
    if localize:
        mapping: dict = {}
        for instruction in instructions:
            local = []
            for qubit in instruction.qubits:
                index = mapping.get(qubit)
                if index is None:
                    index = mapping[qubit] = len(mapping)
                local.append(index)
            payload = gate_content(instruction.gate) + struct.pack(
                f"<{len(local)}i", *local
            )
            digest.update(_LEN.pack(len(payload)))
            digest.update(payload)
    else:
        for instruction in instructions:
            payload = instruction_content(instruction)
            digest.update(_LEN.pack(len(payload)))
            digest.update(payload)
    for tag in context:
        digest.update(b"\x00")
        digest.update(tag.encode("utf-8"))
    return digest.hexdigest()


def _ir_base_digest(ir: CircuitIR) -> bytes:
    """Whole-IR content digest, cached against the IR's mutation counter."""
    version = ir.version
    cached = ir._content_digest
    if cached is not None and cached[0] == version:
        return cached[1]
    digest = hashlib.sha256()
    for instruction in ir.instructions():
        payload = instruction_content(instruction)
        digest.update(_LEN.pack(len(payload)))
        digest.update(payload)
    value = digest.digest()
    ir._content_digest = (version, value)
    return value


def program_fingerprint(
    program: Union[QuantumCircuit, CircuitIR], *context: str
) -> str:
    """Fingerprint of a whole program in either representation.

    Identical instruction sequences yield identical keys whether held as a
    flat circuit or as an IR; the circuit name is deliberately excluded
    (memoized rewrites are name-independent, matching the template cache).
    """
    digest = hashlib.sha256()
    digest.update(_LEN.pack(program.num_qubits))
    if isinstance(program, CircuitIR):
        digest.update(_ir_base_digest(program))
    else:
        # Same nested-digest form as the IR path, so the two
        # representations of one instruction sequence share a key.
        inner = hashlib.sha256()
        for instruction in program.instructions:
            payload = instruction_content(instruction)
            inner.update(_LEN.pack(len(payload)))
            inner.update(payload)
        digest.update(inner.digest())
    for tag in context:
        digest.update(b"\x00")
        digest.update(tag.encode("utf-8"))
    return digest.hexdigest()


def target_fingerprint(target: Optional[object]) -> str:
    """Content hash of a :class:`~repro.target.target.Target` (or ``None``).

    Hashes the JSON serialization, so two targets with the same device
    payload share memo entries regardless of object identity.
    """
    if target is None:
        return "target:none"
    cached = getattr(target, "_incr_fingerprint", None)
    if cached is None:
        payload = json.dumps(target.to_dict(), sort_keys=True, default=str)
        cached = "target:" + hashlib.sha256(payload.encode("utf-8")).hexdigest()
        try:
            object.__setattr__(target, "_incr_fingerprint", cached)
        except (AttributeError, TypeError):  # slotted/foreign target objects
            pass
    return cached
