"""Incremental recompilation: content-addressed pass memoization.

The subsystem behind ``compile(..., previous=result)`` edit-recompile loops
and the daemon's ``--session`` mode:

* :mod:`repro.incremental.fingerprint` — deterministic, renumbering-
  insensitive, cross-process-stable fingerprints for gates, instructions,
  IR regions, whole programs and targets;
* :mod:`repro.incremental.store` — :class:`PassMemoStore`, the namespaced
  memo store (memory LRU + the concurrency-safe on-disk segment store) that
  :class:`~repro.compiler.passes.base.PassManager` consults for whole-pass
  rewrites and memo-aware passes consult per region.

See ``docs/incremental.md`` for the fingerprinting model and the
memo-safety contract passes must honor.
"""

from repro.incremental.fingerprint import (
    gate_content,
    gate_region_key,
    gates_region_key,
    instruction_content,
    program_fingerprint,
    region_fingerprint,
    target_fingerprint,
)
from repro.incremental.store import MISS, MemoStats, PassMemoStore

__all__ = [
    "MISS",
    "MemoStats",
    "PassMemoStore",
    "gate_content",
    "gate_region_key",
    "gates_region_key",
    "instruction_content",
    "program_fingerprint",
    "region_fingerprint",
    "target_fingerprint",
]
