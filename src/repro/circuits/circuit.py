"""The :class:`QuantumCircuit` intermediate representation.

A circuit is an ordered list of :class:`~repro.circuits.instruction.Instruction`
objects on a fixed number of qubits.  Convenience appenders are provided for
every gate in the standard library, including the ReQISC ``{Can, U3}`` ISA.

Qubit/matrix convention: qubit 0 is the most significant bit of computational
basis indices, and an instruction's first qubit is the most significant qubit
of its gate matrix.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.instruction import Instruction
from repro.gates import standard
from repro.gates.gate import Gate, UnitaryGate

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered sequence of gates on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # Container protocol.
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> List[Instruction]:
        """The (mutable) list of instructions in program order."""
        return self._instructions

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index):
        return self._instructions[index]

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self._instructions)})"
        )

    # ------------------------------------------------------------------
    # Building.
    # ------------------------------------------------------------------
    def append(self, gate: Gate, qubits: Sequence[int]) -> "QuantumCircuit":
        """Append ``gate`` acting on ``qubits``; returns ``self`` for chaining."""
        qubits = tuple(int(q) for q in qubits)
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"qubit {qubit} out of range for a {self.num_qubits}-qubit circuit"
                )
        self._instructions.append(Instruction(gate, qubits))
        return self

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        """Append a sequence of pre-built instructions."""
        for instruction in instructions:
            self.append(instruction.gate, instruction.qubits)
        return self

    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Optional[Sequence[int]] = None,
    ) -> "QuantumCircuit":
        """Append another circuit, optionally remapped onto ``qubits``."""
        if qubits is None:
            qubits = range(other.num_qubits)
        mapping = {local: int(q) for local, q in enumerate(qubits)}
        if len(mapping) != other.num_qubits:
            raise ValueError("qubit mapping must cover every qubit of the composed circuit")
        for instruction in other:
            self.append(instruction.gate, [mapping[q] for q in instruction.qubits])
        return self

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Shallow copy of the circuit (instructions are immutable)."""
        duplicate = QuantumCircuit(self.num_qubits, name or self.name)
        duplicate._instructions = list(self._instructions)
        return duplicate

    def inverse(self) -> "QuantumCircuit":
        """Circuit implementing the adjoint unitary."""
        inverted = QuantumCircuit(self.num_qubits, f"{self.name}_dg")
        for instruction in reversed(self._instructions):
            inverted.append(instruction.gate.dagger(), instruction.qubits)
        return inverted

    def remap_qubits(self, mapping) -> "QuantumCircuit":
        """Return a copy with qubits relabelled through ``mapping``."""
        remapped = QuantumCircuit(self.num_qubits, self.name)
        for instruction in self._instructions:
            remapped._instructions.append(instruction.remap(mapping))
        return remapped

    # ------------------------------------------------------------------
    # Convenience appenders for standard gates.
    # ------------------------------------------------------------------
    def id(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard.i_gate(), [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard.x_gate(), [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard.y_gate(), [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard.z_gate(), [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard.h_gate(), [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard.s_gate(), [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard.sdg_gate(), [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard.t_gate(), [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard.tdg_gate(), [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.append(standard.sx_gate(), [qubit])

    def rx(self, angle: float, qubit: int) -> "QuantumCircuit":
        return self.append(standard.rx_gate(angle), [qubit])

    def ry(self, angle: float, qubit: int) -> "QuantumCircuit":
        return self.append(standard.ry_gate(angle), [qubit])

    def rz(self, angle: float, qubit: int) -> "QuantumCircuit":
        return self.append(standard.rz_gate(angle), [qubit])

    def p(self, angle: float, qubit: int) -> "QuantumCircuit":
        return self.append(standard.p_gate(angle), [qubit])

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(standard.u3_gate(theta, phi, lam), [qubit])

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard.cx_gate(), [control, target])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard.cy_gate(), [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard.cz_gate(), [control, target])

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard.ch_gate(), [control, target])

    def cp(self, angle: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard.cp_gate(angle), [control, target])

    def crz(self, angle: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard.crz_gate(angle), [control, target])

    def cv(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard.cv_gate(), [control, target])

    def cvdg(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(standard.cvdg_gate(), [control, target])

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard.swap_gate(), [qubit_a, qubit_b])

    def iswap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard.iswap_gate(), [qubit_a, qubit_b])

    def sqisw(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard.sqisw_gate(), [qubit_a, qubit_b])

    def b(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard.b_gate(), [qubit_a, qubit_b])

    def can(self, x: float, y: float, z: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard.can_gate(x, y, z), [qubit_a, qubit_b])

    def rxx(self, angle: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard.rxx_gate(angle), [qubit_a, qubit_b])

    def ryy(self, angle: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard.ryy_gate(angle), [qubit_a, qubit_b])

    def rzz(self, angle: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(standard.rzz_gate(angle), [qubit_a, qubit_b])

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        return self.append(standard.ccx_gate(), [control_a, control_b, target])

    def ccz(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        return self.append(standard.ccz_gate(), [control_a, control_b, target])

    def cswap(self, control: int, target_a: int, target_b: int) -> "QuantumCircuit":
        return self.append(standard.cswap_gate(), [control, target_a, target_b])

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        return self.append(standard.mcx_gate(len(controls)), [*controls, target])

    def unitary(self, matrix: np.ndarray, qubits: Sequence[int], label: str = "unitary") -> "QuantumCircuit":
        return self.append(UnitaryGate(matrix, label=label), qubits)

    # ------------------------------------------------------------------
    # Queries and metrics.
    # ------------------------------------------------------------------
    def count_gates(self) -> int:
        """Total number of instructions."""
        return len(self._instructions)

    def count_by_name(self) -> Dict[str, int]:
        """Histogram of gate names."""
        histogram: Dict[str, int] = {}
        for instruction in self._instructions:
            histogram[instruction.gate.name] = histogram.get(instruction.gate.name, 0) + 1
        return histogram

    def two_qubit_instructions(self) -> List[Instruction]:
        """All instructions acting on exactly two qubits."""
        return [instr for instr in self._instructions if instr.is_two_qubit]

    def count_two_qubit_gates(self) -> int:
        """Number of two-qubit gates (the paper's #2Q metric)."""
        return sum(1 for instr in self._instructions if instr.is_two_qubit)

    def max_gate_arity(self) -> int:
        """Largest gate arity appearing in the circuit."""
        return max((instr.num_qubits for instr in self._instructions), default=0)

    def depth(self, *, only_two_qubit: bool = False) -> int:
        """Circuit depth; with ``only_two_qubit`` the paper's Depth2Q metric."""
        frontier = [0] * self.num_qubits
        for instruction in self._instructions:
            counts = not only_two_qubit or instruction.num_qubits >= 2
            level = max(frontier[q] for q in instruction.qubits)
            if counts:
                level += 1
            for qubit in instruction.qubits:
                frontier[qubit] = level
        return max(frontier, default=0)

    def used_qubits(self) -> Tuple[int, ...]:
        """Sorted tuple of qubits touched by at least one instruction."""
        used = set()
        for instruction in self._instructions:
            used.update(instruction.qubits)
        return tuple(sorted(used))

    def duration(self, duration_fn: Callable[[Instruction], float]) -> float:
        """Critical-path duration under a per-instruction duration model."""
        frontier = [0.0] * self.num_qubits
        for instruction in self._instructions:
            start = max(frontier[q] for q in instruction.qubits)
            finish = start + float(duration_fn(instruction))
            for qubit in instruction.qubits:
                frontier[qubit] = finish
        return max(frontier, default=0.0)

    # ------------------------------------------------------------------
    # Simulation helpers.
    # ------------------------------------------------------------------
    def to_unitary(self) -> np.ndarray:
        """Full unitary matrix of the circuit (exponential in qubit count)."""
        from repro.simulators.unitary import circuit_unitary

        return circuit_unitary(self)

    def statevector(self, initial_state: Optional[np.ndarray] = None) -> np.ndarray:
        """Final statevector starting from ``|0...0>`` (or a supplied state)."""
        from repro.simulators.statevector import simulate_statevector

        return simulate_statevector(self, initial_state=initial_state)

    def to_qasm(self) -> str:
        """OpenQASM 2.0 text for the circuit (see :mod:`repro.qasm`).

        Deterministic and exact: ``QuantumCircuit.from_qasm(c.to_qasm())``
        is gate-for-gate identical to ``c``.
        """
        from repro.qasm import dumps

        return dumps(self)

    @classmethod
    def from_qasm(cls, text: str, name: str = "qasm") -> "QuantumCircuit":
        """Parse OpenQASM 2.0 text into a circuit (see :mod:`repro.qasm`)."""
        from repro.qasm import loads

        return loads(text, name=name)

    @classmethod
    def from_qasm_file(cls, path) -> "QuantumCircuit":
        """Parse an OpenQASM 2.0 file; the circuit is named after its stem."""
        from repro.qasm import load

        return load(path)
