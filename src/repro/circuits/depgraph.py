"""Array-based (CSR) dependency graph of a circuit — the compile-time hot path.

The historical representation of gate dependencies was a ``networkx.DiGraph``
(:func:`repro.circuits.dag.circuit_to_dag`).  That is convenient but slow on
the compile hot path: every routing call paid dict-of-dict node/edge storage,
per-node attribute lookups and Python-level successor iteration.

:class:`DependencyGraph` stores the same DAG in three flat numpy arrays per
direction (CSR adjacency): ``indptr``/``indices`` pairs for successors and
predecessors plus an in-degree vector.  Construction is a single O(gates)
scan; successor lookup is an array slice.  The networkx view is still
available through :meth:`DependencyGraph.to_networkx` (and the compatibility
converter :func:`repro.circuits.dag.circuit_to_dag`), so analysis code can
keep using networkx while the hot passes consume the arrays directly.

Edge semantics are identical to the historical DAG: a directed edge
``i -> j`` exists when instruction ``j`` is the next instruction after ``i``
on at least one shared qubit (parallel edges collapse).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction

__all__ = ["DependencyGraph"]


class DependencyGraph:
    """CSR-encoded dependency DAG of a :class:`QuantumCircuit`.

    Nodes are instruction indices ``0..len(circuit)-1`` in program order.
    The per-node successor (and predecessor) lists are stored ascending, the
    same order ``networkx`` reports them for the historical DAG.
    """

    __slots__ = (
        "num_nodes",
        "num_qubits",
        "instructions",
        "succ_indptr",
        "succ_indices",
        "pred_indptr",
        "pred_indices",
        "_indegree",
    )

    def __init__(
        self,
        num_qubits: int,
        instructions: List[Instruction],
        succ_indptr: np.ndarray,
        succ_indices: np.ndarray,
        pred_indptr: np.ndarray,
        pred_indices: np.ndarray,
    ) -> None:
        self.num_qubits = int(num_qubits)
        self.instructions = instructions
        self.num_nodes = len(instructions)
        self.succ_indptr = succ_indptr
        self.succ_indices = succ_indices
        self.pred_indptr = pred_indptr
        self.pred_indices = pred_indices
        self._indegree = np.diff(pred_indptr)

    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "DependencyGraph":
        """Build the dependency graph of ``circuit`` in one O(gates) scan."""
        return cls.from_instructions(circuit.num_qubits, circuit.instructions)

    @classmethod
    def from_instructions(
        cls, num_qubits: int, instructions: List[Instruction]
    ) -> "DependencyGraph":
        """Build the dependency graph of a bare instruction sequence.

        This is the entry point used by :class:`repro.ir.CircuitIR`, whose
        program lives as a node list rather than a circuit; the circuit
        classmethod above is a thin wrapper.
        """
        instructions = list(instructions)
        n = len(instructions)
        last_on_qubit = [-1] * num_qubits
        pred_lists: List[List[int]] = []
        out_counts = [0] * n
        num_edges = 0
        for index, instruction in enumerate(instructions):
            preds: List[int] = []
            for qubit in instruction.qubits:
                previous = last_on_qubit[qubit]
                if previous >= 0 and previous not in preds:
                    preds.append(previous)
                last_on_qubit[qubit] = index
            pred_lists.append(preds)
            num_edges += len(preds)
            for previous in preds:
                out_counts[previous] += 1

        succ_indptr = np.zeros(n + 1, dtype=np.int64)
        pred_indptr = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum(out_counts, out=succ_indptr[1:])
            np.cumsum([len(p) for p in pred_lists], out=pred_indptr[1:])
        succ_indices = np.empty(num_edges, dtype=np.int64)
        pred_indices = np.empty(num_edges, dtype=np.int64)
        fill = succ_indptr[:-1].copy()
        cursor = 0
        for index, preds in enumerate(pred_lists):
            for previous in preds:
                succ_indices[fill[previous]] = index
                fill[previous] += 1
                pred_indices[cursor] = previous
                cursor += 1
        return cls(
            num_qubits,
            instructions,
            succ_indptr,
            succ_indices,
            pred_indptr,
            pred_indices,
        )

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of dependency edges."""
        return int(self.succ_indices.shape[0])

    def instruction(self, node: int) -> Instruction:
        """The :class:`Instruction` at ``node``."""
        return self.instructions[node]

    def successors(self, node: int) -> np.ndarray:
        """Successor node indices (ascending, zero-copy CSR slice)."""
        return self.succ_indices[self.succ_indptr[node] : self.succ_indptr[node + 1]]

    def predecessors(self, node: int) -> np.ndarray:
        """Predecessor node indices (zero-copy CSR slice)."""
        return self.pred_indices[self.pred_indptr[node] : self.pred_indptr[node + 1]]

    def in_degree(self, node: int) -> int:
        """Number of incoming dependency edges."""
        return int(self._indegree[node])

    def out_degree(self, node: int) -> int:
        """Number of outgoing dependency edges."""
        return int(self.succ_indptr[node + 1] - self.succ_indptr[node])

    def indegree_vector(self) -> np.ndarray:
        """Fresh copy of the in-degree vector (callers may decrement it)."""
        return self._indegree.copy()

    def front_layer(self) -> List[int]:
        """Nodes with no predecessors, ascending (the executable front)."""
        return np.flatnonzero(self._indegree == 0).tolist()

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(source, target)`` dependency edges."""
        for node in range(self.num_nodes):
            for successor in self.successors(node):
                yield node, int(successor)

    # ------------------------------------------------------------------
    def topological_layers(self) -> List[List[int]]:
        """ASAP layering: lists of node indices at equal dependency depth.

        Equivalent to repeatedly peeling the front layer off the DAG; nodes
        within a layer are ascending.
        """
        depth = np.zeros(self.num_nodes, dtype=np.int64)
        for node in range(self.num_nodes):
            preds = self.predecessors(node)
            if preds.shape[0]:
                depth[node] = int(depth[preds].max()) + 1
        layers: List[List[int]] = [[] for _ in range(int(depth.max()) + 1)] if self.num_nodes else []
        for node in range(self.num_nodes):
            layers[depth[node]].append(node)
        return layers

    def to_circuit(self, name: str = "circuit") -> QuantumCircuit:
        """Rebuild the circuit (nodes are already topologically ordered)."""
        circuit = QuantumCircuit(self.num_qubits, name)
        for instruction in self.instructions:
            circuit.append(instruction.gate, instruction.qubits)
        return circuit

    def to_networkx(self):
        """The historical ``networkx.DiGraph`` view of this graph."""
        import networkx as nx

        dag = nx.DiGraph()
        dag.graph["num_qubits"] = self.num_qubits
        for node, instruction in enumerate(self.instructions):
            dag.add_node(node, instruction=instruction)
        for node in range(self.num_nodes):
            for successor in self.successors(node):
                dag.add_edge(node, int(successor))
        return dag

    def __repr__(self) -> str:
        return (
            f"DependencyGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"qubits={self.num_qubits})"
        )
