"""Circuit metrics used throughout the evaluation.

The paper reports four circuit-level metrics (Section 6.1.1):

* ``#2Q`` — number of two-qubit gates,
* ``Depth2Q`` — depth of the circuit counting only two-qubit gates,
* pulse duration — critical-path duration under a per-gate duration model,
* program fidelity — computed by the noisy simulator (see
  :mod:`repro.simulators.noise`).

Durations are expressed in units of the inverse coupling strength ``1/g``;
the baseline CNOT duration on XY-coupled hardware is ``pi / sqrt(2) / g``
(Section 6.1, Table 1 caption).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction

__all__ = [
    "BASELINE_CNOT_DURATION",
    "circuit_duration",
    "cnot_isa_duration_model",
    "count_distinct_two_qubit_gates",
    "count_two_qubit_gates",
    "two_qubit_depth",
    "CircuitMetrics",
    "compute_metrics",
]

#: Duration of a conventionally implemented CNOT on XY-coupled transmons, in
#: units of 1/g (Krantz et al.; used as the baseline throughout the paper).
BASELINE_CNOT_DURATION = math.pi / math.sqrt(2.0)


def count_two_qubit_gates(circuit: QuantumCircuit) -> int:
    """The paper's #2Q metric."""
    return circuit.count_two_qubit_gates()


def two_qubit_depth(circuit: QuantumCircuit) -> int:
    """The paper's Depth2Q metric."""
    return circuit.depth(only_two_qubit=True)


def count_distinct_two_qubit_gates(
    circuit: QuantumCircuit, decimals: int = 6
) -> int:
    """Number of *distinct* two-qubit gates, up to parameter rounding.

    This is the calibration-overhead proxy of Section 6.5: each distinct 2Q
    gate must be separately calibrated on hardware.  Gates are identified by
    name and rounded parameters; fused ``UnitaryGate`` blocks are identified
    by their (rounded) canonical Weyl coordinates so that locally equivalent
    blocks count once.
    """
    from repro.gates.gate import UnitaryGate
    from repro.linalg.weyl import weyl_coordinates

    distinct = set()
    for instruction in circuit:
        if not instruction.is_two_qubit:
            continue
        gate = instruction.gate
        if isinstance(gate, UnitaryGate):
            coords = weyl_coordinates(gate.matrix)
            key: Tuple = ("weyl", tuple(round(c, decimals) for c in coords))
        elif gate.name == "can":
            coords = tuple(round(c, decimals) for c in gate.params)
            key = ("weyl", coords)
        else:
            key = (gate.name, tuple(round(p, decimals) for p in gate.params))
        distinct.add(key)
    return len(distinct)


def cnot_isa_duration_model(
    cnot_duration: float = BASELINE_CNOT_DURATION,
    one_qubit_duration: float = 0.0,
) -> Callable[[Instruction], float]:
    """Duration model for CNOT-ISA circuits.

    Every two-qubit gate costs one conventional CNOT duration; single-qubit
    gates are free by default (they are an order of magnitude faster and the
    paper's duration metric only tracks 2Q pulses).
    """

    def model(instruction: Instruction) -> float:
        if instruction.num_qubits >= 2:
            return cnot_duration
        return one_qubit_duration

    return model


def circuit_duration(
    circuit: QuantumCircuit,
    duration_fn: Optional[Callable[[Instruction], float]] = None,
) -> float:
    """Critical-path pulse duration of ``circuit``.

    ``duration_fn`` maps an instruction to its duration; when omitted the
    CNOT-ISA baseline model is used.
    """
    if duration_fn is None:
        duration_fn = cnot_isa_duration_model()
    return circuit.duration(duration_fn)


class CircuitMetrics:
    """Bundle of the paper's circuit-level metrics for one circuit."""

    __slots__ = ("num_qubits", "num_2q", "depth_2q", "duration", "distinct_2q")

    def __init__(
        self,
        num_qubits: int,
        num_2q: int,
        depth_2q: int,
        duration: float,
        distinct_2q: int,
    ) -> None:
        self.num_qubits = num_qubits
        self.num_2q = num_2q
        self.depth_2q = depth_2q
        self.duration = duration
        self.distinct_2q = distinct_2q

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view (used by the experiment harness for CSV rows)."""
        return {
            "num_qubits": self.num_qubits,
            "num_2q": self.num_2q,
            "depth_2q": self.depth_2q,
            "duration": self.duration,
            "distinct_2q": self.distinct_2q,
        }

    def __repr__(self) -> str:
        return (
            f"CircuitMetrics(#2Q={self.num_2q}, Depth2Q={self.depth_2q}, "
            f"T={self.duration:.2f}, distinct={self.distinct_2q})"
        )


def compute_metrics(
    circuit: QuantumCircuit,
    duration_fn: Optional[Callable[[Instruction], float]] = None,
    include_distinct: bool = True,
) -> CircuitMetrics:
    """Compute the full metric bundle for ``circuit``."""
    distinct = count_distinct_two_qubit_gates(circuit) if include_distinct else 0
    return CircuitMetrics(
        num_qubits=circuit.num_qubits,
        num_2q=count_two_qubit_gates(circuit),
        depth_2q=two_qubit_depth(circuit),
        duration=circuit_duration(circuit, duration_fn),
        distinct_2q=distinct,
    )
