"""Minimal OpenQASM 2.0 emitter and parser.

Only the gate subset produced/consumed by this project is supported.  The
emitter allows compiled circuits to be exported in a widely readable format
(mirroring the original artifact, which writes QASM per benchmark); the
parser covers the subset needed to round-trip our own output and to ingest
simple externally produced programs.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List

from repro.circuits.circuit import QuantumCircuit
from repro.gates import standard
from repro.gates.gate import UnitaryGate

__all__ = ["circuit_to_qasm", "qasm_to_circuit"]

_EMITTABLE_NO_PARAM = {
    "id",
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "t",
    "tdg",
    "sx",
    "cx",
    "cy",
    "cz",
    "ch",
    "swap",
    "iswap",
    "ccx",
    "ccz",
    "cswap",
}

_EMITTABLE_PARAM = {"rx", "ry", "rz", "p", "u3", "cp", "crz", "rxx", "ryy", "rzz", "can"}


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize ``circuit`` to OpenQASM 2.0 text.

    Canonical gates are emitted as a custom ``can(x, y, z)`` gate declared in
    the header; fused unitary blocks cannot be serialized and raise.
    """
    lines: List[str] = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        "// can(x,y,z) = exp(-i (x XX + y YY + z ZZ)); custom ReQISC primitive",
        f"qreg q[{circuit.num_qubits}];",
    ]
    for instruction in circuit:
        gate = instruction.gate
        if isinstance(gate, UnitaryGate):
            raise ValueError(
                "fused unitary blocks cannot be serialized to QASM; "
                "synthesize them into named gates first"
            )
        qubits = ",".join(f"q[{q}]" for q in instruction.qubits)
        if gate.name in _EMITTABLE_NO_PARAM:
            lines.append(f"{gate.name} {qubits};")
        elif gate.name in _EMITTABLE_PARAM:
            params = ",".join(f"{p:.12g}" for p in gate.params)
            lines.append(f"{gate.name}({params}) {qubits};")
        elif gate.name == "mcx":
            raise ValueError("decompose mcx gates before QASM export")
        else:
            raise ValueError(f"gate {gate.name!r} has no QASM serialization")
    return "\n".join(lines) + "\n"


_GATE_LINE = re.compile(
    r"^\s*(?P<name>[a-z_][a-z0-9_]*)\s*(\((?P<params>[^)]*)\))?\s+(?P<args>.+?)\s*;\s*$"
)
_QREG_LINE = re.compile(r"^\s*qreg\s+(?P<name>\w+)\s*\[\s*(?P<size>\d+)\s*\]\s*;\s*$")
_QUBIT_REF = re.compile(r"^\s*(?P<reg>\w+)\s*\[\s*(?P<index>\d+)\s*\]\s*$")

_CONSTRUCTORS = {
    "id": standard.i_gate,
    "x": standard.x_gate,
    "y": standard.y_gate,
    "z": standard.z_gate,
    "h": standard.h_gate,
    "s": standard.s_gate,
    "sdg": standard.sdg_gate,
    "t": standard.t_gate,
    "tdg": standard.tdg_gate,
    "sx": standard.sx_gate,
    "cx": standard.cx_gate,
    "cy": standard.cy_gate,
    "cz": standard.cz_gate,
    "ch": standard.ch_gate,
    "swap": standard.swap_gate,
    "iswap": standard.iswap_gate,
    "ccx": standard.ccx_gate,
    "ccz": standard.ccz_gate,
    "cswap": standard.cswap_gate,
}

_PARAM_CONSTRUCTORS = {
    "rx": standard.rx_gate,
    "ry": standard.ry_gate,
    "rz": standard.rz_gate,
    "p": standard.p_gate,
    "u3": standard.u3_gate,
    "u": standard.u3_gate,
    "cp": standard.cp_gate,
    "cu1": standard.cp_gate,
    "crz": standard.crz_gate,
    "rxx": standard.rxx_gate,
    "ryy": standard.ryy_gate,
    "rzz": standard.rzz_gate,
    "can": standard.can_gate,
}


def _evaluate_parameter(text: str) -> float:
    """Evaluate a QASM parameter expression (numbers, pi, + - * /)."""
    allowed = {"pi": math.pi}
    expression = text.strip()
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\(\)\s]*|.*pi.*", expression):
        raise ValueError(f"unsupported parameter expression: {text!r}")
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\(\)\spi]*", expression):
        raise ValueError(f"unsupported parameter expression: {text!r}")
    return float(eval(expression, {"__builtins__": {}}, allowed))  # noqa: S307


def qasm_to_circuit(text: str) -> QuantumCircuit:
    """Parse a (subset of) OpenQASM 2.0 program into a circuit."""
    registers: Dict[str, int] = {}
    offsets: Dict[str, int] = {}
    total_qubits = 0
    pending: List[str] = []
    for raw_line in text.splitlines():
        line = raw_line.split("//", 1)[0].strip()
        if not line:
            continue
        if line.startswith(("OPENQASM", "include", "barrier", "creg", "measure")):
            continue
        match = _QREG_LINE.match(line)
        if match:
            name = match.group("name")
            size = int(match.group("size"))
            offsets[name] = total_qubits
            registers[name] = size
            total_qubits += size
            continue
        pending.append(line)
    if total_qubits == 0:
        raise ValueError("QASM program declares no qubit register")

    circuit = QuantumCircuit(total_qubits, name="qasm")
    for line in pending:
        match = _GATE_LINE.match(line)
        if not match:
            raise ValueError(f"could not parse QASM line: {line!r}")
        name = match.group("name")
        params_text = match.group("params")
        args = [arg for arg in match.group("args").split(",")]
        qubits = []
        for arg in args:
            ref = _QUBIT_REF.match(arg)
            if not ref:
                raise ValueError(f"unsupported qubit reference {arg!r}")
            register = ref.group("reg")
            index = int(ref.group("index"))
            if register not in offsets or index >= registers[register]:
                raise ValueError(f"unknown qubit {arg!r}")
            qubits.append(offsets[register] + index)
        if name in _CONSTRUCTORS:
            circuit.append(_CONSTRUCTORS[name](), qubits)
        elif name in _PARAM_CONSTRUCTORS:
            if params_text is None:
                raise ValueError(f"gate {name!r} requires parameters")
            params = [_evaluate_parameter(p) for p in params_text.split(",")]
            circuit.append(_PARAM_CONSTRUCTORS[name](*params), qubits)
        else:
            raise ValueError(f"unsupported QASM gate {name!r}")
    return circuit
