"""Compatibility aliases for the :mod:`repro.qasm` interchange package.

The original minimal emitter/parser that lived here grew into the
full OpenQASM 2 tokenizer + recursive-descent importer of
:mod:`repro.qasm`; these thin wrappers keep the historical function
names importable.  New code should use ``repro.qasm.dumps`` /
``repro.qasm.loads`` (or the :meth:`QuantumCircuit.to_qasm` /
:meth:`QuantumCircuit.from_qasm` conveniences) directly.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.qasm import dumps, loads

__all__ = ["circuit_to_qasm", "qasm_to_circuit"]


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize ``circuit`` to OpenQASM 2.0 text (alias of ``repro.qasm.dumps``)."""
    return dumps(circuit)


def qasm_to_circuit(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 text (alias of ``repro.qasm.loads``)."""
    return loads(text)
