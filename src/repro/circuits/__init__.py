"""Circuit intermediate representation: instructions, circuits, DAGs, metrics."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction
from repro.circuits.dag import circuit_to_dag, dag_to_circuit, layers
from repro.circuits.depgraph import DependencyGraph
from repro.circuits.metrics import (
    circuit_duration,
    count_distinct_two_qubit_gates,
    count_two_qubit_gates,
    two_qubit_depth,
)

__all__ = [
    "QuantumCircuit",
    "Instruction",
    "DependencyGraph",
    "circuit_to_dag",
    "dag_to_circuit",
    "layers",
    "circuit_duration",
    "count_distinct_two_qubit_gates",
    "count_two_qubit_gates",
    "two_qubit_depth",
]
