"""A single circuit instruction: a gate applied to an ordered tuple of qubits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.gates.gate import Gate

__all__ = ["Instruction"]


@dataclass(frozen=True)
class Instruction:
    """A gate bound to specific circuit qubits.

    ``qubits`` is ordered: for controlled gates the control(s) come first,
    matching the gate's matrix convention (first qubit = most significant).
    """

    gate: Gate
    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        if len(self.qubits) != self.gate.num_qubits:
            raise ValueError(
                f"gate {self.gate.name!r} acts on {self.gate.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in instruction: {self.qubits}")

    @classmethod
    def unchecked(cls, gate: Gate, qubits: Tuple[int, ...]) -> "Instruction":
        """Build an instruction without re-validating ``qubits``.

        Hot-path constructor for callers that already hold a tuple of
        distinct Python ints matching the gate arity (e.g. the router, which
        derives qubits from a validated layout).  Skips ``__post_init__``.
        """
        instruction = object.__new__(cls)
        object.__setattr__(instruction, "gate", gate)
        object.__setattr__(instruction, "qubits", qubits)
        return instruction

    @property
    def num_qubits(self) -> int:
        """Arity of the underlying gate."""
        return self.gate.num_qubits

    @property
    def is_two_qubit(self) -> bool:
        """True when the instruction acts on exactly two qubits."""
        return self.gate.num_qubits == 2

    def remap(self, mapping) -> "Instruction":
        """Return a copy with qubits relabelled through ``mapping`` (dict or callable)."""
        if callable(mapping):
            qubits = tuple(mapping(q) for q in self.qubits)
        else:
            qubits = tuple(mapping[q] for q in self.qubits)
        return Instruction(self.gate, qubits)

    def __repr__(self) -> str:
        qubits = ", ".join(str(q) for q in self.qubits)
        return f"{self.gate!r} @ ({qubits})"
