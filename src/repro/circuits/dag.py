"""Directed-acyclic-graph view of a circuit.

Nodes are instruction indices; a directed edge ``i -> j`` exists when
instruction ``j`` is the next instruction after ``i`` on at least one shared
qubit.  The DAG is the representation used by the partitioning, DAG-compacting
and routing passes.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction

__all__ = ["circuit_to_dag", "dag_to_circuit", "layers", "front_layer"]


def circuit_to_dag(circuit: QuantumCircuit) -> nx.DiGraph:
    """Build the dependency DAG of ``circuit``.

    Each node carries the corresponding :class:`Instruction` under the
    ``"instruction"`` attribute.
    """
    dag = nx.DiGraph()
    dag.graph["num_qubits"] = circuit.num_qubits
    last_on_qubit: Dict[int, int] = {}
    for index, instruction in enumerate(circuit):
        dag.add_node(index, instruction=instruction)
        for qubit in instruction.qubits:
            previous = last_on_qubit.get(qubit)
            if previous is not None:
                dag.add_edge(previous, index)
            last_on_qubit[qubit] = index
    return dag


def dag_to_circuit(dag: nx.DiGraph, num_qubits: int = None, name: str = "circuit") -> QuantumCircuit:
    """Rebuild a circuit from a dependency DAG (topological order)."""
    if num_qubits is None:
        num_qubits = dag.graph.get("num_qubits")
    if num_qubits is None:
        raise ValueError("number of qubits not recorded on the DAG; pass num_qubits")
    circuit = QuantumCircuit(num_qubits, name)
    for node in nx.lexicographical_topological_sort(dag):
        instruction: Instruction = dag.nodes[node]["instruction"]
        circuit.append(instruction.gate, instruction.qubits)
    return circuit


def front_layer(dag: nx.DiGraph) -> List[int]:
    """Nodes with no predecessors (the executable front of the DAG)."""
    return [node for node in dag.nodes if dag.in_degree(node) == 0]


def layers(circuit: QuantumCircuit) -> List[List[Instruction]]:
    """Partition a circuit into greedy layers of mutually disjoint gates."""
    result: List[List[Instruction]] = []
    frontier: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    for instruction in circuit:
        level = max(frontier[q] for q in instruction.qubits)
        if level == len(result):
            result.append([])
        result[level].append(instruction)
        for qubit in instruction.qubits:
            frontier[qubit] = level + 1
    return result
