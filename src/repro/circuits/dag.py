"""Directed-acyclic-graph view of a circuit (networkx compatibility layer).

Nodes are instruction indices; a directed edge ``i -> j`` exists when
instruction ``j`` is the next instruction after ``i`` on at least one shared
qubit.

The compile hot path no longer consumes ``networkx`` graphs — routing and
layering build a :class:`repro.circuits.depgraph.DependencyGraph` (flat CSR
arrays) instead.  :func:`circuit_to_dag` remains as the compatibility
converter for analysis and test code that wants the rich networkx API; it is
now a thin wrapper over the array representation.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.depgraph import DependencyGraph
from repro.circuits.instruction import Instruction

__all__ = ["circuit_to_dag", "dag_to_circuit", "layers", "front_layer"]


def circuit_to_dag(circuit: QuantumCircuit) -> nx.DiGraph:
    """Build the dependency DAG of ``circuit`` as a ``networkx.DiGraph``.

    Each node carries the corresponding :class:`Instruction` under the
    ``"instruction"`` attribute.  Prefer
    :meth:`repro.circuits.depgraph.DependencyGraph.from_circuit` on hot
    paths; this converter exists for networkx-based analysis code.
    """
    return DependencyGraph.from_circuit(circuit).to_networkx()


def dag_to_circuit(dag: nx.DiGraph, num_qubits: int = None, name: str = "circuit") -> QuantumCircuit:
    """Rebuild a circuit from a dependency DAG (topological order)."""
    if num_qubits is None:
        num_qubits = dag.graph.get("num_qubits")
    if num_qubits is None:
        raise ValueError("number of qubits not recorded on the DAG; pass num_qubits")
    circuit = QuantumCircuit(num_qubits, name)
    for node in nx.lexicographical_topological_sort(dag):
        instruction: Instruction = dag.nodes[node]["instruction"]
        circuit.append(instruction.gate, instruction.qubits)
    return circuit


def front_layer(dag: nx.DiGraph) -> List[int]:
    """Nodes with no predecessors (the executable front of the DAG)."""
    return [node for node in dag.nodes if dag.in_degree(node) == 0]


def layers(circuit: QuantumCircuit) -> List[List[Instruction]]:
    """Partition a circuit into greedy layers of mutually disjoint gates.

    Computed from the array-based dependency graph: a gate's layer is its
    dependency depth (ASAP schedule), which coincides with the greedy
    qubit-frontier layering because a gate's predecessors are exactly the
    previous gates on its qubits.
    """
    graph = DependencyGraph.from_circuit(circuit)
    return [
        [graph.instructions[node] for node in layer]
        for layer in graph.topological_layers()
    ]
