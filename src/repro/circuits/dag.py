"""Directed-acyclic-graph view of a circuit (networkx compatibility layer).

Nodes are instruction indices; a directed edge ``i -> j`` exists when
instruction ``j`` is the next instruction after ``i`` on at least one shared
qubit.

.. deprecated::
    The compiler no longer consumes ``networkx`` graphs anywhere — hot paths
    build a :class:`repro.circuits.depgraph.DependencyGraph` (flat CSR
    arrays) and the pipeline threads a mutable :class:`repro.ir.CircuitIR`.
    :func:`circuit_to_dag` and :func:`layers` now emit a
    ``DeprecationWarning`` pointing at those replacements;
    ``DependencyGraph.to_networkx()`` remains the supported way to obtain a
    rich networkx view for ad-hoc analysis.
"""

from __future__ import annotations

import warnings
from typing import List

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.depgraph import DependencyGraph
from repro.circuits.instruction import Instruction

__all__ = ["circuit_to_dag", "dag_to_circuit", "layers", "front_layer"]


def circuit_to_dag(circuit: QuantumCircuit) -> nx.DiGraph:
    """Build the dependency DAG of ``circuit`` as a ``networkx.DiGraph``.

    .. deprecated::
        Use :meth:`repro.circuits.depgraph.DependencyGraph.from_circuit`
        (arrays, hot-path safe) or
        :meth:`repro.ir.CircuitIR.dependency_graph` (shared, cached inside
        the pipeline); call ``.to_networkx()`` on either when the rich
        networkx API is genuinely needed.
    """
    warnings.warn(
        "circuit_to_dag is deprecated; build a DependencyGraph "
        "(repro.circuits.depgraph) or a CircuitIR (repro.ir) and call "
        ".to_networkx() when a networkx view is needed",
        DeprecationWarning,
        stacklevel=2,
    )
    return DependencyGraph.from_circuit(circuit).to_networkx()


def dag_to_circuit(dag: nx.DiGraph, num_qubits: int = None, name: str = "circuit") -> QuantumCircuit:
    """Rebuild a circuit from a dependency DAG (topological order)."""
    if num_qubits is None:
        num_qubits = dag.graph.get("num_qubits")
    if num_qubits is None:
        raise ValueError("number of qubits not recorded on the DAG; pass num_qubits")
    circuit = QuantumCircuit(num_qubits, name)
    for node in nx.lexicographical_topological_sort(dag):
        instruction: Instruction = dag.nodes[node]["instruction"]
        circuit.append(instruction.gate, instruction.qubits)
    return circuit


def front_layer(dag: nx.DiGraph) -> List[int]:
    """Nodes with no predecessors (the executable front of the DAG)."""
    return [node for node in dag.nodes if dag.in_degree(node) == 0]


def layers(circuit: QuantumCircuit) -> List[List[Instruction]]:
    """Partition a circuit into greedy layers of mutually disjoint gates.

    .. deprecated::
        Use :meth:`repro.circuits.depgraph.DependencyGraph.topological_layers`
        or :meth:`repro.ir.CircuitIR.layers` — both return the same ASAP
        layering without the deprecated converter in the middle.
    """
    warnings.warn(
        "layers is deprecated; use DependencyGraph.topological_layers() "
        "(repro.circuits.depgraph) or CircuitIR.layers() (repro.ir)",
        DeprecationWarning,
        stacklevel=2,
    )
    graph = DependencyGraph.from_circuit(circuit)
    return [
        [graph.instructions[node] for node in layer]
        for layer in graph.topological_layers()
    ]
