"""Parallel batch compilation with deterministic seeding.

The :class:`BatchCompiler` accepts a list of circuits (or a whole workload
suite) and fans compilation out across worker processes via
:mod:`concurrent.futures`, mirroring the decoupled submit/collect structure of
the paper's evaluation harness:

* **Deterministic seeding** — job ``i`` always compiles with seed
  ``base_seed + i`` in a compiler instance built fresh for that job, so the
  output of a parallel batch is bit-identical to compiling the same circuits
  sequentially (and independent of worker count or scheduling order).
* **Ordered collection** — results come back in submission order regardless
  of which worker finished first.
* **Cache mediation** — each worker process owns a
  :class:`~repro.service.cache.SynthesisCache`; when the batch cache has a
  disk tier, workers share synthesis results through it.  Exact-byte cache
  keys guarantee that cache hits never change compiled output.

Usage::

    from repro.service.batch import BatchCompiler

    engine = BatchCompiler(compiler="reqisc-eff", workers=4,
                           cache=SynthesisCache(directory=".repro-cache"))
    batch = engine.compile_suite(scale="small", categories=["qft", "tof"])
    for row in batch.summaries():
        print(row)
    print(batch.cache_stats.as_dict())
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.reqisc import CompilationResult
from repro.service.cache import CacheStats, SynthesisCache

__all__ = ["BatchCompiler", "BatchItem", "BatchResult", "CompileJob"]


@dataclass(frozen=True)
class CompileJob:
    """One unit of batch work: a named circuit plus its compiler spec.

    ``target`` is a :class:`~repro.target.target.Target`, a preset name
    (resolved per circuit at compile time) or ``None`` for the default
    device; it must be picklable since jobs cross process boundaries.
    Jobs submitted as QASM paths carry ``qasm_path`` instead of a circuit;
    the file is loaded worker-side so a broken corpus file becomes that
    item's error rather than aborting the whole batch.
    """

    index: int
    name: str
    circuit: Optional[QuantumCircuit]
    compiler: str
    seed: int
    target: Optional[Any] = None
    options: Tuple[Tuple[str, Any], ...] = ()
    qasm_path: Optional[str] = None


@dataclass
class BatchItem:
    """Outcome of one job: a result or a captured error, plus cache counters."""

    index: int
    name: str
    compiler: str
    seed: int
    result: Optional[CompilationResult] = None
    error: Optional[str] = None
    cache_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def ok(self) -> bool:
        """True when compilation succeeded."""
        return self.result is not None


@dataclass
class BatchResult:
    """Ordered batch outcome plus aggregate statistics."""

    items: List[BatchItem]
    workers: int
    elapsed_seconds: float
    cache_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def results(self) -> List[Optional[CompilationResult]]:
        """Per-job compilation results, in submission order (``None`` on error)."""
        return [item.result for item in self.items]

    @property
    def errors(self) -> List[Tuple[str, str]]:
        """``(name, message)`` pairs of the jobs that failed."""
        return [(item.name, item.error) for item in self.items if item.error]

    def summaries(self) -> List[Dict[str, Any]]:
        """One flat row per successful job (``CompilationResult.summary()``
        extended with the job identity), ready for JSON/CSV serialization."""
        rows: List[Dict[str, Any]] = []
        for item in self.items:
            if item.result is None:
                continue
            row: Dict[str, Any] = {
                "benchmark": item.name,
                "num_qubits": item.result.circuit.num_qubits,
            }
            row.update(item.result.summary())
            rows.append(row)
        return rows


# ---------------------------------------------------------------------------
# Worker-side machinery.  ``_WORKER_CACHE`` is one cache per worker process,
# created by the pool initializer; with a disk-backed spec every worker reads
# and writes the same content-addressed store.
# ---------------------------------------------------------------------------

_WORKER_CACHE: Optional[SynthesisCache] = None


def _init_worker(cache_spec: Optional[Tuple[Optional[int], Optional[str]]]) -> None:
    """Pool initializer: build this worker's synthesis cache from its spec."""
    global _WORKER_CACHE
    if cache_spec is None:
        _WORKER_CACHE = None
    else:
        capacity, directory = cache_spec
        _WORKER_CACHE = SynthesisCache(capacity=capacity, directory=directory)


def _compile_job(job: CompileJob, cache: Optional[SynthesisCache]) -> BatchItem:
    """Compile one job with a fresh compiler instance; never raises."""
    from repro.experiments.common import build_compilers

    before = cache.stats.snapshot() if cache is not None else CacheStats()
    item = BatchItem(index=job.index, name=job.name, compiler=job.compiler, seed=job.seed)
    try:
        circuit = job.circuit
        if circuit is None:
            from repro.qasm import load

            circuit = load(job.qasm_path)
        registry = build_compilers(
            [job.compiler],
            seed=job.seed,
            synthesis_cache=cache,
            target=job.target,
            **dict(job.options),
        )
        item.result = registry[job.compiler].compile(circuit)
    except Exception as exc:  # noqa: BLE001 — batch items report, not crash
        item.error = f"{type(exc).__name__}: {exc}"
    if cache is not None:
        item.cache_stats = cache.stats.delta_since(before)
    return item


def _compile_job_pooled(job: CompileJob) -> BatchItem:
    """Top-level (picklable) entry point executed inside pool workers."""
    return _compile_job(job, _WORKER_CACHE)


class BatchCompiler:
    """Fan a list of circuits out across worker processes.

    Parameters
    ----------
    compiler:
        Compiler name resolved through
        :func:`repro.experiments.common.build_compilers` (``reqisc-full``,
        ``reqisc-eff``, ``qiskit-like``, ...).
    workers:
        Number of worker processes; ``1`` (default) compiles sequentially
        in-process.  Output is identical either way.
    seed:
        Base seed; job ``i`` compiles with ``seed + i``.
    cache:
        Optional :class:`~repro.service.cache.SynthesisCache`.  Sequential
        runs use it directly; parallel workers build their own cache with the
        same capacity/directory spec (a disk directory makes it shared).
    target:
        Device to compile for: a :class:`~repro.target.target.Target`, a
        preset name such as ``"xy-line"`` (sized per circuit), or ``None``
        for the default logical device.
    compiler_options:
        Extra keyword arguments forwarded to ``build_compilers`` (for example
        ``coupling_map`` or ``full_synthesis_budget``).
    """

    def __init__(
        self,
        compiler: str = "reqisc-full",
        workers: int = 1,
        seed: int = 0,
        cache: Optional[SynthesisCache] = None,
        target: Optional[Any] = None,
        compiler_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.compiler = compiler
        self.workers = workers
        self.seed = seed
        self.cache = cache
        self.target = target
        self.compiler_options = dict(compiler_options or {})

    # ------------------------------------------------------------------
    def compile_all(self, circuits: Iterable[Any]) -> BatchResult:
        """Compile every entry of ``circuits`` and collect ordered results.

        Entries may be :class:`QuantumCircuit` objects, ``(name, circuit)``
        pairs, paths to OpenQASM 2.0 files (``str``/``os.PathLike``, loaded
        via :func:`repro.qasm.load` and named after the file stem), or any
        object with ``.circuit`` (and optionally ``.name``) attributes — in
        particular :class:`~repro.workloads.suite.BenchmarkCase`.  A circuit
        submitted as QASM compiles bit-identically to the same circuit
        submitted in memory: the importer reconstructs the exact gate list
        and the synthesis cache keys on exact matrix bytes either way.
        """
        jobs = self._normalize(circuits)
        start = time.perf_counter()
        if self.workers == 1 or len(jobs) <= 1:
            items = [_compile_job(job, self.cache) for job in jobs]
        else:
            cache_spec = None
            if self.cache is not None:
                cache_spec = (self.cache.capacity, self.cache.directory)
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(jobs)),
                initializer=_init_worker,
                initargs=(cache_spec,),
            ) as pool:
                # ``map`` yields in submission order: ordered collection.
                items = list(pool.map(_compile_job_pooled, jobs))
        elapsed = time.perf_counter() - start

        aggregate = CacheStats()
        for item in items:
            aggregate.merge(item.cache_stats)
        return BatchResult(
            items=items, workers=self.workers, elapsed_seconds=elapsed, cache_stats=aggregate
        )

    def compile_suite(
        self,
        scale: str = "small",
        categories: Optional[Sequence[str]] = None,
        max_qubits: Optional[int] = None,
    ) -> BatchResult:
        """Compile a :func:`~repro.workloads.suite.benchmark_suite` selection."""
        from repro.workloads.suite import benchmark_suite

        cases = benchmark_suite(scale=scale, categories=categories, max_qubits=max_qubits)
        return self.compile_all(cases)

    # ------------------------------------------------------------------
    def _normalize(self, circuits: Iterable[Any]) -> List[CompileJob]:
        options = tuple(sorted(self.compiler_options.items()))
        jobs: List[CompileJob] = []
        import os

        for index, entry in enumerate(circuits):
            qasm_path = None
            if isinstance(entry, QuantumCircuit):
                name, circuit = entry.name, entry
            elif isinstance(entry, (str, os.PathLike)):
                # Loaded worker-side (see CompileJob) so one broken corpus
                # file fails its own item, not the batch.
                qasm_path = os.fspath(entry)
                circuit = None
                name = os.path.splitext(os.path.basename(qasm_path))[0] or qasm_path
            elif hasattr(entry, "circuit"):
                circuit = entry.circuit
                name = getattr(entry, "name", circuit.name)
            else:
                name, circuit = entry
            jobs.append(
                CompileJob(
                    index=index,
                    name=str(name),
                    circuit=circuit,
                    compiler=self.compiler,
                    seed=self.seed + index,
                    target=self.target,
                    options=options,
                    qasm_path=qasm_path,
                )
            )
        return jobs
