"""Persistent sharded worker pool of the ``repro serve`` daemon.

Unlike :class:`~repro.service.batch.BatchCompiler`, which forks a fresh
process pool per batch and tears it down afterwards, this pool keeps its
workers alive across jobs: each worker owns a warm
:class:`~repro.service.cache.SynthesisCache` (memory tier hot, disk tier
shared through the segment store) and module imports are paid once, not per
request.  The design borrows the decoupled submit/complete structure of
asynchronous device pools (CXLMemUring in PAPERS.md): callers get a future
at submit time, a single pump thread moves jobs and completions.

Isolation properties (proven by ``tests/test_service_server.py``):

* **Sharding.**  A job's content-hash key pins it to one worker
  (``int(key, 16) % workers``), so repeated submissions of the same circuit
  hit the same warm memory cache.  Each worker has its *own* request and
  response queues — a wedged worker never blocks another worker's traffic,
  and a killed worker's queues are discarded wholesale (a queue shared with
  other workers could be corrupted by killing a process mid-``put``).
* **One outstanding job per worker.**  Queued jobs wait server-side in
  per-shard deques; a worker only ever holds the job it is running.  The
  pump thread can therefore enforce per-job deadlines exactly: kill the
  process, fail that job alone, respawn, dispatch the shard's next job.
* **Crash containment.**  A worker that dies (injected ``exit`` fault,
  segfault, OOM kill) fails only the job it was running; the pool respawns
  the worker and the shard keeps draining.  Results are never reordered
  across a respawn because the shard's pending deque lives in the parent.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import multiprocessing
import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["PoolJob", "JobOutcome", "WorkerPool"]

#: Deadline used for a chaos-injected clock skew: the job's real deadline
#: collapses to (almost) now, so the pump enforces it the way it would a
#: wildly skewed clock — kill, fail with a retriable ``timeout``, respawn.
_CLOCK_SKEW_DEADLINE_SECONDS = 0.02

#: Pump-thread poll interval; bounds added latency per completion.
_POLL_SECONDS = 0.005
#: Grace given to workers to drain their sentinel at shutdown.
_SHUTDOWN_GRACE_SECONDS = 2.0


@dataclass(frozen=True)
class PoolJob:
    """One compile job, picklable for the worker boundary.

    ``key`` is the request's content-hash (dedup identity); it also selects
    the shard, unless ``session`` is set — session jobs are pinned to the
    session's shard so edited resubmissions hit the same worker's warm
    per-session pass-memo store.  ``fault`` is the test-only injected
    failure mode (see :data:`repro.service.protocol.FAULT_MODES`).
    ``priority`` (0–9, higher first) orders each shard's backlog and decides
    what :meth:`WorkerPool.shed` drops under degraded load.
    """

    key: str
    qasm: str
    compiler: str = "reqisc-eff"
    seed: int = 0
    target: Optional[str] = None
    timeout: float = 60.0
    fault: Optional[str] = None
    session: Optional[str] = None
    priority: int = 5


@dataclass
class JobOutcome:
    """What came back for one job: a payload or a structured failure."""

    key: str
    ok: bool
    payload: Optional[Dict[str, Any]] = None  # qasm, summary, cache, elapsed
    error_code: Optional[str] = None
    error_message: Optional[str] = None
    worker: int = -1
    elapsed_seconds: float = 0.0


@dataclass
class _WorkerSlot:
    """Parent-side state of one worker: process, queues, shard backlog."""

    index: int
    process: Optional[multiprocessing.Process] = None
    inbox: Optional[Any] = None  # mp.Queue of PoolJob
    outbox: Optional[Any] = None  # mp.Queue of (key, ok, payload, code, message, elapsed)
    running: Optional[Tuple[PoolJob, Future, float]] = None  # job, future, deadline
    backlog: Deque[Tuple[PoolJob, Future]] = field(default_factory=collections.deque)
    generation: int = 0
    injected: Optional[str] = None  # chaos fault riding on the running job


#: Per-worker bound on live session memo stores (oldest evicted first).
_MAX_SESSION_MEMOS = 8


def _execute_job(job: PoolJob, cache, memo=None) -> Tuple[bool, Any, Optional[str], Optional[str]]:
    """Worker-side job body; returns (ok, payload, error_code, error_message)."""
    from repro.service.protocol import ERR_COMPILE

    if job.fault == "raise":
        raise RuntimeError("injected fault: raise")
    if job.fault == "hang":
        time.sleep(3600.0)
    if job.fault == "exit":
        os._exit(17)

    from repro.experiments.common import build_compilers
    from repro.qasm import QasmError, dumps, loads
    from repro.service.cache import CacheStats

    before = cache.stats.snapshot() if cache is not None else CacheStats()
    memo_before = memo.stats.snapshot() if memo is not None else None
    start = time.perf_counter()
    try:
        circuit = loads(job.qasm)
        registry = build_compilers(
            [job.compiler], seed=job.seed, synthesis_cache=cache, target=job.target
        )
        engine = registry[job.compiler]
        engine.memo = memo
        result = engine.compile(circuit)
    except QasmError as exc:
        return False, None, ERR_COMPILE, f"QasmError: {exc}"
    except Exception as exc:  # noqa: BLE001 — a poisoned circuit fails alone
        return False, None, ERR_COMPILE, f"{type(exc).__name__}: {exc}"
    elapsed = time.perf_counter() - start
    delta = cache.stats.delta_since(before) if cache is not None else CacheStats()
    counters = delta.as_dict()
    if memo is not None:
        memo_delta = memo.stats.delta_since(memo_before)
        counters.update({f"memo_{k}": v for k, v in memo_delta.as_dict().items()})
    payload = {
        "qasm": dumps(result.circuit),
        "summary": result.summary(),
        "cache": counters,
        "compile_seconds": elapsed,
    }
    return True, payload, None, None


def _session_memo(session: Optional[str], memos, cache):
    """Fetch-or-create the worker's memo store for ``session`` (LRU, bounded).

    Session stores share the worker's warm :class:`SynthesisCache` when one
    exists — memo entries then persist through the same disk segment store —
    and otherwise own a private in-memory cache.
    """
    if session is None:
        return None
    memo = memos.pop(session, None)
    if memo is None:
        from repro.incremental import PassMemoStore

        memo = PassMemoStore(backing=cache) if cache is not None else PassMemoStore()
    memos[session] = memo  # most-recently-used position
    while len(memos) > _MAX_SESSION_MEMOS:
        _, evicted = memos.popitem(last=False)
        evicted.close()
    return memo


def _worker_main(worker_index: int, inbox, outbox, cache_spec, fault_plan=None) -> None:
    """Worker process loop: one job at a time until the ``None`` sentinel."""
    from repro.service.cache import SynthesisCache
    from repro.service.protocol import ERR_COMPILE

    cache = None
    if cache_spec is not None:
        capacity, directory = cache_spec
        cache = SynthesisCache(capacity=capacity, directory=directory)
        if fault_plan is not None:
            # Chaos cache layer: the plan crosses the fork as a plain value;
            # each worker owns a fresh injector over its own write stream.
            cache.fault_injector = fault_plan.injector("cache")
    memos: "collections.OrderedDict[str, Any]" = collections.OrderedDict()
    try:
        while True:
            job = inbox.get()
            if job is None:
                break
            start = time.perf_counter()
            try:
                memo = _session_memo(job.session, memos, cache)
                ok, payload, code, message = _execute_job(job, cache, memo)
            except Exception as exc:  # noqa: BLE001 — report, don't die
                ok, payload = False, None
                code, message = ERR_COMPILE, f"{type(exc).__name__}: {exc}"
            elapsed = time.perf_counter() - start
            outbox.put((job.key, ok, payload, code, message, elapsed))
    finally:
        for memo in memos.values():
            memo.close()
        if cache is not None:
            cache.close()


class WorkerPool:
    """``workers`` persistent compile processes with per-job deadlines.

    Parameters
    ----------
    workers:
        Number of worker processes (shards).
    cache_spec:
        ``(capacity, directory)`` passed to each worker's
        :class:`~repro.service.cache.SynthesisCache`, or ``None`` to run
        cacheless.  A shared ``directory`` makes workers exchange synthesis
        results through the concurrency-safe segment store.
    default_timeout:
        Per-job deadline in seconds when a job does not carry its own.
    fault_plan:
        Optional :class:`~repro.resilience.faultplan.FaultPlan`.  The pool
        arms its ``worker`` layer (inject ``raise``/``hang``/``exit`` into
        dispatched jobs that do not already carry an explicit test fault)
        and its ``clock`` layer (collapse a job's deadline to now, modelling
        a skewed clock).  Chaos soaks only — never in production.
    """

    def __init__(
        self,
        workers: int = 2,
        cache_spec: Optional[Tuple[Optional[int], Optional[str]]] = None,
        default_timeout: float = 60.0,
        fault_plan: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if "fork" in multiprocessing.get_all_start_methods():
            # Workers inherit loaded modules: respawn after a crash costs
            # milliseconds instead of a full interpreter + numpy re-import.
            self._ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context()
        self.workers = workers
        self.cache_spec = cache_spec
        self.default_timeout = default_timeout
        self._slots = [_WorkerSlot(index=i) for i in range(workers)]
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._respawns = 0
        self._timeouts = 0
        self._crashes = 0
        self._probe_respawns = 0
        self._shed_jobs = 0
        self._fault_plan = fault_plan
        self._worker_faults = fault_plan.injector("worker") if fault_plan is not None else None
        self._clock_faults = fault_plan.injector("clock") if fault_plan is not None else None
        for slot in self._slots:
            self._spawn(slot)
        self._pump_thread = threading.Thread(target=self._pump, name="repro-pool-pump", daemon=True)
        self._pump_thread.start()

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def submit(self, job: PoolJob) -> "Future[JobOutcome]":
        """Queue ``job`` on its shard; the future resolves to a :class:`JobOutcome`."""
        if self._closed.is_set():
            raise RuntimeError("pool is shut down")
        future: "Future[JobOutcome]" = Future()
        # Session jobs pin to the session's shard (warm memo store); plain
        # jobs shard by content hash (warm memory-tier synthesis cache).
        slot = self._slots[self._shard(job.session or job.key)]
        with self._lock:
            slot.backlog.append((job, future))
            if len(slot.backlog) > 1 and job.priority > slot.backlog[-2][0].priority:
                # Higher-priority work jumps the shard's queue.  The backlog
                # is kept ordered by descending priority (stable sort, so
                # equal priorities stay strict FIFO); appending only breaks
                # the order when the newcomer outranks its predecessor.
                slot.backlog = collections.deque(
                    sorted(slot.backlog, key=lambda item: -item[0].priority)
                )
            self._dispatch(slot)
        return future

    def pending_jobs(self) -> int:
        """Jobs queued or running right now (the backpressure quantity)."""
        with self._lock:
            return sum(len(slot.backlog) + (1 if slot.running else 0) for slot in self._slots)

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for the ``stats`` op and the perf harness."""
        with self._lock:
            return {
                "workers": self.workers,
                "alive": sum(
                    1 for slot in self._slots if slot.process is not None and slot.process.is_alive()
                ),
                "pending": sum(
                    len(slot.backlog) + (1 if slot.running else 0) for slot in self._slots
                ),
                "respawns": self._respawns,
                "timeouts": self._timeouts,
                "crashes": self._crashes,
                "probe_respawns": self._probe_respawns,
                "shed_jobs": self._shed_jobs,
            }

    def probe(self) -> Dict[str, int]:
        """Liveness-probe every worker; preemptively respawn dead idle ones.

        The pump only notices a dead worker when it has a *running* job
        (crash containment); a worker that died while idle — OOM killer,
        operator ``kill``, a fault injected between jobs — would otherwise
        sit undetected until the next job dispatched to it timed out.  The
        daemon's watchdog calls this periodically so the pool is healed
        *before* traffic hits the dead shard.  Busy workers are left to the
        pump's crash detection, which also fails the in-flight job properly.
        """
        with self._lock:
            dead_idle = 0
            if not self._closed.is_set():
                for slot in self._slots:
                    if (
                        slot.running is None
                        and slot.process is not None
                        and not slot.process.is_alive()
                    ):
                        dead_idle += 1
                        self._discard_queues(slot)
                        self._respawns += 1
                        self._probe_respawns += 1
                        self._spawn(slot)
                        self._dispatch(slot)
            return {"workers": self.workers, "respawned_idle": dead_idle}

    def shed(self, min_priority: int) -> int:
        """Fail every *queued* job below ``min_priority`` with ``overloaded``.

        Running jobs are never interrupted — shedding is about refusing
        queued work the daemon can no longer serve in time, not aborting
        work already paid for.  Returns how many jobs were shed; each
        resolves to an ``overloaded`` outcome the server answers with a
        ``retry_after`` hint.
        """
        from repro.service.protocol import ERR_OVERLOADED

        shed = 0
        with self._lock:
            for slot in self._slots:
                kept: Deque[Tuple[PoolJob, Future]] = collections.deque()
                while slot.backlog:
                    job, future = slot.backlog.popleft()
                    if job.priority < min_priority:
                        shed += 1
                        self._resolve(
                            future,
                            JobOutcome(
                                key=job.key,
                                ok=False,
                                error_code=ERR_OVERLOADED,
                                error_message=(
                                    f"shed under degraded load "
                                    f"(priority {job.priority} < {min_priority})"
                                ),
                                worker=slot.index,
                            ),
                        )
                    else:
                        kept.append((job, future))
                slot.backlog = kept
            self._shed_jobs += shed
        return shed

    def fault_counts(self) -> Dict[str, int]:
        """Chaos faults this pool has actually fired, per ``layer.mode``."""
        counts: Dict[str, int] = {}
        for injector in (self._worker_faults, self._clock_faults):
            if injector is not None:
                counts.update(injector.fired_counts())
        return counts

    def shutdown(self) -> None:
        """Stop the pump, fail queued jobs, terminate the workers."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._pump_thread.join(timeout=_SHUTDOWN_GRACE_SECONDS + 1.0)
        from repro.service.protocol import ERR_SHUTDOWN

        with self._lock:
            for slot in self._slots:
                while slot.backlog:
                    _, future = slot.backlog.popleft()
                    self._fail(future, slot, ERR_SHUTDOWN, "server shutting down")
                if slot.running is not None:
                    _, future, _ = slot.running
                    slot.running = None
                    self._fail(future, slot, ERR_SHUTDOWN, "server shutting down")
                self._stop_worker(slot)

    # ------------------------------------------------------------------
    # Internals (pump thread + process management).
    # ------------------------------------------------------------------
    def _shard(self, key: str) -> int:
        try:
            return int(key[:8], 16) % self.workers
        except ValueError:
            # Session names are arbitrary strings, not hex digests: hash them
            # deterministically (`hash()` is salted per process) so a session
            # maps to the same shard across daemon restarts with a warm disk
            # cache.
            digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
            return int(digest[:8], 16) % self.workers

    def _spawn(self, slot: _WorkerSlot) -> None:
        slot.inbox = self._ctx.Queue()
        slot.outbox = self._ctx.Queue()
        slot.generation += 1
        slot.process = self._ctx.Process(
            target=_worker_main,
            args=(slot.index, slot.inbox, slot.outbox, self.cache_spec, self._fault_plan),
            name=f"repro-serve-worker-{slot.index}",
            daemon=True,
        )
        slot.process.start()

    def _kill_and_respawn(self, slot: _WorkerSlot) -> None:
        process = slot.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=_SHUTDOWN_GRACE_SECONDS)
        self._discard_queues(slot)
        self._respawns += 1
        self._spawn(slot)

    def _stop_worker(self, slot: _WorkerSlot) -> None:
        process = slot.process
        if process is None:
            return
        try:
            if process.is_alive():
                slot.inbox.put(None)
                process.join(timeout=_SHUTDOWN_GRACE_SECONDS)
            if process.is_alive():
                process.kill()
                process.join(timeout=_SHUTDOWN_GRACE_SECONDS)
        except (OSError, ValueError):
            pass
        self._discard_queues(slot)
        slot.process = None

    @staticmethod
    def _discard_queues(slot: _WorkerSlot) -> None:
        for q in (slot.inbox, slot.outbox):
            if q is None:
                continue
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):
                pass
        slot.inbox = None
        slot.outbox = None

    def _dispatch(self, slot: _WorkerSlot) -> None:
        """Hand the shard's next job to its (idle) worker.  Caller holds the lock."""
        if slot.running is not None or not slot.backlog:
            return
        job, future = slot.backlog.popleft()
        if not future.set_running_or_notify_cancel():
            self._dispatch(slot)
            return
        slot.injected = None
        if self._worker_faults is not None and job.fault is None:
            # Chaos: piggyback a scheduled worker fault on this dispatch.
            # Explicit test faults are never overridden.
            mode = self._worker_faults.draw()
            if mode is not None:
                slot.injected = mode
                job = dataclasses.replace(job, fault=mode)
        deadline = time.monotonic() + (job.timeout or self.default_timeout)
        if self._clock_faults is not None and self._clock_faults.draw() == "skew":
            # Chaos: the job's deadline collapses to (almost) now, as a
            # badly skewed clock would make it — a retriable timeout.
            deadline = time.monotonic() + _CLOCK_SKEW_DEADLINE_SECONDS
        slot.running = (job, future, deadline)
        slot.inbox.put(job)

    @staticmethod
    def _resolve(future: Future, outcome: JobOutcome) -> None:
        """Complete a future whether it is still pending or already running."""
        if future.done():
            return
        if not future.running() and not future.set_running_or_notify_cancel():
            return  # cancelled while queued
        future.set_result(outcome)

    def _fail(self, future: Future, slot: _WorkerSlot, code: str, message: str) -> None:
        self._resolve(
            future,
            JobOutcome(key="", ok=False, error_code=code, error_message=message, worker=slot.index),
        )

    def _pump(self) -> None:
        from repro.service.protocol import ERR_INTERNAL, ERR_TIMEOUT, ERR_WORKER_CRASH

        while not self._closed.is_set():
            progressed = False
            with self._lock:
                now = time.monotonic()
                for slot in self._slots:
                    # 1. Drain completions.
                    while slot.outbox is not None:
                        try:
                            key, ok, payload, code, message, elapsed = slot.outbox.get_nowait()
                        except queue.Empty:
                            break
                        except (OSError, ValueError, EOFError):
                            break
                        progressed = True
                        if slot.running is not None and slot.running[0].key == key:
                            job, future, _ = slot.running
                            slot.running = None
                            if not ok and slot.injected == "raise":
                                # A chaos-injected raise is a *transient*
                                # internal failure, not a property of the
                                # circuit: surface it as retriable.
                                code = ERR_INTERNAL
                                message = "injected transient worker fault (chaos)"
                            slot.injected = None
                            outcome = JobOutcome(
                                key=key,
                                ok=ok,
                                payload=payload,
                                error_code=code,
                                error_message=message,
                                worker=slot.index,
                                elapsed_seconds=elapsed,
                            )
                            self._resolve(future, outcome)
                    # 2. Deadline enforcement: kill, fail, respawn, move on.
                    if slot.running is not None:
                        job, future, deadline = slot.running
                        if now >= deadline:
                            slot.running = None
                            self._timeouts += 1
                            self._kill_and_respawn(slot)
                            limit = job.timeout or self.default_timeout
                            self._resolve(
                                future,
                                JobOutcome(
                                    key=job.key,
                                    ok=False,
                                    error_code=ERR_TIMEOUT,
                                    error_message=(
                                        f"job exceeded its {limit:.1f}s deadline; "
                                        "worker killed and respawned"
                                    ),
                                    worker=slot.index,
                                ),
                            )
                            progressed = True
                    # 3. Crash detection: the worker died while busy.
                    if (
                        slot.running is not None
                        and slot.process is not None
                        and not slot.process.is_alive()
                    ):
                        job, future, _ = slot.running
                        slot.running = None
                        self._crashes += 1
                        exitcode = slot.process.exitcode
                        self._discard_queues(slot)
                        self._respawns += 1
                        self._spawn(slot)
                        self._resolve(
                            future,
                            JobOutcome(
                                key=job.key,
                                ok=False,
                                error_code=ERR_WORKER_CRASH,
                                error_message=(
                                    f"worker died (exit code {exitcode}) while running "
                                    "this job; worker respawned"
                                ),
                                worker=slot.index,
                            ),
                        )
                        progressed = True
                    # 4. Keep the shard busy.
                    self._dispatch(slot)
            if not progressed:
                time.sleep(_POLL_SECONDS)
