"""Batch compilation service layer.

This package turns the one-circuit-at-a-time :class:`~repro.compiler.reqisc.ReQISCCompiler`
into a throughput-oriented engine, following the decoupled request/completion
structure of the paper's evaluation harness:

* :mod:`repro.service.cache` — a content-addressed :class:`SynthesisCache`
  (in-memory LRU + optional on-disk store) that memoizes KAK decompositions,
  template realizations and approximate-synthesis results across circuits,
  suites and processes.
* :mod:`repro.service.batch` — a :class:`BatchCompiler` that fans a list of
  circuits (or a whole workload suite) out across worker processes with
  deterministic per-job seeds and ordered result collection.
* :mod:`repro.service.protocol` — the NDJSON wire protocol of the
  ``repro serve`` daemon (framing, validation, error codes, addresses).
* :mod:`repro.service.pool` — a persistent sharded :class:`WorkerPool`
  whose processes survive across jobs, with per-job deadlines and
  crash containment (a poisoned job fails alone; its worker respawns).
* :mod:`repro.service.server` — the :class:`CompileServer` daemon behind
  ``repro serve`` (socket intake, content-hash request dedup,
  bounded-queue backpressure) and its :class:`ServeClient`.
* :mod:`repro.service.cli` — the ``python -m repro`` command line
  (``compile`` / ``bench`` / ``suite`` / ``serve`` / ``submit``) that runs
  workloads through the registered compilers and emits summary rows as
  text, JSON or CSV.

Sub-modules are re-exported lazily so that low-level modules (for example the
KAK cache hook in :mod:`repro.linalg.weyl`) can import
``repro.service.cache`` without pulling the compiler stack into scope.
"""

from importlib import import_module
from typing import Any

_LAZY_EXPORTS = {
    "SynthesisCache": "repro.service.cache:SynthesisCache",
    "CacheStats": "repro.service.cache:CacheStats",
    "unitary_fingerprint": "repro.service.cache:unitary_fingerprint",
    "circuit_fingerprint": "repro.service.cache:circuit_fingerprint",
    "BatchCompiler": "repro.service.batch:BatchCompiler",
    "BatchItem": "repro.service.batch:BatchItem",
    "BatchResult": "repro.service.batch:BatchResult",
    "CompileServer": "repro.service.server:CompileServer",
    "ServeClient": "repro.service.server:ServeClient",
    "ServeConfig": "repro.service.server:ServeConfig",
    "ServeError": "repro.service.server:ServeError",
    "ServeStats": "repro.service.server:ServeStats",
    "WorkerPool": "repro.service.pool:WorkerPool",
    "PoolJob": "repro.service.pool:PoolJob",
    "JobOutcome": "repro.service.pool:JobOutcome",
    "ProtocolError": "repro.service.protocol:ProtocolError",
    "main": "repro.service.cli:main",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        target = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.service' has no attribute {name!r}") from None
    module_name, _, attribute = target.partition(":")
    value = getattr(import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__() -> list:
    return __all__
