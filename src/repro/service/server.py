"""The ``repro serve`` daemon: a long-running compile service.

Turns the one-shot fork/compile/exit :class:`~repro.service.batch.BatchCompiler`
into a resident service: job intake over a Unix-domain (or local TCP)
socket speaking the NDJSON protocol of :mod:`repro.service.protocol`, a
persistent sharded :class:`~repro.service.pool.WorkerPool`, and three
layers of request coalescing in front of it:

1. **Result cache** — a bounded LRU of completed responses keyed by the
   request's content hash; a repeat submission answers without touching
   the pool at all.
2. **In-flight dedup** — concurrent submissions of the same circuit
   (same :func:`~repro.service.cache.circuit_fingerprint`, compiler,
   target and seed) attach to the one running job and all receive the
   identical result; only one compile ever runs.
3. **Synthesis cache** — inside the workers, the segment-backed
   :class:`~repro.service.cache.SynthesisCache` shares KAK/template
   results across jobs, workers and daemon restarts.

Backpressure is a bounded queue: when ``queued + running`` jobs reach
``max_pending``, new work is refused with an explicit ``overloaded``
response instead of building an unbounded backlog (the client retries
later).  Per-job deadlines and crash containment come from the pool: a
poisoned circuit, hung worker or dying process fails only its own job and
the worker is respawned — proven by the fault-injection suite in
``tests/test_service_server.py``.

Determinism contract: a daemon response is bit-identical to
``BatchCompiler`` output and to an in-process ``compile()`` with the same
compiler/seed/target, because job identity hashes exact circuit content
and the synthesis cache keys on exact matrix bytes (gated continuously by
``BENCH_serve.json``'s bit-identity check).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.service import protocol
from repro.service.pool import JobOutcome, PoolJob, WorkerPool

__all__ = ["ServeConfig", "ServeStats", "CompileServer", "ServeClient", "ServeError"]

#: Extra seconds a connection thread waits beyond the job deadline before
#: giving up on the pool (the pool's own timeout should always fire first).
_WAIT_GRACE_SECONDS = 10.0


@dataclass
class ServeConfig:
    """Tunables of one :class:`CompileServer` instance."""

    address: str = ".repro-serve.sock"  # path, unix:PATH, tcp:HOST:PORT or HOST:PORT
    workers: int = 2
    max_pending: int = 64  # queued + running jobs before `overloaded`
    job_timeout: float = 60.0  # default per-job deadline (seconds)
    max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES
    max_qasm_bytes: int = 1024 * 1024
    max_qubits: Optional[int] = 64  # None disables the bound
    cache_dir: Optional[str] = None
    cache_capacity: Optional[int] = 4096
    result_cache_size: int = 256
    enable_fault_injection: bool = False  # accept the test-only `fault` field
    allow_shutdown_op: bool = True
    compact_cache_on_shutdown: bool = False


@dataclass
class ServeStats:
    """Daemon-level counters (the ``stats`` op payload)."""

    received: int = 0
    completed: int = 0
    failed: int = 0
    compiles_started: int = 0
    dedup_inflight: int = 0
    dedup_result_cache: int = 0
    rejected_overload: int = 0
    rejected_invalid: int = 0
    malformed_frames: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "received": self.received,
            "completed": self.completed,
            "failed": self.failed,
            "compiles_started": self.compiles_started,
            "dedup_inflight": self.dedup_inflight,
            "dedup_result_cache": self.dedup_result_cache,
            "rejected_overload": self.rejected_overload,
            "rejected_invalid": self.rejected_invalid,
            "malformed_frames": self.malformed_frames,
        }


class CompileServer:
    """Socket front end + dedup layer over a persistent :class:`WorkerPool`."""

    def __init__(self, config: Optional[ServeConfig] = None, **overrides: Any) -> None:
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServeConfig or keyword overrides, not both")
        self.config = config
        self.stats = ServeStats()
        self.address = protocol.parse_address(config.address)
        self._pool: Optional[WorkerPool] = None
        self._socket: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: List[socket.socket] = []
        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._started = False
        # Dedup state: content-hash -> future (in flight) / response payload
        # fields (result LRU).  Aggregated worker-side cache counters.
        self._inflight: Dict[str, "Future[JobOutcome]"] = {}
        self._result_cache: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._cache_totals: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "CompileServer":
        """Bind the socket, spawn the worker pool and the accept thread."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        cache_spec = None
        if self.config.cache_dir is not None:
            cache_spec = (self.config.cache_capacity, self.config.cache_dir)
        elif self.config.cache_capacity is not None:
            cache_spec = (self.config.cache_capacity, None)
        self._pool = WorkerPool(
            workers=self.config.workers,
            cache_spec=cache_spec,
            default_timeout=self.config.job_timeout,
        )
        family, value = self.address
        if family == "unix":
            try:
                os.unlink(value)
            except OSError:
                pass
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(value)
        else:
            host, port = value
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            if port == 0:  # ephemeral port: record what the OS picked
                self.address = ("tcp", sock.getsockname()[:2])
        sock.listen(128)
        sock.settimeout(0.2)  # lets the accept loop notice shutdown
        self._socket = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon shuts down; True when it did."""
        return self._shutdown.wait(timeout)

    def close(self) -> None:
        """Stop accepting, fail queued jobs, stop workers, release the socket."""
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._pool is not None:
            self._pool.shutdown()
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
        family, value = self.address
        if family == "unix":
            try:
                os.unlink(value)
            except OSError:
                pass
        if self.config.compact_cache_on_shutdown and self.config.cache_dir is not None:
            from repro.service.cache import SynthesisCache

            SynthesisCache(capacity=1, directory=self.config.cache_dir).compact()

    def __enter__(self) -> "CompileServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Accept / connection handling.
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _ = self._socket.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.settimeout(None)
            with self._lock:
                self._connections.append(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), name="repro-serve-conn", daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        reader = protocol.FrameReader(max_frame_bytes=self.config.max_frame_bytes)
        try:
            while not self._shutdown.is_set():
                try:
                    frames = protocol.receive_frames(conn, reader)
                except protocol.ProtocolError as exc:
                    # The stream has no recoverable record boundary after a
                    # framing violation: answer once, then hang up.
                    with self._lock:
                        self.stats.malformed_frames += 1
                    self._send(conn, protocol.error_response(None, exc.code, str(exc)))
                    break
                except OSError:
                    break
                if frames is None:
                    break  # clean EOF
                for frame in frames:
                    response = self._handle_frame(frame)
                    if response is not None:
                        self._send(conn, response)
                    if self._shutdown.is_set():
                        break
        finally:
            with self._lock:
                if conn in self._connections:
                    self._connections.remove(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _send(self, conn: socket.socket, message: Dict[str, Any]) -> None:
        try:
            conn.sendall(protocol.encode_frame(message))
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Request handling.
    # ------------------------------------------------------------------
    def _handle_frame(self, frame: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        request_id = frame.get("id") if isinstance(frame, dict) else None
        try:
            request = protocol.validate_request(
                frame, allow_fault=self.config.enable_fault_injection
            )
        except protocol.ProtocolError as exc:
            with self._lock:
                self.stats.rejected_invalid += 1
            return protocol.error_response(request_id, exc.code, str(exc))

        op = request["op"]
        if op == "ping":
            return protocol.ok_response(request_id, op="ping")
        if op == "stats":
            return protocol.ok_response(request_id, op="stats", stats=self.snapshot())
        if op == "shutdown":
            if not self.config.allow_shutdown_op:
                return protocol.error_response(
                    request_id, protocol.ERR_BAD_REQUEST, "shutdown op is disabled"
                )
            # Answer first, then tear down shortly after so this connection
            # still receives its acknowledgement frame.
            timer = threading.Timer(0.2, self.close)
            timer.daemon = True
            timer.start()
            return protocol.ok_response(request_id, op="shutdown")
        return self._handle_compile(request)

    def _handle_compile(self, request: Dict[str, Any]) -> Dict[str, Any]:
        request_id = request["id"]
        with self._lock:
            self.stats.received += 1
        if self._shutdown.is_set():
            return protocol.error_response(
                request_id, protocol.ERR_SHUTDOWN, "server is shutting down"
            )

        qasm = request["qasm"]
        if len(qasm.encode("utf-8")) > self.config.max_qasm_bytes:
            with self._lock:
                self.stats.rejected_invalid += 1
            return protocol.error_response(
                request_id,
                protocol.ERR_TOO_LARGE,
                f"qasm exceeds max_qasm_bytes={self.config.max_qasm_bytes}",
            )

        # Parse up front: a syntactically broken program is the client's
        # error (bad-request), not a compile failure, and the parsed circuit
        # gives us the content-addressed dedup key + early size validation.
        from repro.qasm import QasmError, loads
        from repro.service.cache import circuit_fingerprint

        try:
            circuit = loads(qasm)
        except QasmError as exc:
            with self._lock:
                self.stats.rejected_invalid += 1
            return protocol.error_response(
                request_id, protocol.ERR_BAD_REQUEST, f"invalid QASM: {exc}"
            )
        if self.config.max_qubits is not None and circuit.num_qubits > self.config.max_qubits:
            with self._lock:
                self.stats.rejected_invalid += 1
            return protocol.error_response(
                request_id,
                protocol.ERR_TOO_LARGE,
                f"circuit has {circuit.num_qubits} qubits; this server caps jobs at "
                f"max_qubits={self.config.max_qubits}",
            )
        target = request["target"]
        if target is not None:
            from repro.target.target import resolve_target

            try:
                resolve_target(target, num_qubits=max(2, circuit.num_qubits))
            except (ValueError, TypeError, KeyError, OSError) as exc:
                with self._lock:
                    self.stats.rejected_invalid += 1
                return protocol.error_response(
                    request_id, protocol.ERR_BAD_REQUEST, f"invalid target {target!r}: {exc}"
                )

        # Job identity: exact circuit content + everything that can change
        # the compiled bytes.  The injected fault participates so a hanging
        # probe never coalesces with a real compile of the same circuit.
        # The session participates too: a sessioned job must reach its
        # session's worker shard to warm the per-session pass-memo store,
        # so it never coalesces with a sessionless compile of the same
        # circuit (the results are still bit-identical either way).
        session = request["session"]
        key = circuit_fingerprint(
            circuit,
            "serve",
            request["compiler"],
            str(target),
            str(request["seed"]),
            str(request["fault"]),
            str(session),
        )
        timeout = request["timeout"] or self.config.job_timeout

        future: Optional["Future[JobOutcome]"] = None
        with self._lock:
            cached = self._result_cache.get(key)
            if cached is not None:
                self._result_cache.move_to_end(key)
                self.stats.dedup_result_cache += 1
                self.stats.completed += 1
                return protocol.ok_response(request_id, cached="result", **cached)
            existing = self._inflight.get(key)
            if existing is not None:
                self.stats.dedup_inflight += 1
                future = existing
            else:
                if self._pool.pending_jobs() >= self.config.max_pending:
                    self.stats.rejected_overload += 1
                    return protocol.error_response(
                        request_id,
                        protocol.ERR_OVERLOADED,
                        f"server is at max_pending={self.config.max_pending} jobs; retry later",
                        pending=self._pool.pending_jobs(),
                    )
                self.stats.compiles_started += 1
                job = PoolJob(
                    key=key,
                    qasm=qasm,
                    compiler=request["compiler"],
                    seed=request["seed"],
                    target=target,
                    timeout=timeout,
                    fault=request["fault"],
                    session=session,
                )
                future = self._pool.submit(job)
                self._inflight[key] = future
        assert future is not None

        try:
            outcome = future.result(timeout=timeout + _WAIT_GRACE_SECONDS)
        except Exception as exc:  # noqa: BLE001 — defensive: pool must answer
            outcome = JobOutcome(
                key=key,
                ok=False,
                error_code=protocol.ERR_INTERNAL,
                error_message=f"{type(exc).__name__}: {exc}",
            )

        with self._lock:
            self._inflight.pop(key, None)
            if outcome.ok and outcome.payload is not None:
                fields = {
                    "key": key,
                    "qasm": outcome.payload["qasm"],
                    "summary": outcome.payload["summary"],
                    "compile_seconds": outcome.payload["compile_seconds"],
                    "worker": outcome.worker,
                }
                for name, count in outcome.payload.get("cache", {}).items():
                    self._cache_totals[name] = self._cache_totals.get(name, 0) + count
                self._result_cache[key] = fields
                while len(self._result_cache) > self.config.result_cache_size:
                    self._result_cache.popitem(last=False)
                self.stats.completed += 1
                return protocol.ok_response(request_id, cached="no", **fields)
            self.stats.failed += 1
            return protocol.error_response(
                request_id,
                outcome.error_code or protocol.ERR_INTERNAL,
                outcome.error_message or "unknown failure",
                key=key,
                worker=outcome.worker,
            )

    def snapshot(self) -> Dict[str, Any]:
        """Daemon + pool + aggregated worker-cache counters (``stats`` op)."""
        with self._lock:
            payload = {
                "server": self.stats.as_dict(),
                "pool": self._pool.stats() if self._pool is not None else {},
                "cache": dict(self._cache_totals),
                "inflight": len(self._inflight),
                "result_cache_entries": len(self._result_cache),
                "config": {
                    "workers": self.config.workers,
                    "max_pending": self.config.max_pending,
                    "job_timeout": self.config.job_timeout,
                    "max_qubits": self.config.max_qubits,
                    "cache_dir": self.config.cache_dir,
                },
            }
        return payload


# ---------------------------------------------------------------------------
# Client.
# ---------------------------------------------------------------------------


class ServeError(Exception):
    """An error response from the daemon (carries the protocol error code)."""

    def __init__(self, code: str, message: str, response: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.response = response or {}


class ServeClient:
    """Small synchronous client for the ``repro serve`` daemon.

    One socket, one outstanding request at a time (lock-protected), which
    is exactly what the CLI and the load generator's per-thread clients
    need.  Use one client per thread for concurrency.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]] = ".repro-serve.sock",
        timeout: Optional[float] = 120.0,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.address = protocol.parse_address(address)
        self.timeout = timeout
        self._max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._reader = protocol.FrameReader(max_frame_bytes=max_frame_bytes)
        self._lock = threading.Lock()
        self._counter = 0

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        family, value = self.address
        if family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(value)
        else:
            sock = socket.create_connection(tuple(value), timeout=self.timeout)
        self._sock = sock
        self._reader = protocol.FrameReader(max_frame_bytes=self._max_frame_bytes)
        return sock

    def _close_unlocked(self) -> None:
        """Drop the socket.  Caller holds (or is) ``self._lock``."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._close_unlocked()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame, wait for one response frame (raw, no raising)."""
        with self._lock:
            self._counter += 1
            message = dict(message)
            message.setdefault("id", self._counter)
            sock = self._connect()
            try:
                sock.sendall(protocol.encode_frame(message))
                frames = protocol.receive_frames(sock, self._reader)
            except (OSError, protocol.ProtocolError):
                self._close_unlocked()
                raise
            if frames is None:
                self._close_unlocked()
                raise ConnectionError("server closed the connection")
            return frames[0]

    def _checked(self, message: Dict[str, Any]) -> Dict[str, Any]:
        response = self.request(message)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", protocol.ERR_INTERNAL),
                error.get("message", "unknown error"),
                response,
            )
        return response

    def ping(self) -> bool:
        """True when the daemon answers."""
        return bool(self._checked({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, Any]:
        """The daemon's counter snapshot."""
        return self._checked({"op": "stats"})["stats"]

    def shutdown_server(self) -> bool:
        """Ask the daemon to shut down cleanly."""
        return bool(self._checked({"op": "shutdown"}).get("ok"))

    def compile(
        self,
        qasm: str,
        compiler: str = "reqisc-eff",
        seed: int = 0,
        target: Optional[str] = None,
        timeout: Optional[float] = None,
        fault: Optional[str] = None,
        session: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Compile one OpenQASM 2.0 program; raises :class:`ServeError` on failure.

        The success response carries ``qasm`` (the compiled program),
        ``summary`` (the metric row), ``key`` (the dedup content hash),
        ``cached`` (``"no"`` / ``"result"``) and ``compile_seconds``.

        ``session`` names an incremental compile session: resubmitting an
        edited program under the same session replays every memoized pass
        and region on the session's pinned worker (bit-identical output).
        The field is only sent when set, so older daemons keep working.
        """
        message: Dict[str, Any] = {
            "op": "compile",
            "qasm": qasm,
            "compiler": compiler,
            "seed": seed,
            "target": target,
        }
        if timeout is not None:
            message["timeout"] = timeout
        if fault is not None:
            message["fault"] = fault
        if session is not None:
            message["session"] = session
        return self._checked(message)
