"""The ``repro serve`` daemon: a long-running compile service.

Turns the one-shot fork/compile/exit :class:`~repro.service.batch.BatchCompiler`
into a resident service: job intake over a Unix-domain (or local TCP)
socket speaking the NDJSON protocol of :mod:`repro.service.protocol`, a
persistent sharded :class:`~repro.service.pool.WorkerPool`, and three
layers of request coalescing in front of it:

1. **Result cache** — a bounded LRU of completed responses keyed by the
   request's content hash; a repeat submission answers without touching
   the pool at all.
2. **In-flight dedup** — concurrent submissions of the same circuit
   (same :func:`~repro.service.cache.circuit_fingerprint`, compiler,
   target and seed) attach to the one running job and all receive the
   identical result; only one compile ever runs.
3. **Synthesis cache** — inside the workers, the segment-backed
   :class:`~repro.service.cache.SynthesisCache` shares KAK/template
   results across jobs, workers and daemon restarts.

Backpressure is a bounded queue: when ``queued + running`` jobs reach
``max_pending``, new work is refused with an explicit ``overloaded``
response instead of building an unbounded backlog (the client retries
later).  Per-job deadlines and crash containment come from the pool: a
poisoned circuit, hung worker or dying process fails only its own job and
the worker is respawned — proven by the fault-injection suite in
``tests/test_service_server.py``.

Determinism contract: a daemon response is bit-identical to
``BatchCompiler`` output and to an in-process ``compile()`` with the same
compiler/seed/target, because job identity hashes exact circuit content
and the synthesis cache keys on exact matrix bytes (gated continuously by
``BENCH_serve.json``'s bit-identity check).
"""

from __future__ import annotations

import logging
import os
import queue as queue_module
import socket
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.service import protocol
from repro.service.pool import JobOutcome, PoolJob, WorkerPool

__all__ = ["ServeConfig", "ServeStats", "CompileServer", "ServeClient", "ServeError"]

logger = logging.getLogger(__name__)

#: Extra seconds a connection thread waits beyond the job deadline before
#: giving up on the pool (the pool's own timeout should always fire first).
_WAIT_GRACE_SECONDS = 10.0
#: How long a chaos-injected "delay" socket fault withholds a response.
_SOCKET_DELAY_SECONDS = 0.5
#: EWMA smoothing for observed compile latency (drives the retry-after hint).
_EWMA_ALPHA = 0.2


@dataclass
class ServeConfig:
    """Tunables of one :class:`CompileServer` instance."""

    address: str = ".repro-serve.sock"  # path, unix:PATH, tcp:HOST:PORT or HOST:PORT
    workers: int = 2
    max_pending: int = 64  # queued + running jobs before `overloaded`
    job_timeout: float = 60.0  # default per-job deadline (seconds)
    max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES
    max_qasm_bytes: int = 1024 * 1024
    max_qubits: Optional[int] = 64  # None disables the bound
    cache_dir: Optional[str] = None
    cache_capacity: Optional[int] = 4096
    result_cache_size: int = 256
    enable_fault_injection: bool = False  # accept the test-only `fault` field
    allow_shutdown_op: bool = True
    compact_cache_on_shutdown: bool = False
    # Resilience layer (docs/resilience.md):
    fault_plan: Optional[Any] = None  # repro.resilience.FaultPlan — chaos soaks only
    watchdog_interval: float = 1.0  # seconds between watchdog sweeps (<= 0 disables)
    shed_after: float = 5.0  # sustained seconds at max_pending before degraded mode
    shed_priority: int = 5  # queued jobs below this priority are shed when degraded


@dataclass
class ServeStats:
    """Daemon-level counters (the ``stats`` op payload)."""

    received: int = 0
    completed: int = 0
    failed: int = 0
    compiles_started: int = 0
    dedup_inflight: int = 0
    dedup_result_cache: int = 0
    rejected_overload: int = 0
    rejected_invalid: int = 0
    malformed_frames: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "received": self.received,
            "completed": self.completed,
            "failed": self.failed,
            "compiles_started": self.compiles_started,
            "dedup_inflight": self.dedup_inflight,
            "dedup_result_cache": self.dedup_result_cache,
            "rejected_overload": self.rejected_overload,
            "rejected_invalid": self.rejected_invalid,
            "malformed_frames": self.malformed_frames,
        }


class CompileServer:
    """Socket front end + dedup layer over a persistent :class:`WorkerPool`."""

    def __init__(self, config: Optional[ServeConfig] = None, **overrides: Any) -> None:
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a ServeConfig or keyword overrides, not both")
        self.config = config
        self.stats = ServeStats()
        self.address = protocol.parse_address(config.address)
        self._pool: Optional[WorkerPool] = None
        self._socket: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: List[socket.socket] = []
        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._started = False
        # Dedup state: content-hash -> future (in flight) / response payload
        # fields (result LRU).  Aggregated worker-side cache counters.
        self._inflight: Dict[str, "Future[JobOutcome]"] = {}
        self._result_cache: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._cache_totals: Dict[str, int] = {}
        # Resilience state: chaos socket-layer injector, watchdog thread and
        # the degraded-mode latch it drives, compile-latency EWMA for the
        # retry-after hint.
        self._socket_faults = (
            config.fault_plan.injector("socket") if config.fault_plan is not None else None
        )
        self._watchdog_thread: Optional[threading.Thread] = None
        self._watchdog_sweeps = 0
        self._degraded = False
        self._overloaded_since: Optional[float] = None
        self._ewma_compile_seconds: Optional[float] = None
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "CompileServer":
        """Bind the socket, spawn the worker pool and the accept thread."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        cache_spec = None
        if self.config.cache_dir is not None:
            cache_spec = (self.config.cache_capacity, self.config.cache_dir)
        elif self.config.cache_capacity is not None:
            cache_spec = (self.config.cache_capacity, None)
        self._pool = WorkerPool(
            workers=self.config.workers,
            cache_spec=cache_spec,
            default_timeout=self.config.job_timeout,
            fault_plan=self.config.fault_plan,
        )
        self._started_at = time.monotonic()
        family, value = self.address
        if family == "unix":
            try:
                os.unlink(value)
            except OSError:
                pass
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(value)
        else:
            host, port = value
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            if port == 0:  # ephemeral port: record what the OS picked
                self.address = ("tcp", sock.getsockname()[:2])
        sock.listen(128)
        sock.settimeout(0.2)  # lets the accept loop notice shutdown
        self._socket = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        if self.config.watchdog_interval > 0:
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop, name="repro-serve-watchdog", daemon=True
            )
            self._watchdog_thread.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon shuts down; True when it did."""
        return self._shutdown.wait(timeout)

    def close(self) -> None:
        """Stop accepting, fail queued jobs, stop workers, release the socket."""
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        if self._watchdog_thread is not None:
            self._watchdog_thread.join(timeout=2.0)
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._pool is not None:
            self._pool.shutdown()
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
        family, value = self.address
        if family == "unix":
            try:
                os.unlink(value)
            except OSError:
                pass
        if self.config.compact_cache_on_shutdown and self.config.cache_dir is not None:
            from repro.service.cache import SynthesisCache

            SynthesisCache(capacity=1, directory=self.config.cache_dir).compact()

    def __enter__(self) -> "CompileServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Accept / connection handling.
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _ = self._socket.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.settimeout(None)
            with self._lock:
                self._connections.append(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), name="repro-serve-conn", daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        reader = protocol.FrameReader(max_frame_bytes=self.config.max_frame_bytes)
        try:
            while not self._shutdown.is_set():
                try:
                    frames = protocol.receive_frames(conn, reader)
                except protocol.ProtocolError as exc:
                    # The stream has no recoverable record boundary after a
                    # framing violation: answer once, then hang up.
                    with self._lock:
                        self.stats.malformed_frames += 1
                    self._send(conn, protocol.error_response(None, exc.code, str(exc)))
                    break
                except OSError:
                    break
                if frames is None:
                    break  # clean EOF
                for frame in frames:
                    response = self._handle_frame(frame)
                    if response is not None:
                        # Only compile responses are chaos-faultable: probes
                        # (ping/health/stats) must stay reliable so soaks
                        # and watchdog pollers can trust them.
                        faultable = isinstance(frame, dict) and frame.get("op") == "compile"
                        if not self._send(conn, response, faultable=faultable):
                            return  # injected reset/partial: connection is gone
                    if self._shutdown.is_set():
                        break
        finally:
            with self._lock:
                if conn in self._connections:
                    self._connections.remove(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _send(self, conn: socket.socket, message: Dict[str, Any], faultable: bool = False) -> bool:
        """Send one frame; returns False when the connection is unusable.

        When a chaos :class:`FaultPlan` arms the ``socket`` layer and this
        frame is faultable, a scheduled fault may fire instead of a clean
        send: ``reset`` drops the connection without answering, ``partial``
        sends a torn half-frame then hangs up, ``delay`` withholds the
        response briefly (tail latency — the client's hedging trigger).
        """
        payload = protocol.encode_frame(message)
        if faultable and self._socket_faults is not None:
            mode = self._socket_faults.draw()
            if mode == "reset":
                logger.warning("chaos: resetting connection instead of answering")
                self._drop_connection(conn)
                return False
            if mode == "partial":
                logger.warning("chaos: sending torn half-frame, then hanging up")
                try:
                    conn.sendall(payload[: max(1, len(payload) // 2)])
                except OSError:
                    pass
                self._drop_connection(conn)
                return False
            if mode == "delay":
                logger.warning("chaos: delaying response by %.1fs", _SOCKET_DELAY_SECONDS)
                time.sleep(_SOCKET_DELAY_SECONDS)
        try:
            conn.sendall(payload)
            return True
        except OSError:
            return False

    @staticmethod
    def _drop_connection(conn: socket.socket) -> None:
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Request handling.
    # ------------------------------------------------------------------
    def _handle_frame(self, frame: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        request_id = frame.get("id") if isinstance(frame, dict) else None
        try:
            request = protocol.validate_request(
                frame, allow_fault=self.config.enable_fault_injection
            )
        except protocol.ProtocolError as exc:
            with self._lock:
                self.stats.rejected_invalid += 1
            return protocol.error_response(request_id, exc.code, str(exc))

        op = request["op"]
        if op == "ping":
            return protocol.ok_response(request_id, op="ping")
        if op == "stats":
            return protocol.ok_response(request_id, op="stats", stats=self.snapshot())
        if op == "health":
            return protocol.ok_response(request_id, op="health", health=self.health())
        if op == "shutdown":
            if not self.config.allow_shutdown_op:
                return protocol.error_response(
                    request_id, protocol.ERR_BAD_REQUEST, "shutdown op is disabled"
                )
            # Answer first, then tear down shortly after so this connection
            # still receives its acknowledgement frame.
            timer = threading.Timer(0.2, self.close)
            timer.daemon = True
            timer.start()
            return protocol.ok_response(request_id, op="shutdown")
        return self._handle_compile(request)

    def _handle_compile(self, request: Dict[str, Any]) -> Dict[str, Any]:
        request_id = request["id"]
        with self._lock:
            self.stats.received += 1
        if self._shutdown.is_set():
            return protocol.error_response(
                request_id, protocol.ERR_SHUTDOWN, "server is shutting down"
            )

        qasm = request["qasm"]
        if len(qasm.encode("utf-8")) > self.config.max_qasm_bytes:
            with self._lock:
                self.stats.rejected_invalid += 1
            return protocol.error_response(
                request_id,
                protocol.ERR_TOO_LARGE,
                f"qasm exceeds max_qasm_bytes={self.config.max_qasm_bytes}",
            )

        # Parse up front: a syntactically broken program is the client's
        # error (bad-request), not a compile failure, and the parsed circuit
        # gives us the content-addressed dedup key + early size validation.
        from repro.qasm import QasmError, loads
        from repro.service.cache import circuit_fingerprint

        try:
            circuit = loads(qasm)
        except QasmError as exc:
            with self._lock:
                self.stats.rejected_invalid += 1
            return protocol.error_response(
                request_id, protocol.ERR_BAD_REQUEST, f"invalid QASM: {exc}"
            )
        if self.config.max_qubits is not None and circuit.num_qubits > self.config.max_qubits:
            with self._lock:
                self.stats.rejected_invalid += 1
            return protocol.error_response(
                request_id,
                protocol.ERR_TOO_LARGE,
                f"circuit has {circuit.num_qubits} qubits; this server caps jobs at "
                f"max_qubits={self.config.max_qubits}",
            )
        target = request["target"]
        if target is not None:
            from repro.target.target import resolve_target

            try:
                resolve_target(target, num_qubits=max(2, circuit.num_qubits))
            except (ValueError, TypeError, KeyError, OSError) as exc:
                with self._lock:
                    self.stats.rejected_invalid += 1
                return protocol.error_response(
                    request_id, protocol.ERR_BAD_REQUEST, f"invalid target {target!r}: {exc}"
                )

        # Job identity: exact circuit content + everything that can change
        # the compiled bytes.  The injected fault participates so a hanging
        # probe never coalesces with a real compile of the same circuit.
        # The session participates too: a sessioned job must reach its
        # session's worker shard to warm the per-session pass-memo store,
        # so it never coalesces with a sessionless compile of the same
        # circuit (the results are still bit-identical either way).
        session = request["session"]
        key = circuit_fingerprint(
            circuit,
            "serve",
            request["compiler"],
            str(target),
            str(request["seed"]),
            str(request["fault"]),
            str(session),
        )
        timeout = request["timeout"] or self.config.job_timeout

        future: Optional["Future[JobOutcome]"] = None
        with self._lock:
            cached = self._result_cache.get(key)
            if cached is not None:
                self._result_cache.move_to_end(key)
                self.stats.dedup_result_cache += 1
                self.stats.completed += 1
                return protocol.ok_response(request_id, cached="result", **cached)
            existing = self._inflight.get(key)
            if existing is not None:
                self.stats.dedup_inflight += 1
                future = existing
            else:
                if self._degraded and request["priority"] < self.config.shed_priority:
                    # Degraded mode refuses sheddable work at the door: the
                    # queue it would join is already being shed.
                    self.stats.rejected_overload += 1
                    return protocol.error_response(
                        request_id,
                        protocol.ERR_OVERLOADED,
                        f"server is degraded and shedding priority < "
                        f"{self.config.shed_priority}; retry later",
                        pending=self._pool.pending_jobs(),
                        retry_after=self._retry_after_hint(),
                    )
                if self._pool.pending_jobs() >= self.config.max_pending:
                    self.stats.rejected_overload += 1
                    return protocol.error_response(
                        request_id,
                        protocol.ERR_OVERLOADED,
                        f"server is at max_pending={self.config.max_pending} jobs; retry later",
                        pending=self._pool.pending_jobs(),
                        retry_after=self._retry_after_hint(),
                    )
                self.stats.compiles_started += 1
                job = PoolJob(
                    key=key,
                    qasm=qasm,
                    compiler=request["compiler"],
                    seed=request["seed"],
                    target=target,
                    timeout=timeout,
                    fault=request["fault"],
                    session=session,
                    priority=request["priority"],
                )
                future = self._pool.submit(job)
                self._inflight[key] = future
        assert future is not None

        try:
            outcome = future.result(timeout=timeout + _WAIT_GRACE_SECONDS)
        except Exception as exc:  # noqa: BLE001 — defensive: pool must answer
            outcome = JobOutcome(
                key=key,
                ok=False,
                error_code=protocol.ERR_INTERNAL,
                error_message=f"{type(exc).__name__}: {exc}",
            )

        with self._lock:
            self._inflight.pop(key, None)
            if outcome.ok and outcome.payload is not None:
                fields = {
                    "key": key,
                    "qasm": outcome.payload["qasm"],
                    "summary": outcome.payload["summary"],
                    "compile_seconds": outcome.payload["compile_seconds"],
                    "worker": outcome.worker,
                }
                for name, count in outcome.payload.get("cache", {}).items():
                    self._cache_totals[name] = self._cache_totals.get(name, 0) + count
                seconds = outcome.payload["compile_seconds"]
                if self._ewma_compile_seconds is None:
                    self._ewma_compile_seconds = seconds
                else:
                    self._ewma_compile_seconds = (
                        _EWMA_ALPHA * seconds + (1.0 - _EWMA_ALPHA) * self._ewma_compile_seconds
                    )
                self._result_cache[key] = fields
                while len(self._result_cache) > self.config.result_cache_size:
                    self._result_cache.popitem(last=False)
                self.stats.completed += 1
                return protocol.ok_response(request_id, cached="no", **fields)
            self.stats.failed += 1
            extra: Dict[str, Any] = {}
            if outcome.error_code == protocol.ERR_OVERLOADED:
                # Shed jobs resolve to `overloaded`; tell the client when it
                # is worth coming back.
                extra["retry_after"] = self._retry_after_hint()
            return protocol.error_response(
                request_id,
                outcome.error_code or protocol.ERR_INTERNAL,
                outcome.error_message or "unknown failure",
                key=key,
                worker=outcome.worker,
                **extra,
            )

    def snapshot(self) -> Dict[str, Any]:
        """Daemon + pool + aggregated worker-cache counters (``stats`` op)."""
        with self._lock:
            payload = {
                "server": self.stats.as_dict(),
                "pool": self._pool.stats() if self._pool is not None else {},
                "cache": dict(self._cache_totals),
                "inflight": len(self._inflight),
                "result_cache_entries": len(self._result_cache),
                "config": {
                    "workers": self.config.workers,
                    "max_pending": self.config.max_pending,
                    "job_timeout": self.config.job_timeout,
                    "max_qubits": self.config.max_qubits,
                    "cache_dir": self.config.cache_dir,
                },
            }
        return payload

    # ------------------------------------------------------------------
    # Watchdog + graceful degradation (docs/resilience.md).
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        """Supervisor sweep: probe worker liveness, track backpressure.

        Runs every ``watchdog_interval`` seconds.  Dead *idle* workers are
        respawned preemptively (the pump only notices dead *busy* workers).
        Sustained saturation — the pending count pinned at ``max_pending``
        for ``shed_after`` seconds — latches *degraded mode*: queued jobs
        below ``shed_priority`` are shed with ``overloaded`` + a
        ``retry_after`` hint, every sweep, until pending falls back under
        half of ``max_pending`` (hysteresis, so the mode doesn't flap).
        """
        interval = self.config.watchdog_interval
        while not self._shutdown.wait(interval):
            pool = self._pool
            if pool is None:
                continue
            try:
                pool.probe()
                pending = pool.pending_jobs()
                now = time.monotonic()
                with self._lock:
                    if pending >= self.config.max_pending:
                        if self._overloaded_since is None:
                            self._overloaded_since = now
                        if (
                            not self._degraded
                            and now - self._overloaded_since >= self.config.shed_after
                        ):
                            self._degraded = True
                            logger.warning(
                                "watchdog: %d jobs pending for %.1fs — entering degraded "
                                "mode (shedding priority < %d)",
                                pending,
                                now - self._overloaded_since,
                                self.config.shed_priority,
                            )
                    elif pending <= self.config.max_pending // 2:
                        self._overloaded_since = None
                        if self._degraded:
                            self._degraded = False
                            logger.info("watchdog: backlog drained — leaving degraded mode")
                    degraded = self._degraded
                    self._watchdog_sweeps += 1
                if degraded:
                    shed = pool.shed(self.config.shed_priority)
                    if shed:
                        logger.info("watchdog: shed %d queued job(s) under degraded load", shed)
            except Exception:  # noqa: BLE001 — the watchdog must never die
                logger.exception("watchdog sweep failed")

    def _retry_after_hint(self) -> float:
        """Seconds a refused client should wait: queue depth x observed latency.

        ``pending / workers`` is how many service times deep the queue is;
        multiplied by the compile-latency EWMA it estimates when capacity
        frees up.  Clamped to [0.1, 30] so a cold EWMA or a monster queue
        still yields a sane hint.
        """
        pool = self._pool
        pending = pool.pending_jobs() if pool is not None else 0
        per_job = self._ewma_compile_seconds if self._ewma_compile_seconds else 0.5
        hint = (max(1, pending) / max(1, self.config.workers)) * per_job
        return max(0.1, min(30.0, hint))

    def health(self) -> Dict[str, Any]:
        """The ``health`` op payload: liveness, saturation, hit rates, scrub age."""
        pool_stats = self._pool.stats() if self._pool is not None else {}
        with self._lock:
            cache = dict(self._cache_totals)
            degraded = self._degraded
            sweeps = self._watchdog_sweeps
            ewma = self._ewma_compile_seconds
            inflight = len(self._inflight)
            server_stats = self.stats.as_dict()
        hits, misses = cache.get("hits", 0), cache.get("misses", 0)
        memo_hits = sum(cache.get(k, 0) for k in ("memo_pass_hits", "memo_region_hits"))
        memo_misses = sum(cache.get(k, 0) for k in ("memo_pass_misses", "memo_region_misses"))
        dedup = server_stats["dedup_inflight"] + server_stats["dedup_result_cache"]
        scrub_age: Optional[float] = None
        if self.config.cache_dir is not None:
            from repro.service.cache import scrub_age_seconds

            scrub_age = scrub_age_seconds(self.config.cache_dir)
        if self._shutdown.is_set():
            status = "shutting-down"
        elif degraded:
            status = "degraded"
        elif pool_stats and pool_stats.get("alive", 0) < pool_stats.get("workers", 0):
            status = "impaired"
        else:
            status = "ok"
        return {
            "status": status,
            "degraded": degraded,
            "uptime_seconds": (
                time.monotonic() - self._started_at if self._started_at is not None else 0.0
            ),
            "pending": pool_stats.get("pending", 0),
            "max_pending": self.config.max_pending,
            "inflight": inflight,
            "workers": pool_stats.get("workers", 0),
            "workers_alive": pool_stats.get("alive", 0),
            "respawns": pool_stats.get("respawns", 0),
            "probe_respawns": pool_stats.get("probe_respawns", 0),
            "shed_jobs": pool_stats.get("shed_jobs", 0),
            "watchdog_sweeps": sweeps,
            "retry_after_hint": self._retry_after_hint(),
            "ewma_compile_seconds": ewma,
            "requests_completed": server_stats["completed"],
            "requests_failed": server_stats["failed"],
            "dedup_rate": (
                dedup / server_stats["received"] if server_stats["received"] else 0.0
            ),
            "synthesis_cache_hit_rate": hits / (hits + misses) if hits + misses else None,
            "memo_hit_rate": (
                memo_hits / (memo_hits + memo_misses) if memo_hits + memo_misses else None
            ),
            "last_scrub_age_seconds": scrub_age,
        }

    def fault_counts(self) -> Dict[str, int]:
        """Chaos faults fired so far, per ``layer.mode`` (soak reporting).

        Covers the layers injected in this process: ``worker`` and ``clock``
        (pool dispatch) and ``socket`` (response path).  ``cache`` faults
        fire inside worker processes; their evidence is what
        :meth:`SynthesisCache.scrub` finds afterwards.
        """
        counts: Dict[str, int] = {}
        if self._pool is not None:
            counts.update(self._pool.fault_counts())
        if self._socket_faults is not None:
            counts.update(self._socket_faults.fired_counts())
        return counts


# ---------------------------------------------------------------------------
# Client.
# ---------------------------------------------------------------------------


class ServeError(Exception):
    """An error response from the daemon (carries the protocol error code)."""

    def __init__(self, code: str, message: str, response: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.response = response or {}


class ServeClient:
    """Synchronous client for the ``repro serve`` daemon, with resilience.

    One socket, one outstanding request at a time (lock-protected), which
    is exactly what the CLI and the load generator's per-thread clients
    need.  Use one client per thread for concurrency.

    Socket lifecycle is strict: connects honor ``connect_timeout``, any
    error path closes the socket (no descriptor leaks under repeated
    failures), and the client transparently reconnects on the next request.
    When a :class:`~repro.resilience.retry.RetryPolicy` is given,
    :meth:`compile` retries transport failures and retriable daemon errors
    with bounded jittered backoff, honors the server's ``retry_after``
    hint, and optionally *hedges* slow requests on a second connection —
    all safe because compile submissions are idempotent (content-hash
    dedup server-side).  What actually happened is counted in
    :attr:`retry_stats`.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]] = ".repro-serve.sock",
        timeout: Optional[float] = 120.0,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        connect_timeout: Optional[float] = 10.0,
        retry: Optional[Any] = None,
        retry_stats: Optional[Any] = None,
    ) -> None:
        self._address_spec = address
        self.address = protocol.parse_address(address)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retry = retry
        if retry_stats is None:
            from repro.resilience.retry import RetryStats

            retry_stats = RetryStats()
        self.retry_stats = retry_stats
        self._max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._reader = protocol.FrameReader(max_frame_bytes=max_frame_bytes)
        self._lock = threading.Lock()
        self._counter = 0

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        family, value = self.address
        connect_timeout = self.connect_timeout if self.connect_timeout is not None else self.timeout
        if family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(connect_timeout)
                sock.connect(value)
            except BaseException:
                # A failed connect must not leak the descriptor (repeated
                # retries against a dead daemon would exhaust the fd table).
                sock.close()
                raise
        else:
            # create_connection closes its socket internally on failure.
            sock = socket.create_connection(tuple(value), timeout=connect_timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._reader = protocol.FrameReader(max_frame_bytes=self._max_frame_bytes)
        return sock

    def _close_unlocked(self) -> None:
        """Drop the socket.  Caller holds (or is) ``self._lock``."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._close_unlocked()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame, wait for one response frame (raw, no raising)."""
        with self._lock:
            self._counter += 1
            message = dict(message)
            message.setdefault("id", self._counter)
            sock = self._connect()
            try:
                sock.sendall(protocol.encode_frame(message))
                frames = protocol.receive_frames(sock, self._reader)
            except (OSError, protocol.ProtocolError):
                self._close_unlocked()
                raise
            if frames is None:
                self._close_unlocked()
                raise ConnectionError("server closed the connection")
            return frames[0]

    def _checked(self, message: Dict[str, Any]) -> Dict[str, Any]:
        response = self.request(message)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", protocol.ERR_INTERNAL),
                error.get("message", "unknown error"),
                response,
            )
        return response

    def ping(self) -> bool:
        """True when the daemon answers."""
        return bool(self._checked({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, Any]:
        """The daemon's counter snapshot."""
        return self._checked({"op": "stats"})["stats"]

    def health(self) -> Dict[str, Any]:
        """The daemon's watchdog health snapshot (``health`` op)."""
        return self._checked({"op": "health"})["health"]

    def shutdown_server(self) -> bool:
        """Ask the daemon to shut down cleanly."""
        return bool(self._checked({"op": "shutdown"}).get("ok"))

    # -- resilient request path (retry / backoff / hedging) -------------

    def _resilient(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Run ``message`` under the retry policy; single-shot without one."""
        policy = self.retry
        if policy is None:
            return self._checked(message)
        stats = self.retry_stats
        last_exc: Optional[BaseException] = None
        for attempt in range(policy.max_attempts):
            stats.bump("attempts")
            retry_after: Optional[float] = None
            try:
                if policy.hedge_after is not None:
                    return self._hedged(message, policy, stats)
                return self._checked(message)
            except ServeError as exc:
                if not policy.retriable(exc.code):
                    raise
                last_exc = exc
                value = exc.response.get("retry_after")
                retry_after = value if isinstance(value, (int, float)) else None
            except (OSError, ConnectionError, protocol.ProtocolError) as exc:
                # request() already dropped the socket; the next attempt
                # reconnects transparently.
                last_exc = exc
                stats.bump("reconnects")
            if attempt + 1 >= policy.max_attempts:
                break
            delay, honored = policy.delay(attempt, retry_after)
            if honored:
                stats.bump("retry_after_honored")
            stats.bump("retries")
            if delay > 0:
                time.sleep(delay)
        stats.bump("giveups")
        assert last_exc is not None
        raise last_exc

    def _hedged(self, message: Dict[str, Any], policy: Any, stats: Any) -> Dict[str, Any]:
        """One attempt with tail-latency hedging.

        The primary request runs on this client's connection in a helper
        thread.  If it has not answered within ``policy.hedge_after``
        seconds, an identical request is raced on a *fresh* connection and
        the first response wins — the daemon's in-flight dedup attaches the
        duplicate to the running compile, so nothing runs twice.  The
        abandoned loser drains (or times out) in the background; both
        sockets stay lock-consistent.
        """
        results: "queue_module.Queue[Tuple[str, Any]]" = queue_module.Queue()

        def run_primary() -> None:
            try:
                results.put(("primary", self._checked(message)))
            except BaseException as exc:  # noqa: BLE001 — relayed to caller
                results.put(("primary-error", exc))

        primary = threading.Thread(target=run_primary, name="serve-client-primary", daemon=True)
        primary.start()
        try:
            source, value = results.get(timeout=policy.hedge_after)
        except queue_module.Empty:
            stats.bump("hedges")
            hedge_client = ServeClient(
                self._address_spec,
                timeout=self.timeout,
                max_frame_bytes=self._max_frame_bytes,
                connect_timeout=self.connect_timeout,
            )

            def run_hedge() -> None:
                try:
                    results.put(("hedge", hedge_client._checked(message)))
                except BaseException as exc:  # noqa: BLE001 — relayed to caller
                    results.put(("hedge-error", exc))
                finally:
                    hedge_client.close()

            threading.Thread(target=run_hedge, name="serve-client-hedge", daemon=True).start()
            deadline = self.timeout if self.timeout is not None else 300.0
            first_error: Optional[BaseException] = None
            for _ in range(2):  # at most two outcomes can arrive
                source, value = results.get(timeout=deadline)
                if source in ("primary", "hedge"):
                    if source == "hedge":
                        stats.bump("hedge_wins")
                    return value
                if first_error is None:
                    first_error = value
            assert first_error is not None
            raise first_error
        if source == "primary":
            return value
        raise value

    def compile(
        self,
        qasm: str,
        compiler: str = "reqisc-eff",
        seed: int = 0,
        target: Optional[str] = None,
        timeout: Optional[float] = None,
        fault: Optional[str] = None,
        session: Optional[str] = None,
        priority: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Compile one OpenQASM 2.0 program; raises :class:`ServeError` on failure.

        The success response carries ``qasm`` (the compiled program),
        ``summary`` (the metric row), ``key`` (the dedup content hash),
        ``cached`` (``"no"`` / ``"result"``) and ``compile_seconds``.

        ``session`` names an incremental compile session: resubmitting an
        edited program under the same session replays every memoized pass
        and region on the session's pinned worker (bit-identical output).
        ``priority`` (0–9, higher first) orders queued work and decides
        what a degraded daemon sheds.  Optional fields are only sent when
        set, so older daemons keep working.

        When the client carries a retry policy, transport failures and
        retriable daemon errors (``overloaded``/``timeout``/``worker-crash``,
        plus transient ``internal``) are retried with bounded backoff —
        safe, because submissions are idempotent under content-hash dedup.
        """
        message: Dict[str, Any] = {
            "op": "compile",
            "qasm": qasm,
            "compiler": compiler,
            "seed": seed,
            "target": target,
        }
        if timeout is not None:
            message["timeout"] = timeout
        if fault is not None:
            message["fault"] = fault
        if session is not None:
            message["session"] = session
        if priority is not None:
            message["priority"] = priority
        return self._resilient(message)
