"""Wire protocol of the ``repro serve`` daemon.

Frames are newline-delimited JSON objects (one request or response per
line) over a Unix-domain or local TCP socket.  NDJSON keeps the framing
trivially debuggable (``nc -U .repro-serve.sock`` works) while still
supporting strict validation: a frame that is not valid JSON, not an
object, or longer than ``max_frame_bytes`` is a :class:`ProtocolError` —
the server answers with a ``bad-request`` / ``too-large`` error frame and
closes the connection, because a malformed stream has no recoverable
record boundary.

Requests carry an ``op``:

``compile``
    ``{"op": "compile", "id": ..., "qasm": "...", "compiler": "reqisc-eff",
    "seed": 0, "target": null, "timeout": 30.0}`` — compile an OpenQASM 2.0
    program.  ``id`` is an arbitrary client token echoed back verbatim.
    ``session`` (optional string) names an incremental compile session:
    jobs sharing a session are pinned to one worker, which keeps a
    per-session pass-memo store so edited resubmissions replay every
    unchanged pass and region (see ``docs/incremental.md``).
    ``fault`` (``raise`` / ``hang`` / ``exit``) is only accepted when the
    server was started with fault injection enabled (test harnesses).
    ``priority`` (optional int 0–9, default 5; higher is more important)
    orders queued work and decides what the daemon sheds first when its
    watchdog declares the queue degraded (see ``docs/resilience.md``).
``ping`` / ``stats`` / ``shutdown``
    Liveness probe, counter snapshot, and clean daemon shutdown.
``health``
    Watchdog snapshot: queue depth, worker liveness, dedup/cache hit
    rates, degraded-mode flag and last-scrub age — the op a load balancer
    or the ``repro chaos`` soak polls.

Responses echo ``id`` and carry ``ok``; failures carry
``{"error": {"code": ..., "message": ...}}`` with a code from
:data:`ERROR_CODES` — most importantly ``overloaded`` (bounded-queue
backpressure: resubmit later; the frame carries a ``retry_after`` hint in
seconds that resilient clients honor), ``timeout`` (the per-job deadline
killed the worker) and ``worker-crash`` (the job took its worker down; the
pool respawned it).  See ``docs/serving.md`` and ``docs/resilience.md``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "ERR_BAD_REQUEST",
    "ERR_COMPILE",
    "ERR_INTERNAL",
    "ERR_OVERLOADED",
    "ERR_SHUTDOWN",
    "ERR_TIMEOUT",
    "ERR_TOO_LARGE",
    "ERR_WORKER_CRASH",
    "ERROR_CODES",
    "DEFAULT_PRIORITY",
    "MAX_PRIORITY",
    "MIN_PRIORITY",
    "FAULT_MODES",
    "FrameReader",
    "ProtocolError",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_address",
    "validate_request",
]

#: Hard ceiling on one frame (request or response) in bytes.  Large enough
#: for any realistic compiled program, small enough that a single client
#: cannot exhaust daemon memory with one unbounded line.
DEFAULT_MAX_FRAME_BYTES = 8 * 1024 * 1024

ERR_BAD_REQUEST = "bad-request"
ERR_TOO_LARGE = "too-large"
ERR_OVERLOADED = "overloaded"
ERR_TIMEOUT = "timeout"
ERR_WORKER_CRASH = "worker-crash"
ERR_COMPILE = "compile-error"
ERR_SHUTDOWN = "shutting-down"
ERR_INTERNAL = "internal"

ERROR_CODES = (
    ERR_BAD_REQUEST,
    ERR_TOO_LARGE,
    ERR_OVERLOADED,
    ERR_TIMEOUT,
    ERR_WORKER_CRASH,
    ERR_COMPILE,
    ERR_SHUTDOWN,
    ERR_INTERNAL,
)

#: Faults a test harness may inject into a worker (server opt-in only).
FAULT_MODES = ("raise", "hang", "exit")

_OPS = ("compile", "ping", "stats", "shutdown", "health")

#: Priority bounds for compile requests (higher = shed later).
MIN_PRIORITY, MAX_PRIORITY, DEFAULT_PRIORITY = 0, 9, 5


class ProtocolError(Exception):
    """A frame violated the wire protocol (bad JSON, bad shape, too large)."""

    def __init__(self, message: str, code: str = ERR_BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code


def _coerce_json(value: Any) -> Any:
    """JSON fallback for numpy scalars that leak into summaries."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return str(value)


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one message as a newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":"), default=_coerce_json).encode("utf-8") + b"\n"


class FrameReader:
    """Incremental NDJSON frame decoder with a per-frame size bound.

    Feed raw socket bytes in; complete frames come out.  Raises
    :class:`ProtocolError` on a non-JSON or non-object line, or as soon as
    the unterminated buffer exceeds ``max_frame_bytes`` (before the memory
    is spent, not after).
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Consume ``data``; return every frame it completed."""
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if len(self._buffer) > self.max_frame_bytes:
                    raise ProtocolError(
                        f"frame exceeds {self.max_frame_bytes} bytes", code=ERR_TOO_LARGE
                    )
                return frames
            line = bytes(self._buffer[:newline]).strip()
            del self._buffer[: newline + 1]
            if not line:
                continue
            if len(line) > self.max_frame_bytes:
                raise ProtocolError(
                    f"frame exceeds {self.max_frame_bytes} bytes", code=ERR_TOO_LARGE
                )
            try:
                frame = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
            if not isinstance(frame, dict):
                raise ProtocolError("frame must be a JSON object")
            frames.append(frame)


def validate_request(frame: Dict[str, Any], *, allow_fault: bool = False) -> Dict[str, Any]:
    """Check shape and types of a request frame; return it normalized.

    Raises :class:`ProtocolError` with a human-readable message on any
    violation.  Unknown keys are rejected so client typos (``complier``)
    fail loudly instead of silently compiling with defaults.
    """
    op = frame.get("op")
    if op not in _OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {', '.join(_OPS)}")
    allowed = {"op", "id"}
    if op == "compile":
        allowed |= {"qasm", "compiler", "seed", "target", "timeout", "fault", "session", "priority"}
    unknown = set(frame) - allowed
    if unknown:
        raise ProtocolError(f"unknown field(s) for op {op!r}: {', '.join(sorted(unknown))}")

    request: Dict[str, Any] = {"op": op, "id": frame.get("id")}
    if op != "compile":
        return request

    qasm = frame.get("qasm")
    if not isinstance(qasm, str) or not qasm.strip():
        raise ProtocolError("compile requires a non-empty 'qasm' string")
    compiler = frame.get("compiler", "reqisc-eff")
    if not isinstance(compiler, str):
        raise ProtocolError("'compiler' must be a string")
    seed = frame.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ProtocolError("'seed' must be an integer")
    target = frame.get("target")
    if target is not None and not isinstance(target, str):
        raise ProtocolError("'target' must be a preset name (string) or null")
    timeout = frame.get("timeout")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) or timeout <= 0:
            raise ProtocolError("'timeout' must be a positive number of seconds")
        timeout = float(timeout)
    fault = frame.get("fault")
    if fault is not None:
        if fault not in FAULT_MODES:
            raise ProtocolError(f"unknown fault {fault!r}; expected one of {', '.join(FAULT_MODES)}")
        if not allow_fault:
            raise ProtocolError("fault injection is disabled on this server")
    session = frame.get("session")
    if session is not None and (not isinstance(session, str) or not session.strip()):
        raise ProtocolError("'session' must be a non-empty string or null")
    priority = frame.get("priority", DEFAULT_PRIORITY)
    if (
        not isinstance(priority, int)
        or isinstance(priority, bool)
        or not MIN_PRIORITY <= priority <= MAX_PRIORITY
    ):
        raise ProtocolError(
            f"'priority' must be an integer in [{MIN_PRIORITY}, {MAX_PRIORITY}]"
        )
    request.update(
        {"qasm": qasm, "compiler": compiler, "seed": seed, "target": target,
         "timeout": timeout, "fault": fault, "session": session, "priority": priority}
    )
    return request


def ok_response(request_id: Any, **fields: Any) -> Dict[str, Any]:
    """A success frame echoing the client's ``id``."""
    response: Dict[str, Any] = {"id": request_id, "ok": True}
    response.update(fields)
    return response


def error_response(request_id: Any, code: str, message: str, **fields: Any) -> Dict[str, Any]:
    """A failure frame with a structured ``{code, message}`` error."""
    assert code in ERROR_CODES, code
    response: Dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    response.update(fields)
    return response


def parse_address(spec: Union[str, Tuple[str, int]]) -> Tuple[str, Any]:
    """Normalize an address spec into ``("unix", path)`` or ``("tcp", (host, port))``.

    Accepted forms: a filesystem path (Unix-domain socket, the default),
    ``unix:PATH``, ``tcp:HOST:PORT`` or ``HOST:PORT`` where PORT is numeric.
    """
    if isinstance(spec, tuple):
        host, port = spec
        return ("tcp", (str(host), int(port)))
    if spec.startswith("unix:"):
        return ("unix", spec[len("unix:"):])
    if spec.startswith("tcp:"):
        rest = spec[len("tcp:"):]
        host, _, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"invalid tcp address {spec!r}; expected tcp:HOST:PORT")
        return ("tcp", (host, int(port)))
    host, _, port = spec.rpartition(":")
    if host and port.isdigit() and "/" not in spec:
        return ("tcp", (host, int(port)))
    return ("unix", spec)


def format_address(address: Tuple[str, Any]) -> str:
    """Human-readable form of a :func:`parse_address` result."""
    family, value = address
    if family == "unix":
        return f"unix:{value}"
    host, port = value
    return f"tcp:{host}:{port}"


def receive_frames(sock, reader: FrameReader, bufsize: int = 65536) -> Optional[List[Dict[str, Any]]]:
    """Blocking read of at least one frame from ``sock``.

    Returns ``None`` on a clean EOF with an empty buffer; raises
    :class:`ProtocolError` exactly like :meth:`FrameReader.feed`.
    """
    while True:
        data = sock.recv(bufsize)
        if not data:
            return None
        frames = reader.feed(data)
        if frames:
            return frames
