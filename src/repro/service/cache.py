"""Content-addressed synthesis cache (the memoization tier of the service layer).

Synthesizing a two- or three-qubit unitary — a KAK decomposition for the
``{Can, U3}`` ISA (Section 4.1), a template realization (Section 5.2) or a
numerical approximate-synthesis run (Section 5.1) — depends only on the
unitary itself plus a handful of solver settings.  Across a benchmark suite
the same blocks recur constantly (every Toffoli, every QFT rotation ladder),
so the service layer memoizes synthesis results behind a *content-addressed*
cache: entries are keyed by a canonical fingerprint of the exact matrix bytes
plus a context tag, never by object identity.

Two storage tiers are provided:

* an in-memory LRU dictionary (always on, bounded by ``capacity``), and
* an optional on-disk store under ``directory`` that persists results across
  processes and across CLI invocations — this is what makes a *second*
  ``python -m repro suite`` run measurably faster.

Exact-byte keys guarantee that a cached value is bit-identical to what a
fresh computation would return, which keeps parallel batch compilation
(:mod:`repro.service.batch`) deterministic: it can never matter in which
order worker processes populate the cache.

Disk-tier concurrency model (the ``repro serve`` daemon and batch workers
hammer one cache directory from many processes at once):

* **Append-only segments.**  Every writer process appends complete records
  (magic, key, length, CRC32, pickled payload) to its *own* segment file
  under ``directory/segments/``; no file is ever written by two processes
  and no byte is ever rewritten.  A process killed mid-append can only
  leave a truncated *tail*, which readers detect (length/CRC validation)
  and ignore — earlier records stay readable, so a crash can never corrupt
  the store for anybody else.
* **Atomic index swaps.**  A JSON index (key → segment/offset/length plus
  per-segment scan high-water marks) is periodically published via
  write-temp-then-``os.replace``, so readers always see either the old or
  the new index, never a torn one.  The index is a pure accelerator:
  readers tail-scan segments past their high-water marks, so a stale or
  missing index costs a re-scan, not a lost entry.
* **Compaction.**  :meth:`SynthesisCache.compact` folds every live record
  (including legacy one-pickle-per-entry files from older caches) into a
  single fresh segment and swaps the index — run it offline (no concurrent
  writers); concurrent readers degrade to misses, never to corrupt reads.

Usage::

    from repro.service.cache import SynthesisCache, unitary_fingerprint

    cache = SynthesisCache(capacity=4096, directory=".repro-cache")
    key = unitary_fingerprint(matrix, "kak")
    decomposition = cache.get_or_compute(key, lambda: kak_decompose(matrix))
    print(cache.stats.hits, cache.stats.misses)
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import struct
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "CacheStats",
    "SynthesisCache",
    "circuit_fingerprint",
    "scrub_age_seconds",
    "unitary_fingerprint",
]

logger = logging.getLogger(__name__)

#: Segment record header: magic, key length, payload length, CRC32 of
#: ``key_bytes + payload``.  A record is header + key bytes + payload bytes.
_RECORD_HEADER = struct.Struct(">4sHQI")
_RECORD_MAGIC = b"RSC1"
#: Publish the JSON index every this many puts (pure accelerator — readers
#: tail-scan segments regardless, see the module docstring).
_INDEX_PUBLISH_INTERVAL = 64
_INDEX_NAME = "index.json"
_SEGMENT_DIR = "segments"
_SEGMENT_SUFFIX = ".seg"
_QUARANTINE_DIR = "quarantine"
_SCRUB_STAMP = "scrub.stamp"

#: Test/chaos hook: when set, called with a stage name ("pre-replace",
#: "post-replace", "pre-unlink") at the crash-sensitive points of
#: :meth:`SynthesisCache.compact`.  Raising (or ``os._exit``-ing) from the
#: hook models a crash at exactly that point; the store must recover
#: losslessly on the next open.  Never set in production.
_compact_test_hook: Optional[Callable[[str], None]] = None


def _compact_stage(stage: str) -> None:
    if _compact_test_hook is not None:
        _compact_test_hook(stage)


def scrub_age_seconds(directory: str) -> Optional[float]:
    """Seconds since ``directory`` was last scrubbed, or None if never.

    Reads the ``scrub.stamp`` written by :meth:`SynthesisCache.scrub`
    without opening the cache — cheap enough for the daemon's ``health``
    op to call on every probe.
    """
    try:
        with open(os.path.join(directory, _SCRUB_STAMP), "r", encoding="utf-8") as handle:
            stamp = json.load(handle)
        return max(0.0, time.time() - float(stamp["time"]))
    except (OSError, ValueError, TypeError, KeyError):
        return None

class _NoneSentinel:
    """Stored in place of ``None`` (negative caching, e.g. "approximate
    synthesis did not beat the original block").  Unpickles back to the module
    singleton so identity survives the disk tier; lookups additionally match
    by type for robustness."""

    def __reduce__(self):
        return (_none_sentinel, ())

    def __repr__(self) -> str:
        return "<cached-None>"


def _none_sentinel() -> "_NoneSentinel":
    return _NONE


_NONE = _NoneSentinel()

#: Sentinel returned by the internal lookup helpers on a miss, so that a
#: legitimately cached ``None`` is distinguishable from "not present".
_MISS = object()


def unitary_fingerprint(matrix: np.ndarray, *context: str) -> str:
    """Canonical content fingerprint of a unitary plus a context tag.

    The fingerprint hashes the exact bytes of the C-contiguous complex128
    representation of ``matrix`` together with its shape and every ``context``
    string (pass name, solver settings, ...).  Two arrays with equal entries
    produce the same fingerprint regardless of memory layout; any difference
    in value, shape or context produces a different one.

    Exactness is deliberate: no rounding is applied, so a cache keyed by this
    fingerprint returns results that are bit-identical to recomputation.
    """
    array = np.ascontiguousarray(np.asarray(matrix, dtype=complex))
    digest = hashlib.sha256()
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    for tag in context:
        digest.update(b"\x00")
        digest.update(str(tag).encode())
    return digest.hexdigest()


def circuit_fingerprint(circuit, *context: str) -> str:
    """Content fingerprint of a :class:`~repro.circuits.circuit.QuantumCircuit`.

    Hashes the qubit count and, per instruction, the gate identity and qubit
    tuple.  Named gates are identified by name + exact parameter bytes;
    explicit-matrix gates (fused ``su4`` blocks) by their matrix bytes, so two
    fused blocks with the same label but different unitaries never collide.
    """
    from repro.gates.gate import UnitaryGate

    digest = hashlib.sha256()
    digest.update(str(circuit.num_qubits).encode())
    for instruction in circuit:
        gate = instruction.gate
        digest.update(b"|")
        digest.update(gate.name.encode())
        digest.update(str(instruction.qubits).encode())
        if isinstance(gate, UnitaryGate):
            digest.update(np.ascontiguousarray(gate.matrix).tobytes())
        elif gate.params:
            digest.update(np.asarray(gate.params, dtype=float).tobytes())
    for tag in context:
        digest.update(b"\x00")
        digest.update(str(tag).encode())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of a :class:`SynthesisCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    puts: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary (used by the CLI JSON output)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
        }

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats snapshot into this one (batch workers)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.disk_hits += other.disk_hits
        self.puts += other.puts

    def snapshot(self) -> "CacheStats":
        """Independent copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.evictions, self.disk_hits, self.puts)

    def delta_since(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
            self.disk_hits - earlier.disk_hits,
            self.puts - earlier.puts,
        )


class SynthesisCache:
    """Two-tier (memory LRU + optional disk) content-addressed cache.

    Parameters
    ----------
    capacity:
        Maximum number of in-memory entries; the least recently used entry is
        evicted first.  ``None`` disables the bound.
    directory:
        When given, every entry is additionally appended to this process's
        own segment file under ``directory/segments/`` and in-memory misses
        fall back to the disk store (segments first, then legacy
        ``directory/<k0k1>/<key>.pkl`` files written by older versions).
        The directory is created on first write.  The disk tier is safe
        under concurrent multi-process readers and writers — see the module
        docstring for the concurrency model.

    The cache is thread-safe; cached values must be picklable when the disk
    tier is enabled.
    """

    def __init__(self, capacity: Optional[int] = 4096, directory: Optional[str] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.directory = os.fspath(directory) if directory else None
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.RLock()
        # Disk tier state: key -> (segment name, payload offset, payload
        # length); per-segment scan high-water marks; this process's own
        # append-only segment (opened lazily on first put).
        self._seg_index: Dict[str, Tuple[str, int, int]] = {}
        self._seg_offsets: Dict[str, int] = {}
        self._own_segment_name: Optional[str] = None
        self._own_segment_fd: Optional[int] = None
        self._puts_since_publish = 0
        self._index_loaded = False
        # Disk-health counters (see disk_stats): how often the tail scan hit
        # a truncated record (killed writer / in-progress append) or stopped
        # at a corrupt one (bad magic or CRC), deduplicated per byte offset
        # so repeated refreshes over the same damage count once.
        self._partial_tail_events = 0
        self._corrupt_record_events = 0
        self._scan_anomalies: Dict[Tuple[str, int], str] = {}
        # Chaos hook: a FaultInjector for the "cache" layer (repro.resilience).
        # When set, scheduled bit-flips / truncations are applied to records
        # immediately after they are appended — the scrubber must catch them.
        self.fault_injector: Optional[Any] = None

    # ------------------------------------------------------------------
    # Container protocol.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries or self._disk_path_exists(key)

    # ------------------------------------------------------------------
    # Core operations.
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key``; counts a hit or a miss.  Returns ``default`` on miss."""
        value = self._lookup(key)
        if value is _MISS:
            return default
        return None if isinstance(value, _NoneSentinel) else value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in both tiers."""
        stored = _NONE if value is None else value
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = stored
            self.stats.puts += 1
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        self._disk_write(key, stored)

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing and storing on miss."""
        value = self._lookup(key)
        if value is not _MISS:
            return None if isinstance(value, _NoneSentinel) else value
        result = compute()
        self.put(key, result)
        return result

    def clear(self, *, reset_stats: bool = False) -> None:
        """Drop every in-memory entry (the disk tier is left untouched)."""
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self.stats = CacheStats()

    def flush(self) -> None:
        """Publish the disk index now (write-temp + atomic rename).

        Appends themselves are durable as soon as :meth:`put` returns; the
        index only accelerates other processes' lookups.  Long-running
        writers (the ``repro serve`` workers) call this at shutdown.
        """
        with self._lock:
            if self.directory is None:
                return
            self._refresh_segments()
            self._publish_index()

    def compact(self) -> Dict[str, int]:
        """Fold every live disk record into one fresh segment.

        Rewrites the newest record per key (including entries from the
        legacy one-pickle-per-entry layout) into a single segment, swaps the
        index atomically, then removes the superseded segment files and
        legacy entries.  Intended as an offline maintenance step: run it
        without concurrent *writers*; concurrent readers fall back to a
        miss-and-recompute if a segment vanishes underneath them.

        Returns ``{"entries": ..., "segments_removed": ..., "legacy_removed": ...}``.
        """
        with self._lock:
            if self.directory is None:
                return {"entries": 0, "segments_removed": 0, "legacy_removed": 0}
            self._refresh_segments()
            live: Dict[str, bytes] = {}
            for key, location in self._seg_index.items():
                payload = self._read_segment_payload(key, location)
                if payload is not None:
                    live[key] = payload
            legacy = self._scan_legacy_entries()
            for key, payload in legacy.items():
                live.setdefault(key, payload)

            segment_dir = os.path.join(self.directory, _SEGMENT_DIR)
            os.makedirs(segment_dir, exist_ok=True)
            old_segments = [
                entry.name
                for entry in os.scandir(segment_dir)
                if entry.is_file() and entry.name.endswith(_SEGMENT_SUFFIX)
            ]
            # Write the compacted segment to a temp file, fsync, then rename
            # into place so it appears fully formed or not at all.
            name = f"compact-{os.getpid()}-{os.urandom(4).hex()}{_SEGMENT_SUFFIX}"
            final_path = os.path.join(segment_dir, name)
            tmp_path = f"{final_path}.tmp"
            index: Dict[str, Tuple[str, int, int]] = {}
            offset = 0
            with open(tmp_path, "wb") as handle:
                for key in sorted(live):
                    record = self._build_record(key, live[key])
                    payload_offset = offset + _RECORD_HEADER.size + len(key.encode("utf-8"))
                    index[key] = (name, payload_offset, len(live[key]))
                    handle.write(record)
                    offset += len(record)
                handle.flush()
                os.fsync(handle.fileno())
            _compact_stage("pre-replace")
            os.replace(tmp_path, final_path)
            _compact_stage("post-replace")

            # Swap in the new view, publish, then delete the superseded files.
            self._close_own_segment()
            self._seg_index = index
            self._seg_offsets = {name: offset}
            self._publish_index()
            _compact_stage("pre-unlink")
            removed = 0
            for old in old_segments:
                if old == name:
                    continue
                try:
                    os.unlink(os.path.join(segment_dir, old))
                    removed += 1
                except OSError:
                    pass
            legacy_removed = self._remove_legacy_entries()
            return {
                "entries": len(live),
                "segments_removed": removed,
                "legacy_removed": legacy_removed,
            }

    def scrub(self) -> Dict[str, Any]:
        """CRC-verify every disk record; quarantine and salvage corruption.

        The tail scan (:meth:`_scan_records`) is an *optimistic* reader: it
        stops at the first invalid record, so corruption in the middle of a
        segment silently hides every record after it.  ``scrub`` is the
        repair pass: it re-reads every segment from byte zero, classifies
        every stop, and

        * keeps healthy segments (a truncated record at EOF is the normal
          signature of a killed writer and is tolerated in place),
        * moves any segment with *mid-file* damage (bad magic, CRC mismatch,
          a torn record followed by more data) to ``segments/quarantine/``
          for forensics — after salvaging every record in it that still
          CRC-verifies into a fresh ``scrub-*.seg`` segment, so no valid
          record is ever lost,
        * deletes stale ``*.tmp`` files left by crashed compactions,
        * rebuilds and atomically republishes the index from what was
          actually verified, and
        * records a ``scrub.stamp`` (surfaced as ``last_scrub_age_seconds``
          in :meth:`disk_stats` and the daemon's ``health`` op).

        Like :meth:`compact`, scrub is an offline maintenance step: run it
        without concurrent writers (concurrent readers degrade to misses).
        """
        empty = {
            "segments_scanned": 0,
            "records_valid": 0,
            "records_salvaged": 0,
            "segments_quarantined": 0,
            "torn_tails": 0,
            "corrupt_sites": 0,
            "tmp_files_removed": 0,
            "unreadable_segments": 0,
            "entries": 0,
        }
        with self._lock:
            if self.directory is None:
                return dict(empty)
            segment_dir = os.path.join(self.directory, _SEGMENT_DIR)
            report = dict(empty)
            self._close_own_segment()
            try:
                listing = list(os.scandir(segment_dir))
            except OSError:
                listing = []
            for entry in listing:
                if entry.is_file() and entry.name.endswith(".tmp"):
                    try:
                        os.unlink(entry.path)
                        report["tmp_files_removed"] += 1
                    except OSError:
                        pass
            names = self._segment_names_oldest_first(segment_dir)

            # The live index is the authority on *which* copy of a key is
            # current: duplicate keys across segments (a crashed compact, an
            # overwrite in a newer segment) carry no version markers, and
            # segment names do not sort by age.  The full scan below rebuilds
            # reachability; ``prior`` then re-anchors every key whose indexed
            # record still verifies (or was salvaged) to that exact copy.
            # The one thing newer than the index is a record appended *past*
            # a segment's known high-water mark (an overwrite the index never
            # saw before the writer died): those outrank ``prior``.
            if not self._index_loaded:
                self._load_published_index()
            prior = dict(self._seg_index)
            known_hw = dict(self._seg_offsets)
            new_index: Dict[str, Tuple[str, int, int]] = {}
            new_offsets: Dict[str, int] = {}
            newer: Dict[str, Tuple[str, int, int]] = {}
            valid_locations: set = set()
            salvage: Dict[str, Tuple[bytes, Tuple[str, int, int]]] = {}
            damaged: List[Tuple[str, List[Tuple[str, int, int, int]]]] = []
            for name in names:
                path = os.path.join(segment_dir, name)
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                except OSError:
                    report["unreadable_segments"] += 1
                    continue
                records, torn, corrupt = self._scrub_scan(data)
                report["segments_scanned"] += 1
                report["records_valid"] += len(records)
                report["torn_tails"] += torn
                report["corrupt_sites"] += corrupt
                hw = known_hw.get(name)
                if corrupt == 0:
                    for key, payload_offset, payload_len, end in records:
                        location = (name, payload_offset, payload_len)
                        new_index[key] = location
                        valid_locations.add(location)
                        if hw is not None and end > hw:
                            newer[key] = location
                    # With a torn tail, park the high-water mark at the last
                    # valid record so a still-in-flight append is retried.
                    if torn == 0:
                        new_offsets[name] = len(data)
                    else:
                        new_offsets[name] = records[-1][3] if records else 0
                else:
                    damaged.append((name, records))
                    for key, payload_offset, payload_len, end in records:
                        location = (name, payload_offset, payload_len)
                        salvage[key] = (
                            data[payload_offset : payload_offset + payload_len],
                            location,
                        )
                        if hw is not None and end > hw:
                            newer[key] = location

            quarantine_names = [name for name, _ in damaged]
            relocations: Dict[Tuple[str, int, int], Tuple[str, int, int]] = {}
            if salvage:
                os.makedirs(segment_dir, exist_ok=True)
                scrub_name = f"scrub-{os.getpid()}-{os.urandom(4).hex()}{_SEGMENT_SUFFIX}"
                final_path = os.path.join(segment_dir, scrub_name)
                tmp_path = f"{final_path}.tmp"
                offset = 0
                salvage_index: Dict[str, Tuple[str, int, int]] = {}
                try:
                    with open(tmp_path, "wb") as handle:
                        for key in sorted(salvage):
                            payload, old_location = salvage[key]
                            record = self._build_record(key, payload)
                            payload_offset = offset + _RECORD_HEADER.size + len(key.encode("utf-8"))
                            salvage_index[key] = (scrub_name, payload_offset, len(payload))
                            relocations[old_location] = salvage_index[key]
                            handle.write(record)
                            offset += len(record)
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(tmp_path, final_path)
                    new_offsets[scrub_name] = offset
                    report["records_salvaged"] = len(salvage)
                    for key, location in salvage_index.items():
                        new_index.setdefault(key, location)
                except OSError:
                    # Could not write the salvage segment: leave the damaged
                    # segments in place (their valid records are individually
                    # readable and CRC-checked) rather than quarantining
                    # records we failed to copy out.
                    logger.warning("scrub: failed to write salvage segment; leaving store as-is")
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
                    quarantine_names = []
                    relocations = {}
                    for name, records in damaged:
                        for key, payload_offset, payload_len, _ in records:
                            new_index.setdefault(key, (name, payload_offset, payload_len))
                            valid_locations.add((name, payload_offset, payload_len))
                        new_offsets[name] = records[-1][3] if records else 0

            if quarantine_names:
                quarantine_dir = os.path.join(segment_dir, _QUARANTINE_DIR)
                try:
                    os.makedirs(quarantine_dir, exist_ok=True)
                except OSError:
                    quarantine_dir = None
                for name in quarantine_names:
                    if quarantine_dir is None:
                        break
                    try:
                        os.replace(
                            os.path.join(segment_dir, name), os.path.join(quarantine_dir, name)
                        )
                        report["segments_quarantined"] += 1
                        logger.warning("scrub: quarantined corrupt cache segment %s", name)
                    except OSError:
                        continue
                    self._scan_anomalies = {
                        site: kind for site, kind in self._scan_anomalies.items() if site[0] != name
                    }

            # Re-anchor keys the live index already resolved: where the scan
            # saw the same key in several segments, the indexed copy (possibly
            # relocated into the salvage segment) wins over name order — and a
            # record appended past a segment's high-water mark wins over both.
            for overlay in (prior, newer):
                for key, location in overlay.items():
                    if location in valid_locations:
                        new_index[key] = location
                    elif location in relocations:
                        new_index[key] = relocations[location]

            self._seg_index = new_index
            self._seg_offsets = new_offsets
            report["entries"] = len(new_index)
            self._publish_index()
            self._write_scrub_stamp(report)
            # The full rescan supersedes the incremental damage tallies: what
            # scrub found is in the report/stamp, and anything it healed (or
            # quarantined) is no longer a live anomaly.
            self._partial_tail_events = 0
            self._corrupt_record_events = 0
            self._scan_anomalies = {}
            return report

    def _scrub_scan(self, data: bytes) -> Tuple[List[Tuple[str, int, int, int]], int, int]:
        """Full-depth scan of one segment's bytes with forward resync.

        Returns ``(records, torn_tails, corrupt_sites)`` where each record is
        ``(key, payload_offset, payload_len, end_offset)``.  Unlike
        :meth:`_scan_records`, an invalid record does not end the scan: the
        scanner searches forward for the next record magic and keeps going,
        which is what salvages records stranded behind a damaged one.  A
        truncated record at EOF with nothing after it counts as a torn tail
        (normal); every other anomaly counts as a corrupt site.
        """
        records: List[Tuple[str, int, int, int]] = []
        torn = 0
        corrupt = 0
        pos = 0
        while pos < len(data):
            status, parsed = self._parse_record_at(data, pos)
            if status == "ok":
                records.append(parsed)
                pos = parsed[3]
                continue
            resync = data.find(_RECORD_MAGIC, pos + 1)
            if status == "incomplete" and resync == -1:
                torn += 1  # clean torn tail at EOF — a killed writer, not corruption
                break
            corrupt += 1
            if resync == -1:
                break
            pos = resync
        return records, torn, corrupt

    @staticmethod
    def _parse_record_at(
        data: bytes, pos: int
    ) -> Tuple[str, Optional[Tuple[str, int, int, int]]]:
        """Try to parse one record at ``pos``: ("ok", record) / ("incomplete"
        | "corrupt", None)."""
        header_size = _RECORD_HEADER.size
        if pos + header_size > len(data):
            return "incomplete", None
        magic, key_len, payload_len, crc = _RECORD_HEADER.unpack_from(data, pos)
        if magic != _RECORD_MAGIC:
            return "corrupt", None
        end = pos + header_size + key_len + payload_len
        if end > len(data):
            return "incomplete", None
        body = data[pos + header_size : end]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            return "corrupt", None
        key = body[:key_len].decode("utf-8", errors="replace")
        return "ok", (key, pos + header_size + key_len, payload_len, end)

    def _write_scrub_stamp(self, report: Dict[str, Any]) -> None:
        if self.directory is None:
            return
        path = os.path.join(self.directory, _SCRUB_STAMP)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump({"time": time.time(), "report": report}, handle)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def disk_stats(self) -> Dict[str, Any]:
        """Disk-tier inventory plus health: entries, segments, bytes, damage.

        Refreshes the segment view first, so the numbers include records
        appended by other processes since this cache was opened.  Legacy
        one-pickle-per-entry files are not counted (``compact`` folds them
        into the segment store).  Beyond the inventory, the health fields
        report what the tail scan has seen: ``partial_tails`` (truncated
        records at a segment tail — a killed writer or an append raced
        mid-write), ``corrupt_records`` (bad magic or CRC mismatch — real
        damage only :meth:`scrub` repairs), ``quarantined_segments`` (files
        scrub moved aside), and ``last_scrub_age_seconds`` (``None`` if the
        store was never scrubbed).
        """
        empty: Dict[str, Any] = {
            "entries": 0,
            "segments": 0,
            "bytes": 0,
            "partial_tails": 0,
            "corrupt_records": 0,
            "quarantined_segments": 0,
            "last_scrub_age_seconds": None,
        }
        with self._lock:
            if self.directory is None:
                return empty
            self._refresh_segments()
            segment_dir = os.path.join(self.directory, _SEGMENT_DIR)
            segments = 0
            total_bytes = 0
            try:
                for entry in os.scandir(segment_dir):
                    if entry.is_file() and entry.name.endswith(_SEGMENT_SUFFIX):
                        segments += 1
                        total_bytes += entry.stat().st_size
            except OSError:
                pass
            quarantined = 0
            try:
                quarantined = sum(
                    1
                    for entry in os.scandir(os.path.join(segment_dir, _QUARANTINE_DIR))
                    if entry.is_file()
                )
            except OSError:
                pass
            scrub_age = scrub_age_seconds(self.directory)
            return {
                "entries": len(self._seg_index),
                "segments": segments,
                "bytes": total_bytes,
                "partial_tails": self._partial_tail_events,
                "corrupt_records": self._corrupt_record_events,
                "quarantined_segments": quarantined,
                "last_scrub_age_seconds": scrub_age,
            }

    def close(self) -> None:
        """Flush the index and close this process's segment file."""
        with self._lock:
            if self.directory is not None:
                try:
                    self.flush()
                except OSError:
                    pass
            self._close_own_segment()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _lookup(self, key: str) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
        value = self._disk_read(key)
        with self._lock:
            if value is not _MISS:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._entries[key] = value
                if self.capacity is not None:
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.stats.evictions += 1
            else:
                self.stats.misses += 1
        return value

    # -- segment plumbing ----------------------------------------------

    def _segment_dir(self) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, _SEGMENT_DIR)

    @staticmethod
    def _build_record(key: str, payload: bytes) -> bytes:
        key_bytes = key.encode("utf-8")
        crc = zlib.crc32(key_bytes + payload) & 0xFFFFFFFF
        return _RECORD_HEADER.pack(_RECORD_MAGIC, len(key_bytes), len(payload), crc) + key_bytes + payload

    def _open_own_segment(self) -> Optional[int]:
        if self._own_segment_fd is not None:
            return self._own_segment_fd
        segment_dir = self._segment_dir()
        if segment_dir is None:
            return None
        os.makedirs(segment_dir, exist_ok=True)
        # One segment per process (pid + random token survives pid reuse):
        # no file ever has two writers, so records never interleave.
        name = f"w-{os.getpid()}-{os.urandom(4).hex()}{_SEGMENT_SUFFIX}"
        path = os.path.join(segment_dir, name)
        self._own_segment_fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._own_segment_name = name
        self._seg_offsets.setdefault(name, 0)
        return self._own_segment_fd

    def _close_own_segment(self) -> None:
        if self._own_segment_fd is not None:
            try:
                os.close(self._own_segment_fd)
            except OSError:
                pass
        self._own_segment_fd = None
        self._own_segment_name = None

    def _load_published_index(self) -> None:
        """Seed the in-memory index from the published ``index.json`` (if any).

        The index is advisory: entries are CRC-verified on read, and the
        recorded high-water marks only tell the tail scan where to start.
        """
        self._index_loaded = True
        if self.directory is None:
            return
        path = os.path.join(self.directory, _INDEX_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            entries = data.get("entries", {})
            offsets = data.get("segments", {})
            for key, location in entries.items():
                name, offset, length = location
                self._seg_index.setdefault(str(key), (str(name), int(offset), int(length)))
            for name, offset in offsets.items():
                self._seg_offsets[str(name)] = max(self._seg_offsets.get(str(name), 0), int(offset))
        except (OSError, ValueError, TypeError, KeyError):
            # A missing or unreadable index just means a full tail scan.
            pass

    @staticmethod
    def _segment_names_oldest_first(segment_dir: str) -> List[str]:
        """Segment names sorted oldest-mtime-first (ties broken by name).

        Duplicate keys across segments carry no version markers, so scan
        order decides which copy wins when the index is silent (e.g. whole
        segments orphaned by a crashed compact).  The random tokens in
        segment names are meaningless for age; mtime order approximates
        write order, so the newest copy of a key is scanned last and wins.
        """
        decorated = []
        try:
            listing = list(os.scandir(segment_dir))
        except OSError:
            return []
        for entry in listing:
            if not (entry.is_file() and entry.name.endswith(_SEGMENT_SUFFIX)):
                continue
            try:
                mtime = entry.stat().st_mtime_ns
            except OSError:
                mtime = 0
            decorated.append((mtime, entry.name))
        return [name for _, name in sorted(decorated)]

    def _refresh_segments(self) -> None:
        """Tail-scan every segment past its high-water mark for new records."""
        segment_dir = self._segment_dir()
        if segment_dir is None:
            return
        if not self._index_loaded:
            self._load_published_index()
        names = self._segment_names_oldest_first(segment_dir)
        for name in names:
            start = self._seg_offsets.get(name, 0)
            path = os.path.join(segment_dir, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size <= start:
                continue
            try:
                with open(path, "rb") as handle:
                    handle.seek(start)
                    data = handle.read(size - start)
            except OSError:
                continue
            consumed = self._scan_records(name, start, data)
            self._seg_offsets[name] = start + consumed

    def _note_scan_anomaly(self, segment_name: str, offset: int, kind: str) -> None:
        """Count a tail-scan stop once per (segment, byte offset).

        The scan offset never advances past an anomaly, so every refresh
        re-encounters the same damage; deduplicating by position keeps the
        counters meaningful ("distinct damaged sites", not "refreshes").
        """
        site = (segment_name, offset)
        if self._scan_anomalies.get(site) == kind:
            return
        self._scan_anomalies[site] = kind
        if kind == "partial-tail":
            self._partial_tail_events += 1
            logger.debug(
                "cache segment %s: partial record at offset %d "
                "(in-progress append or torn tail from a killed writer)",
                segment_name,
                offset,
            )
        else:
            self._corrupt_record_events += 1
            logger.warning(
                "cache segment %s: %s at offset %d — records beyond it are "
                "unreachable until scrub() salvages the segment",
                segment_name,
                kind,
                offset,
            )

    def _scan_records(self, segment_name: str, base_offset: int, data: bytes) -> int:
        """Index every complete, CRC-valid record in ``data``.

        Returns how many bytes were consumed.  Scanning stops at the first
        incomplete or invalid record: an in-progress append is retried on the
        next refresh (the offset does not advance past it), and a truncated
        tail left by a killed writer is ignored.  Every stop is classified
        and counted (``disk_stats()``): a *partial tail* — header or body
        running past EOF — is the normal signature of an in-flight or torn
        append, while a *bad magic* or *CRC mismatch* inside the data means
        real corruption that only :meth:`scrub` can repair.
        """
        consumed = 0
        header_size = _RECORD_HEADER.size
        while True:
            if consumed + header_size > len(data):
                if consumed < len(data):
                    self._note_scan_anomaly(segment_name, base_offset + consumed, "partial-tail")
                break
            try:
                magic, key_len, payload_len, crc = _RECORD_HEADER.unpack_from(data, consumed)
            except struct.error:
                self._note_scan_anomaly(segment_name, base_offset + consumed, "partial-tail")
                break
            if magic != _RECORD_MAGIC:
                self._note_scan_anomaly(segment_name, base_offset + consumed, "bad magic")
                break
            end = consumed + header_size + key_len + payload_len
            if end > len(data):
                self._note_scan_anomaly(segment_name, base_offset + consumed, "partial-tail")
                break
            body = data[consumed + header_size : end]
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                self._note_scan_anomaly(segment_name, base_offset + consumed, "CRC mismatch")
                break
            key = body[:key_len].decode("utf-8", errors="replace")
            payload_offset = base_offset + consumed + header_size + key_len
            self._seg_index[key] = (segment_name, payload_offset, payload_len)
            # A site previously flagged as a partial tail that now parses was
            # just an in-flight append we raced — take the count back.
            site = (segment_name, base_offset + consumed)
            if self._scan_anomalies.get(site) == "partial-tail":
                del self._scan_anomalies[site]
                self._partial_tail_events -= 1
            consumed = end
        return consumed

    def _read_segment_payload(self, key: str, location: Tuple[str, int, int]) -> Optional[bytes]:
        """Raw payload bytes for an indexed record, CRC-verified; None if gone."""
        segment_dir = self._segment_dir()
        if segment_dir is None:
            return None
        name, offset, length = location
        key_bytes = key.encode("utf-8")
        try:
            with open(os.path.join(segment_dir, name), "rb") as handle:
                handle.seek(offset - len(key_bytes) - _RECORD_HEADER.size)
                record = handle.read(_RECORD_HEADER.size + len(key_bytes) + length)
        except OSError:
            return None
        if len(record) != _RECORD_HEADER.size + len(key_bytes) + length:
            return None
        try:
            magic, key_len, payload_len, crc = _RECORD_HEADER.unpack_from(record, 0)
        except struct.error:
            return None
        body = record[_RECORD_HEADER.size :]
        if (
            magic != _RECORD_MAGIC
            or key_len != len(key_bytes)
            or payload_len != length
            or zlib.crc32(body) & 0xFFFFFFFF != crc
            or body[:key_len] != key_bytes
        ):
            return None
        return body[key_len:]

    def _publish_index(self) -> None:
        """Atomically swap ``index.json`` (write-temp + ``os.replace``)."""
        if self.directory is None:
            return
        path = os.path.join(self.directory, _INDEX_NAME)
        payload = {
            "version": 1,
            "segments": dict(self._seg_offsets),
            "entries": {key: list(loc) for key, loc in self._seg_index.items()},
        }
        tmp_path = f"{path}.tmp.{os.getpid()}.{os.urandom(4).hex()}"
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    # -- legacy one-pickle-per-entry layout (read-only fallback) -------

    def _disk_path(self, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, key[:2], f"{key}.pkl")

    def _scan_legacy_entries(self) -> Dict[str, bytes]:
        """Raw pickle payloads of every legacy per-entry file (for compaction)."""
        found: Dict[str, bytes] = {}
        if self.directory is None:
            return found
        try:
            shards = [
                entry.name
                for entry in os.scandir(self.directory)
                if entry.is_dir() and len(entry.name) == 2 and entry.name != _SEGMENT_DIR
            ]
        except OSError:
            return found
        for shard in shards:
            try:
                names = os.listdir(os.path.join(self.directory, shard))
            except OSError:
                continue
            for filename in names:
                if not filename.endswith(".pkl"):
                    continue
                key = filename[: -len(".pkl")]
                try:
                    with open(os.path.join(self.directory, shard, filename), "rb") as handle:
                        found[key] = handle.read()
                except OSError:
                    continue
        return found

    def _remove_legacy_entries(self) -> int:
        removed = 0
        if self.directory is None:
            return removed
        try:
            shards = [
                entry.name
                for entry in os.scandir(self.directory)
                if entry.is_dir() and len(entry.name) == 2 and entry.name != _SEGMENT_DIR
            ]
        except OSError:
            return removed
        for shard in shards:
            shard_path = os.path.join(self.directory, shard)
            try:
                for filename in os.listdir(shard_path):
                    if filename.endswith(".pkl"):
                        os.unlink(os.path.join(shard_path, filename))
                        removed += 1
                os.rmdir(shard_path)
            except OSError:
                pass
        return removed

    # -- read / write entry points -------------------------------------

    def _disk_path_exists(self, key: str) -> bool:
        if self.directory is None:
            return False
        if key in self._seg_index:
            return True
        self._refresh_segments()
        if key in self._seg_index:
            return True
        path = self._disk_path(key)
        return path is not None and os.path.exists(path)

    def _disk_read(self, key: str) -> Any:
        if self.directory is None:
            return _MISS
        with self._lock:
            return self._disk_read_locked(key)

    def _disk_read_locked(self, key: str) -> Any:
        location = self._seg_index.get(key)
        if location is None:
            self._refresh_segments()
            location = self._seg_index.get(key)
        if location is not None:
            payload = self._read_segment_payload(key, location)
            if payload is not None:
                try:
                    return pickle.loads(payload)
                except (pickle.PickleError, EOFError, AttributeError, ValueError):
                    pass
            # The record vanished (compaction) or failed validation: drop
            # the stale index entry and fall through to the legacy tier.
            self._seg_index.pop(key, None)
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return _MISS
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            # A corrupt or unreadable entry behaves like a miss; it will be
            # overwritten by the recomputed value.
            return _MISS

    def _disk_write(self, key: str, value: Any) -> None:
        if self.directory is None:
            return
        try:
            with self._lock:
                self._disk_write_locked(key, value)
        except (OSError, pickle.PickleError):
            # The disk tier is best-effort: an unwritable store degrades the
            # cache to memory-only instead of failing the compilation.
            pass

    def _disk_write_locked(self, key: str, value: Any) -> None:
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            fd = self._open_own_segment()
            if fd is None:
                return
            record = self._build_record(key, payload)
            name = self._own_segment_name
            offset = self._seg_offsets.get(name, 0)
            os.write(fd, record)  # one complete record per write
            on_disk = self._inject_write_fault(fd, offset, record)
            self._seg_offsets[name] = offset + on_disk
            if on_disk == len(record):
                self._seg_index[key] = (
                    name,
                    offset + _RECORD_HEADER.size + len(key.encode("utf-8")),
                    len(payload),
                )
            else:
                # The injected torn append left no complete record on disk.
                self._seg_index.pop(key, None)
            self._puts_since_publish += 1
            if self._puts_since_publish >= _INDEX_PUBLISH_INTERVAL:
                self._puts_since_publish = 0
                self._publish_index()
        except (OSError, pickle.PickleError):
            # The disk tier is best-effort: an unwritable store degrades the
            # cache to memory-only instead of failing the compilation.
            pass

    def _inject_write_fault(self, fd: int, offset: int, record: bytes) -> int:
        """Chaos hook: maybe corrupt the record just appended at ``offset``.

        Draws from :attr:`fault_injector` (the ``cache`` layer of a
        :class:`~repro.resilience.faultplan.FaultPlan`).  ``bitflip`` flips
        one payload bit in place — the record keeps its length but will fail
        CRC on every future read; ``truncate`` cuts the file mid-record,
        exactly the torn tail a writer killed inside ``write(2)`` would
        leave.  Returns the record's actual on-disk length so the caller's
        offset bookkeeping stays truthful.
        """
        if self.fault_injector is None:
            return len(record)
        mode = self.fault_injector.draw()
        if mode is None:
            return len(record)
        if mode == "bitflip" and len(record) > _RECORD_HEADER.size:
            # Deterministic target: the middle of the key+payload body.
            target = _RECORD_HEADER.size + (len(record) - _RECORD_HEADER.size) // 2
            os.pwrite(fd, bytes([record[target] ^ 0x40]), offset + target)
            logger.warning(
                "chaos: flipped a bit in cache segment %s at offset %d",
                self._own_segment_name,
                offset + target,
            )
            return len(record)
        if mode == "truncate" and len(record) >= 2:
            keep = len(record) // 2
            os.ftruncate(fd, offset + keep)
            logger.warning(
                "chaos: tore cache segment %s mid-record at offset %d",
                self._own_segment_name,
                offset + keep,
            )
            return keep
        return len(record)

    def __repr__(self) -> str:
        tier = f", directory={self.directory!r}" if self.directory else ""
        return (
            f"SynthesisCache(entries={len(self._entries)}, capacity={self.capacity}{tier}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
