"""Content-addressed synthesis cache (the memoization tier of the service layer).

Synthesizing a two- or three-qubit unitary — a KAK decomposition for the
``{Can, U3}`` ISA (Section 4.1), a template realization (Section 5.2) or a
numerical approximate-synthesis run (Section 5.1) — depends only on the
unitary itself plus a handful of solver settings.  Across a benchmark suite
the same blocks recur constantly (every Toffoli, every QFT rotation ladder),
so the service layer memoizes synthesis results behind a *content-addressed*
cache: entries are keyed by a canonical fingerprint of the exact matrix bytes
plus a context tag, never by object identity.

Two storage tiers are provided:

* an in-memory LRU dictionary (always on, bounded by ``capacity``), and
* an optional on-disk store under ``directory`` that persists results across
  processes and across CLI invocations — this is what makes a *second*
  ``python -m repro suite`` run measurably faster.

Exact-byte keys guarantee that a cached value is bit-identical to what a
fresh computation would return, which keeps parallel batch compilation
(:mod:`repro.service.batch`) deterministic: it can never matter in which
order worker processes populate the cache.

Disk-tier concurrency model (the ``repro serve`` daemon and batch workers
hammer one cache directory from many processes at once):

* **Append-only segments.**  Every writer process appends complete records
  (magic, key, length, CRC32, pickled payload) to its *own* segment file
  under ``directory/segments/``; no file is ever written by two processes
  and no byte is ever rewritten.  A process killed mid-append can only
  leave a truncated *tail*, which readers detect (length/CRC validation)
  and ignore — earlier records stay readable, so a crash can never corrupt
  the store for anybody else.
* **Atomic index swaps.**  A JSON index (key → segment/offset/length plus
  per-segment scan high-water marks) is periodically published via
  write-temp-then-``os.replace``, so readers always see either the old or
  the new index, never a torn one.  The index is a pure accelerator:
  readers tail-scan segments past their high-water marks, so a stale or
  missing index costs a re-scan, not a lost entry.
* **Compaction.**  :meth:`SynthesisCache.compact` folds every live record
  (including legacy one-pickle-per-entry files from older caches) into a
  single fresh segment and swaps the index — run it offline (no concurrent
  writers); concurrent readers degrade to misses, never to corrupt reads.

Usage::

    from repro.service.cache import SynthesisCache, unitary_fingerprint

    cache = SynthesisCache(capacity=4096, directory=".repro-cache")
    key = unitary_fingerprint(matrix, "kak")
    decomposition = cache.get_or_compute(key, lambda: kak_decompose(matrix))
    print(cache.stats.hits, cache.stats.misses)
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

__all__ = ["CacheStats", "SynthesisCache", "circuit_fingerprint", "unitary_fingerprint"]

#: Segment record header: magic, key length, payload length, CRC32 of
#: ``key_bytes + payload``.  A record is header + key bytes + payload bytes.
_RECORD_HEADER = struct.Struct(">4sHQI")
_RECORD_MAGIC = b"RSC1"
#: Publish the JSON index every this many puts (pure accelerator — readers
#: tail-scan segments regardless, see the module docstring).
_INDEX_PUBLISH_INTERVAL = 64
_INDEX_NAME = "index.json"
_SEGMENT_DIR = "segments"
_SEGMENT_SUFFIX = ".seg"

class _NoneSentinel:
    """Stored in place of ``None`` (negative caching, e.g. "approximate
    synthesis did not beat the original block").  Unpickles back to the module
    singleton so identity survives the disk tier; lookups additionally match
    by type for robustness."""

    def __reduce__(self):
        return (_none_sentinel, ())

    def __repr__(self) -> str:
        return "<cached-None>"


def _none_sentinel() -> "_NoneSentinel":
    return _NONE


_NONE = _NoneSentinel()

#: Sentinel returned by the internal lookup helpers on a miss, so that a
#: legitimately cached ``None`` is distinguishable from "not present".
_MISS = object()


def unitary_fingerprint(matrix: np.ndarray, *context: str) -> str:
    """Canonical content fingerprint of a unitary plus a context tag.

    The fingerprint hashes the exact bytes of the C-contiguous complex128
    representation of ``matrix`` together with its shape and every ``context``
    string (pass name, solver settings, ...).  Two arrays with equal entries
    produce the same fingerprint regardless of memory layout; any difference
    in value, shape or context produces a different one.

    Exactness is deliberate: no rounding is applied, so a cache keyed by this
    fingerprint returns results that are bit-identical to recomputation.
    """
    array = np.ascontiguousarray(np.asarray(matrix, dtype=complex))
    digest = hashlib.sha256()
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    for tag in context:
        digest.update(b"\x00")
        digest.update(str(tag).encode())
    return digest.hexdigest()


def circuit_fingerprint(circuit, *context: str) -> str:
    """Content fingerprint of a :class:`~repro.circuits.circuit.QuantumCircuit`.

    Hashes the qubit count and, per instruction, the gate identity and qubit
    tuple.  Named gates are identified by name + exact parameter bytes;
    explicit-matrix gates (fused ``su4`` blocks) by their matrix bytes, so two
    fused blocks with the same label but different unitaries never collide.
    """
    from repro.gates.gate import UnitaryGate

    digest = hashlib.sha256()
    digest.update(str(circuit.num_qubits).encode())
    for instruction in circuit:
        gate = instruction.gate
        digest.update(b"|")
        digest.update(gate.name.encode())
        digest.update(str(instruction.qubits).encode())
        if isinstance(gate, UnitaryGate):
            digest.update(np.ascontiguousarray(gate.matrix).tobytes())
        elif gate.params:
            digest.update(np.asarray(gate.params, dtype=float).tobytes())
    for tag in context:
        digest.update(b"\x00")
        digest.update(str(tag).encode())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of a :class:`SynthesisCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    puts: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary (used by the CLI JSON output)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
        }

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats snapshot into this one (batch workers)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.disk_hits += other.disk_hits
        self.puts += other.puts

    def snapshot(self) -> "CacheStats":
        """Independent copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.evictions, self.disk_hits, self.puts)

    def delta_since(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
            self.disk_hits - earlier.disk_hits,
            self.puts - earlier.puts,
        )


class SynthesisCache:
    """Two-tier (memory LRU + optional disk) content-addressed cache.

    Parameters
    ----------
    capacity:
        Maximum number of in-memory entries; the least recently used entry is
        evicted first.  ``None`` disables the bound.
    directory:
        When given, every entry is additionally appended to this process's
        own segment file under ``directory/segments/`` and in-memory misses
        fall back to the disk store (segments first, then legacy
        ``directory/<k0k1>/<key>.pkl`` files written by older versions).
        The directory is created on first write.  The disk tier is safe
        under concurrent multi-process readers and writers — see the module
        docstring for the concurrency model.

    The cache is thread-safe; cached values must be picklable when the disk
    tier is enabled.
    """

    def __init__(self, capacity: Optional[int] = 4096, directory: Optional[str] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.directory = os.fspath(directory) if directory else None
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.RLock()
        # Disk tier state: key -> (segment name, payload offset, payload
        # length); per-segment scan high-water marks; this process's own
        # append-only segment (opened lazily on first put).
        self._seg_index: Dict[str, Tuple[str, int, int]] = {}
        self._seg_offsets: Dict[str, int] = {}
        self._own_segment_name: Optional[str] = None
        self._own_segment_fd: Optional[int] = None
        self._puts_since_publish = 0
        self._index_loaded = False

    # ------------------------------------------------------------------
    # Container protocol.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries or self._disk_path_exists(key)

    # ------------------------------------------------------------------
    # Core operations.
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key``; counts a hit or a miss.  Returns ``default`` on miss."""
        value = self._lookup(key)
        if value is _MISS:
            return default
        return None if isinstance(value, _NoneSentinel) else value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in both tiers."""
        stored = _NONE if value is None else value
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = stored
            self.stats.puts += 1
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        self._disk_write(key, stored)

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing and storing on miss."""
        value = self._lookup(key)
        if value is not _MISS:
            return None if isinstance(value, _NoneSentinel) else value
        result = compute()
        self.put(key, result)
        return result

    def clear(self, *, reset_stats: bool = False) -> None:
        """Drop every in-memory entry (the disk tier is left untouched)."""
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self.stats = CacheStats()

    def flush(self) -> None:
        """Publish the disk index now (write-temp + atomic rename).

        Appends themselves are durable as soon as :meth:`put` returns; the
        index only accelerates other processes' lookups.  Long-running
        writers (the ``repro serve`` workers) call this at shutdown.
        """
        with self._lock:
            if self.directory is None:
                return
            self._refresh_segments()
            self._publish_index()

    def compact(self) -> Dict[str, int]:
        """Fold every live disk record into one fresh segment.

        Rewrites the newest record per key (including entries from the
        legacy one-pickle-per-entry layout) into a single segment, swaps the
        index atomically, then removes the superseded segment files and
        legacy entries.  Intended as an offline maintenance step: run it
        without concurrent *writers*; concurrent readers fall back to a
        miss-and-recompute if a segment vanishes underneath them.

        Returns ``{"entries": ..., "segments_removed": ..., "legacy_removed": ...}``.
        """
        with self._lock:
            if self.directory is None:
                return {"entries": 0, "segments_removed": 0, "legacy_removed": 0}
            self._refresh_segments()
            live: Dict[str, bytes] = {}
            for key, location in self._seg_index.items():
                payload = self._read_segment_payload(key, location)
                if payload is not None:
                    live[key] = payload
            legacy = self._scan_legacy_entries()
            for key, payload in legacy.items():
                live.setdefault(key, payload)

            segment_dir = os.path.join(self.directory, _SEGMENT_DIR)
            os.makedirs(segment_dir, exist_ok=True)
            old_segments = [
                entry.name
                for entry in os.scandir(segment_dir)
                if entry.is_file() and entry.name.endswith(_SEGMENT_SUFFIX)
            ]
            # Write the compacted segment to a temp file, fsync, then rename
            # into place so it appears fully formed or not at all.
            name = f"compact-{os.getpid()}-{os.urandom(4).hex()}{_SEGMENT_SUFFIX}"
            final_path = os.path.join(segment_dir, name)
            tmp_path = f"{final_path}.tmp"
            index: Dict[str, Tuple[str, int, int]] = {}
            offset = 0
            with open(tmp_path, "wb") as handle:
                for key in sorted(live):
                    record = self._build_record(key, live[key])
                    payload_offset = offset + _RECORD_HEADER.size + len(key.encode("utf-8"))
                    index[key] = (name, payload_offset, len(live[key]))
                    handle.write(record)
                    offset += len(record)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, final_path)

            # Swap in the new view, publish, then delete the superseded files.
            self._close_own_segment()
            self._seg_index = index
            self._seg_offsets = {name: offset}
            self._publish_index()
            removed = 0
            for old in old_segments:
                if old == name:
                    continue
                try:
                    os.unlink(os.path.join(segment_dir, old))
                    removed += 1
                except OSError:
                    pass
            legacy_removed = self._remove_legacy_entries()
            return {
                "entries": len(live),
                "segments_removed": removed,
                "legacy_removed": legacy_removed,
            }

    def disk_stats(self) -> Dict[str, int]:
        """Disk-tier inventory: live entries, segment files and total bytes.

        Refreshes the segment view first, so the numbers include records
        appended by other processes since this cache was opened.  Legacy
        one-pickle-per-entry files are not counted (``compact`` folds them
        into the segment store).
        """
        with self._lock:
            if self.directory is None:
                return {"entries": 0, "segments": 0, "bytes": 0}
            self._refresh_segments()
            segment_dir = os.path.join(self.directory, _SEGMENT_DIR)
            segments = 0
            total_bytes = 0
            try:
                for entry in os.scandir(segment_dir):
                    if entry.is_file() and entry.name.endswith(_SEGMENT_SUFFIX):
                        segments += 1
                        total_bytes += entry.stat().st_size
            except OSError:
                pass
            return {
                "entries": len(self._seg_index),
                "segments": segments,
                "bytes": total_bytes,
            }

    def close(self) -> None:
        """Flush the index and close this process's segment file."""
        with self._lock:
            if self.directory is not None:
                try:
                    self.flush()
                except OSError:
                    pass
            self._close_own_segment()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _lookup(self, key: str) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
        value = self._disk_read(key)
        with self._lock:
            if value is not _MISS:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._entries[key] = value
                if self.capacity is not None:
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.stats.evictions += 1
            else:
                self.stats.misses += 1
        return value

    # -- segment plumbing ----------------------------------------------

    def _segment_dir(self) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, _SEGMENT_DIR)

    @staticmethod
    def _build_record(key: str, payload: bytes) -> bytes:
        key_bytes = key.encode("utf-8")
        crc = zlib.crc32(key_bytes + payload) & 0xFFFFFFFF
        return _RECORD_HEADER.pack(_RECORD_MAGIC, len(key_bytes), len(payload), crc) + key_bytes + payload

    def _open_own_segment(self) -> Optional[int]:
        if self._own_segment_fd is not None:
            return self._own_segment_fd
        segment_dir = self._segment_dir()
        if segment_dir is None:
            return None
        os.makedirs(segment_dir, exist_ok=True)
        # One segment per process (pid + random token survives pid reuse):
        # no file ever has two writers, so records never interleave.
        name = f"w-{os.getpid()}-{os.urandom(4).hex()}{_SEGMENT_SUFFIX}"
        path = os.path.join(segment_dir, name)
        self._own_segment_fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._own_segment_name = name
        self._seg_offsets.setdefault(name, 0)
        return self._own_segment_fd

    def _close_own_segment(self) -> None:
        if self._own_segment_fd is not None:
            try:
                os.close(self._own_segment_fd)
            except OSError:
                pass
        self._own_segment_fd = None
        self._own_segment_name = None

    def _load_published_index(self) -> None:
        """Seed the in-memory index from the published ``index.json`` (if any).

        The index is advisory: entries are CRC-verified on read, and the
        recorded high-water marks only tell the tail scan where to start.
        """
        self._index_loaded = True
        if self.directory is None:
            return
        path = os.path.join(self.directory, _INDEX_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            entries = data.get("entries", {})
            offsets = data.get("segments", {})
            for key, location in entries.items():
                name, offset, length = location
                self._seg_index.setdefault(str(key), (str(name), int(offset), int(length)))
            for name, offset in offsets.items():
                self._seg_offsets[str(name)] = max(self._seg_offsets.get(str(name), 0), int(offset))
        except (OSError, ValueError, TypeError, KeyError):
            # A missing or unreadable index just means a full tail scan.
            pass

    def _refresh_segments(self) -> None:
        """Tail-scan every segment past its high-water mark for new records."""
        segment_dir = self._segment_dir()
        if segment_dir is None:
            return
        if not self._index_loaded:
            self._load_published_index()
        try:
            names = [
                entry.name
                for entry in os.scandir(segment_dir)
                if entry.is_file() and entry.name.endswith(_SEGMENT_SUFFIX)
            ]
        except OSError:
            return
        for name in names:
            start = self._seg_offsets.get(name, 0)
            path = os.path.join(segment_dir, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size <= start:
                continue
            try:
                with open(path, "rb") as handle:
                    handle.seek(start)
                    data = handle.read(size - start)
            except OSError:
                continue
            consumed = self._scan_records(name, start, data)
            self._seg_offsets[name] = start + consumed

    def _scan_records(self, segment_name: str, base_offset: int, data: bytes) -> int:
        """Index every complete, CRC-valid record in ``data``.

        Returns how many bytes were consumed.  Scanning stops at the first
        incomplete or invalid record: an in-progress append is retried on the
        next refresh (the offset does not advance past it), and a truncated
        tail left by a killed writer is permanently ignored.
        """
        consumed = 0
        header_size = _RECORD_HEADER.size
        while consumed + header_size <= len(data):
            try:
                magic, key_len, payload_len, crc = _RECORD_HEADER.unpack_from(data, consumed)
            except struct.error:
                break
            if magic != _RECORD_MAGIC:
                break
            end = consumed + header_size + key_len + payload_len
            if end > len(data):
                break  # partial tail: retry (or ignore) on the next refresh
            body = data[consumed + header_size : end]
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                break
            key = body[:key_len].decode("utf-8", errors="replace")
            payload_offset = base_offset + consumed + header_size + key_len
            self._seg_index[key] = (segment_name, payload_offset, payload_len)
            consumed = end
        return consumed

    def _read_segment_payload(self, key: str, location: Tuple[str, int, int]) -> Optional[bytes]:
        """Raw payload bytes for an indexed record, CRC-verified; None if gone."""
        segment_dir = self._segment_dir()
        if segment_dir is None:
            return None
        name, offset, length = location
        key_bytes = key.encode("utf-8")
        try:
            with open(os.path.join(segment_dir, name), "rb") as handle:
                handle.seek(offset - len(key_bytes) - _RECORD_HEADER.size)
                record = handle.read(_RECORD_HEADER.size + len(key_bytes) + length)
        except OSError:
            return None
        if len(record) != _RECORD_HEADER.size + len(key_bytes) + length:
            return None
        try:
            magic, key_len, payload_len, crc = _RECORD_HEADER.unpack_from(record, 0)
        except struct.error:
            return None
        body = record[_RECORD_HEADER.size :]
        if (
            magic != _RECORD_MAGIC
            or key_len != len(key_bytes)
            or payload_len != length
            or zlib.crc32(body) & 0xFFFFFFFF != crc
            or body[:key_len] != key_bytes
        ):
            return None
        return body[key_len:]

    def _publish_index(self) -> None:
        """Atomically swap ``index.json`` (write-temp + ``os.replace``)."""
        if self.directory is None:
            return
        path = os.path.join(self.directory, _INDEX_NAME)
        payload = {
            "version": 1,
            "segments": dict(self._seg_offsets),
            "entries": {key: list(loc) for key, loc in self._seg_index.items()},
        }
        tmp_path = f"{path}.tmp.{os.getpid()}.{os.urandom(4).hex()}"
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    # -- legacy one-pickle-per-entry layout (read-only fallback) -------

    def _disk_path(self, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, key[:2], f"{key}.pkl")

    def _scan_legacy_entries(self) -> Dict[str, bytes]:
        """Raw pickle payloads of every legacy per-entry file (for compaction)."""
        found: Dict[str, bytes] = {}
        if self.directory is None:
            return found
        try:
            shards = [
                entry.name
                for entry in os.scandir(self.directory)
                if entry.is_dir() and len(entry.name) == 2 and entry.name != _SEGMENT_DIR
            ]
        except OSError:
            return found
        for shard in shards:
            try:
                names = os.listdir(os.path.join(self.directory, shard))
            except OSError:
                continue
            for filename in names:
                if not filename.endswith(".pkl"):
                    continue
                key = filename[: -len(".pkl")]
                try:
                    with open(os.path.join(self.directory, shard, filename), "rb") as handle:
                        found[key] = handle.read()
                except OSError:
                    continue
        return found

    def _remove_legacy_entries(self) -> int:
        removed = 0
        if self.directory is None:
            return removed
        try:
            shards = [
                entry.name
                for entry in os.scandir(self.directory)
                if entry.is_dir() and len(entry.name) == 2 and entry.name != _SEGMENT_DIR
            ]
        except OSError:
            return removed
        for shard in shards:
            shard_path = os.path.join(self.directory, shard)
            try:
                for filename in os.listdir(shard_path):
                    if filename.endswith(".pkl"):
                        os.unlink(os.path.join(shard_path, filename))
                        removed += 1
                os.rmdir(shard_path)
            except OSError:
                pass
        return removed

    # -- read / write entry points -------------------------------------

    def _disk_path_exists(self, key: str) -> bool:
        if self.directory is None:
            return False
        if key in self._seg_index:
            return True
        self._refresh_segments()
        if key in self._seg_index:
            return True
        path = self._disk_path(key)
        return path is not None and os.path.exists(path)

    def _disk_read(self, key: str) -> Any:
        if self.directory is None:
            return _MISS
        with self._lock:
            return self._disk_read_locked(key)

    def _disk_read_locked(self, key: str) -> Any:
        location = self._seg_index.get(key)
        if location is None:
            self._refresh_segments()
            location = self._seg_index.get(key)
        if location is not None:
            payload = self._read_segment_payload(key, location)
            if payload is not None:
                try:
                    return pickle.loads(payload)
                except (pickle.PickleError, EOFError, AttributeError, ValueError):
                    pass
            # The record vanished (compaction) or failed validation: drop
            # the stale index entry and fall through to the legacy tier.
            self._seg_index.pop(key, None)
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return _MISS
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            # A corrupt or unreadable entry behaves like a miss; it will be
            # overwritten by the recomputed value.
            return _MISS

    def _disk_write(self, key: str, value: Any) -> None:
        if self.directory is None:
            return
        try:
            with self._lock:
                self._disk_write_locked(key, value)
        except (OSError, pickle.PickleError):
            # The disk tier is best-effort: an unwritable store degrades the
            # cache to memory-only instead of failing the compilation.
            pass

    def _disk_write_locked(self, key: str, value: Any) -> None:
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            fd = self._open_own_segment()
            if fd is None:
                return
            record = self._build_record(key, payload)
            name = self._own_segment_name
            offset = self._seg_offsets.get(name, 0)
            os.write(fd, record)  # one complete record per write
            self._seg_offsets[name] = offset + len(record)
            self._seg_index[key] = (
                name,
                offset + _RECORD_HEADER.size + len(key.encode("utf-8")),
                len(payload),
            )
            self._puts_since_publish += 1
            if self._puts_since_publish >= _INDEX_PUBLISH_INTERVAL:
                self._puts_since_publish = 0
                self._publish_index()
        except (OSError, pickle.PickleError):
            # The disk tier is best-effort: an unwritable store degrades the
            # cache to memory-only instead of failing the compilation.
            pass

    def __repr__(self) -> str:
        tier = f", directory={self.directory!r}" if self.directory else ""
        return (
            f"SynthesisCache(entries={len(self._entries)}, capacity={self.capacity}{tier}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
