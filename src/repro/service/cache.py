"""Content-addressed synthesis cache (the memoization tier of the service layer).

Synthesizing a two- or three-qubit unitary — a KAK decomposition for the
``{Can, U3}`` ISA (Section 4.1), a template realization (Section 5.2) or a
numerical approximate-synthesis run (Section 5.1) — depends only on the
unitary itself plus a handful of solver settings.  Across a benchmark suite
the same blocks recur constantly (every Toffoli, every QFT rotation ladder),
so the service layer memoizes synthesis results behind a *content-addressed*
cache: entries are keyed by a canonical fingerprint of the exact matrix bytes
plus a context tag, never by object identity.

Two storage tiers are provided:

* an in-memory LRU dictionary (always on, bounded by ``capacity``), and
* an optional on-disk store (one pickle per entry under ``directory``) that
  persists results across processes and across CLI invocations — this is what
  makes a *second* ``python -m repro suite`` run measurably faster.

Exact-byte keys guarantee that a cached value is bit-identical to what a
fresh computation would return, which keeps parallel batch compilation
(:mod:`repro.service.batch`) deterministic: it can never matter in which
order worker processes populate the cache.

Usage::

    from repro.service.cache import SynthesisCache, unitary_fingerprint

    cache = SynthesisCache(capacity=4096, directory=".repro-cache")
    key = unitary_fingerprint(matrix, "kak")
    decomposition = cache.get_or_compute(key, lambda: kak_decompose(matrix))
    print(cache.stats.hits, cache.stats.misses)
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

__all__ = ["CacheStats", "SynthesisCache", "circuit_fingerprint", "unitary_fingerprint"]

class _NoneSentinel:
    """Stored in place of ``None`` (negative caching, e.g. "approximate
    synthesis did not beat the original block").  Unpickles back to the module
    singleton so identity survives the disk tier; lookups additionally match
    by type for robustness."""

    def __reduce__(self):
        return (_none_sentinel, ())

    def __repr__(self) -> str:
        return "<cached-None>"


def _none_sentinel() -> "_NoneSentinel":
    return _NONE


_NONE = _NoneSentinel()

#: Sentinel returned by the internal lookup helpers on a miss, so that a
#: legitimately cached ``None`` is distinguishable from "not present".
_MISS = object()


def unitary_fingerprint(matrix: np.ndarray, *context: str) -> str:
    """Canonical content fingerprint of a unitary plus a context tag.

    The fingerprint hashes the exact bytes of the C-contiguous complex128
    representation of ``matrix`` together with its shape and every ``context``
    string (pass name, solver settings, ...).  Two arrays with equal entries
    produce the same fingerprint regardless of memory layout; any difference
    in value, shape or context produces a different one.

    Exactness is deliberate: no rounding is applied, so a cache keyed by this
    fingerprint returns results that are bit-identical to recomputation.
    """
    array = np.ascontiguousarray(np.asarray(matrix, dtype=complex))
    digest = hashlib.sha256()
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    for tag in context:
        digest.update(b"\x00")
        digest.update(str(tag).encode())
    return digest.hexdigest()


def circuit_fingerprint(circuit, *context: str) -> str:
    """Content fingerprint of a :class:`~repro.circuits.circuit.QuantumCircuit`.

    Hashes the qubit count and, per instruction, the gate identity and qubit
    tuple.  Named gates are identified by name + exact parameter bytes;
    explicit-matrix gates (fused ``su4`` blocks) by their matrix bytes, so two
    fused blocks with the same label but different unitaries never collide.
    """
    from repro.gates.gate import UnitaryGate

    digest = hashlib.sha256()
    digest.update(str(circuit.num_qubits).encode())
    for instruction in circuit:
        gate = instruction.gate
        digest.update(b"|")
        digest.update(gate.name.encode())
        digest.update(str(instruction.qubits).encode())
        if isinstance(gate, UnitaryGate):
            digest.update(np.ascontiguousarray(gate.matrix).tobytes())
        elif gate.params:
            digest.update(np.asarray(gate.params, dtype=float).tobytes())
    for tag in context:
        digest.update(b"\x00")
        digest.update(str(tag).encode())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of a :class:`SynthesisCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    puts: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary (used by the CLI JSON output)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "puts": self.puts,
        }

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats snapshot into this one (batch workers)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.disk_hits += other.disk_hits
        self.puts += other.puts

    def snapshot(self) -> "CacheStats":
        """Independent copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.evictions, self.disk_hits, self.puts)

    def delta_since(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
            self.disk_hits - earlier.disk_hits,
            self.puts - earlier.puts,
        )


class SynthesisCache:
    """Two-tier (memory LRU + optional disk) content-addressed cache.

    Parameters
    ----------
    capacity:
        Maximum number of in-memory entries; the least recently used entry is
        evicted first.  ``None`` disables the bound.
    directory:
        When given, every entry is additionally pickled to
        ``directory/<k0k1>/<key>.pkl`` and in-memory misses fall back to the
        disk store.  The directory is created on first write.

    The cache is thread-safe; cached values must be picklable when the disk
    tier is enabled.
    """

    def __init__(self, capacity: Optional[int] = 4096, directory: Optional[str] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.directory = os.fspath(directory) if directory else None
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Container protocol.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries or self._disk_path_exists(key)

    # ------------------------------------------------------------------
    # Core operations.
    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key``; counts a hit or a miss.  Returns ``default`` on miss."""
        value = self._lookup(key)
        if value is _MISS:
            return default
        return None if isinstance(value, _NoneSentinel) else value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in both tiers."""
        stored = _NONE if value is None else value
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = stored
            self.stats.puts += 1
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
        self._disk_write(key, stored)

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing and storing on miss."""
        value = self._lookup(key)
        if value is not _MISS:
            return None if isinstance(value, _NoneSentinel) else value
        result = compute()
        self.put(key, result)
        return result

    def clear(self, *, reset_stats: bool = False) -> None:
        """Drop every in-memory entry (the disk tier is left untouched)."""
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _lookup(self, key: str) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
        value = self._disk_read(key)
        with self._lock:
            if value is not _MISS:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._entries[key] = value
                if self.capacity is not None:
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.stats.evictions += 1
            else:
                self.stats.misses += 1
        return value

    def _disk_path(self, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, key[:2], f"{key}.pkl")

    def _disk_path_exists(self, key: str) -> bool:
        path = self._disk_path(key)
        return path is not None and os.path.exists(path)

    def _disk_read(self, key: str) -> Any:
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return _MISS
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            # A corrupt or unreadable entry behaves like a miss; it will be
            # overwritten by the recomputed value.
            return _MISS

    def _disk_write(self, key: str, value: Any) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp_path = f"{path}.tmp.{os.getpid()}"
            with open(tmp_path, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except (OSError, pickle.PickleError):
            # The disk tier is best-effort: an unwritable store degrades the
            # cache to memory-only instead of failing the compilation.
            pass

    def __repr__(self) -> str:
        tier = f", directory={self.directory!r}" if self.directory else ""
        return (
            f"SynthesisCache(entries={len(self._entries)}, capacity={self.capacity}{tier}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
