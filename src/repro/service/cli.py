"""The ``python -m repro`` command line (the repro CLI).

Three subcommands run workloads from :mod:`repro.workloads` through the
registered compilers (``reqisc-full`` / ``reqisc-eff`` / baselines, see
:func:`repro.experiments.common.build_compilers`) and emit the
``CompilationResult.summary()`` rows as an aligned table, JSON or CSV:

``compile``
    Compile one workload (or an OpenQASM 2.0 file) with one compiler and
    print its summary row plus per-pass statistics.  ``repro compile
    prog.qasm`` ingests an external program; ``--emit qasm`` prints the
    compiled circuit as OpenQASM 2.0 instead of the summary.

``bench``
    Compile one workload with several compilers and report each compiler's
    metrics together with its reduction rates against the CNOT-ISA reference
    (the paper's Table 2 convention).

``suite``
    Run a whole benchmark-suite selection through one compiler using the
    :class:`~repro.service.batch.BatchCompiler` (``--workers N`` fans out
    across processes) and report one row per program plus synthesis-cache
    statistics.

``targets``
    List the named :class:`~repro.target.target.Target` presets accepted by
    ``--target``.

``serve``
    Run the long-lived compile daemon (:mod:`repro.service.server`): job
    intake over a Unix-domain or local TCP socket, a persistent sharded
    worker pool, content-hash request dedup and bounded-queue backpressure
    (see ``docs/serving.md``).

``submit``
    Client for a running daemon: compile OpenQASM 2.0 files over the
    socket (``repro submit prog.qasm``), or probe it with ``--ping`` /
    ``--stats`` / ``--shutdown``.  ``--session NAME`` opens an incremental
    compile session: edited resubmissions replay every memoized pass and
    region on the session's pinned worker (see ``docs/incremental.md``).

``cache``
    Maintain the on-disk segment store shared by the synthesis cache and
    the incremental pass-memo store: ``repro cache stats`` reports live
    entries / segment files / bytes plus corruption counters, ``repro
    cache compact`` folds every live record into one fresh segment, and
    ``repro cache scrub`` CRC-verifies every record, salvages the valid
    ones out of damaged segments and quarantines the damage under
    ``segments/quarantine/`` (see ``docs/resilience.md``).

``chaos``
    Soak a live daemon under a seeded, reproducible
    :class:`~repro.resilience.FaultPlan` — worker crashes and hangs,
    clock-skewed deadlines, socket resets / torn frames / delays, cache
    bit-flips and truncations — then verify every completed job was
    bit-identical to its fault-free compile and that the scrubber caught
    every injected corruption.  Exits non-zero on any violation (see
    ``docs/resilience.md``).

``perf``
    Run the :mod:`repro.perf` microbenchmark harness (compile / route /
    synthesize / simulate) and write a schema-stable ``BENCH_*.json``
    report with wall times, gates/sec and cache hit rates — the routing
    measurement is anchored to the frozen pre-optimization SABRE baseline
    and asserted bit-identical to it (see ``docs/performance.md``).

Every compiling subcommand takes ``--target <preset-or-json-file>`` — a
preset name (``xy-line``, ``heavy-hex``, ``all-to-all``, optionally suffixed
with a qubit count like ``xy-line-16``; size-less presets are sized per
circuit) or a path to a ``Target.to_dict()`` JSON file.  The target name is
reported in every summary row.

Synthesis results are cached in ``.repro-cache/`` by default (override with
``--cache-dir``, disable with ``--no-cache``), so a second run of the same
suite reuses every KAK decomposition and approximate-synthesis result from
disk.

Examples::

    python -m repro compile --workload qft --compiler reqisc-full
    python -m repro compile prog.qasm --emit qasm --output compiled.qasm
    python -m repro bench --workload tof --compilers qiskit-like,reqisc-eff
    python -m repro suite --compiler reqisc-eff --workload qft --json
    python -m repro suite --compiler reqisc-full --scale tiny --workers 4 --csv
    python -m repro suite --compiler reqisc-eff --target xy-line --format json
    python -m repro suite --compiler reqisc-eff --qasm a.qasm --qasm b.qasm
    python -m repro compile prog.qasm --memo
    python -m repro submit edit1.qasm edit2.qasm --session mysession
    python -m repro cache stats
    python -m repro targets
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["EXIT_CODES", "EXIT_UNAVAILABLE", "build_parser", "main"]

_DEFAULT_CACHE_DIR = ".repro-cache"

#: Structured-error exit codes for the daemon-facing subcommands (``submit``,
#: ``chaos``): 0 is success, 1 a generic CLI failure (bad arguments, soak
#: verdict), 2 argparse misuse, and 10+ map one-to-one onto the protocol's
#: structured error codes so scripts can branch on *why* a submission failed
#: without parsing stderr.  When several files fail in one invocation the
#: exit code reflects the first failure.  Kept literal (rather than derived
#: from ``protocol.ERROR_CODES``) so the numbers are stable documentation;
#: a test asserts the two stay in sync.
EXIT_CODES = {
    "bad-request": 10,
    "too-large": 11,
    "overloaded": 12,
    "timeout": 13,
    "worker-crash": 14,
    "compile-error": 15,
    "shutting-down": 16,
    "internal": 17,
}

#: Exit code when the daemon cannot be reached at all (connect/read failure
#: that survived every retry) — distinct from every structured error.
EXIT_UNAVAILABLE = 18


# ---------------------------------------------------------------------------
# Argument parsing.
# ---------------------------------------------------------------------------


def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--json", action="store_true", help="emit a JSON document on stdout")
    group.add_argument("--csv", action="store_true", help="emit CSV rows on stdout")
    group.add_argument(
        "--format",
        choices=("table", "json", "csv"),
        dest="format",
        help="output format (equivalent to --json / --csv; default: table)",
    )
    parser.add_argument("--output", metavar="PATH", help="write the report to PATH instead of stdout")


def _normalize_output_format(args: argparse.Namespace) -> None:
    """Fold ``--format`` into the legacy ``--json`` / ``--csv`` flags."""
    fmt = getattr(args, "format", None)
    if fmt == "json":
        args.json = True
    elif fmt == "csv":
        args.csv = True
    if getattr(args, "emit", "summary") == "qasm" and (
        getattr(args, "json", False) or getattr(args, "csv", False)
    ):
        raise SystemExit("--emit qasm produces OpenQASM text; it cannot be combined with --json/--csv/--format")


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"on-disk synthesis cache directory (default: {_DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=4096,
        metavar="N",
        help="in-memory cache entries before LRU eviction (default: 4096)",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the synthesis cache")


def _add_emit_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--emit",
        choices=("summary", "qasm"),
        default="summary",
        help=(
            "output payload: 'summary' (default) for metric rows, 'qasm' to "
            "print the compiled circuit(s) as OpenQASM 2.0 (with --output "
            "pointing at an existing directory, one .qasm file per program)"
        ),
    )


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=("tiny", "small", "medium"),
        default="small",
        help="benchmark-suite scale (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed (default: 0)")
    parser.add_argument(
        "--target",
        metavar="PRESET|PATH",
        default=None,
        help=(
            "device target: a preset name (see `repro targets`; size-less "
            "presets are sized per circuit) or a Target JSON file "
            "(default: logical, no topology constraint)"
        ),
    )
    _add_cache_arguments(parser)
    _add_output_arguments(parser)
    _add_emit_argument(parser)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Compile quantum workloads with the ReQISC/Regulus reproduction.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser(
        "compile", help="compile one workload (or QASM file) with one compiler"
    )
    compile_parser.add_argument(
        "source",
        nargs="?",
        metavar="SOURCE",
        help="benchmark category, or a path to an OpenQASM 2.0 file (*.qasm)",
    )
    source = compile_parser.add_mutually_exclusive_group(required=False)
    source.add_argument("--workload", metavar="NAME", help="benchmark category to compile")
    source.add_argument("--qasm", metavar="PATH", help="OpenQASM 2.0 file to compile")
    compile_parser.add_argument(
        "--compiler", default="reqisc-full", metavar="NAME", help="compiler name (default: reqisc-full)"
    )
    compile_parser.add_argument(
        "--memo",
        action="store_true",
        help=(
            "enable content-addressed pass memoization: identical regions are "
            "synthesized once and the summary reports memo hit/miss counters "
            "(bit-identical output; see docs/incremental.md)"
        ),
    )
    _add_common_arguments(compile_parser)

    bench_parser = subparsers.add_parser(
        "bench", help="compare several compilers on one workload"
    )
    bench_parser.add_argument("--workload", required=True, metavar="NAME", help="benchmark category")
    bench_parser.add_argument(
        "--compilers",
        default="qiskit-like,reqisc-eff,reqisc-full",
        metavar="A,B,...",
        help="comma-separated compiler names (default: qiskit-like,reqisc-eff,reqisc-full)",
    )
    _add_common_arguments(bench_parser)

    suite_parser = subparsers.add_parser(
        "suite", help="run a benchmark-suite selection through one compiler"
    )
    suite_parser.add_argument(
        "--compiler", default="reqisc-full", metavar="NAME", help="compiler name (default: reqisc-full)"
    )
    suite_parser.add_argument(
        "--workload",
        action="append",
        metavar="NAME",
        help="restrict to this benchmark category (repeatable; default: whole suite)",
    )
    suite_parser.add_argument(
        "--workers", type=int, default=1, metavar="N", help="worker processes (default: 1)"
    )
    suite_parser.add_argument(
        "--max-qubits", type=int, default=None, metavar="N", help="skip programs larger than N qubits"
    )
    suite_parser.add_argument(
        "--qasm",
        action="append",
        metavar="PATH",
        help="add an external OpenQASM 2.0 program to the selection (repeatable)",
    )
    _add_common_arguments(suite_parser)

    list_parser = subparsers.add_parser(
        "list", help="list available workloads and compiler names"
    )
    list_parser.add_argument("--json", action="store_true", help="emit JSON instead of text")

    targets_parser = subparsers.add_parser(
        "targets", help="list the named device-target presets accepted by --target"
    )
    targets_parser.add_argument("--json", action="store_true", help="emit JSON instead of text")

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the long-lived compile daemon (see docs/serving.md)",
        description=(
            "Run a resident compile service: NDJSON job intake over a socket, "
            "a persistent sharded worker pool with per-job timeouts and crash "
            "isolation, content-hash request dedup, and bounded-queue "
            "backpressure.  Clients connect with `repro submit`."
        ),
    )
    serve_parser.add_argument(
        "--address",
        default=".repro-serve.sock",
        metavar="ADDR",
        help=(
            "socket to listen on: a filesystem path or unix:PATH for a "
            "Unix-domain socket, tcp:HOST:PORT for TCP "
            "(default: .repro-serve.sock)"
        ),
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N", help="persistent worker processes (default: 2)"
    )
    serve_parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="queued+running jobs before new work is refused as overloaded (default: 64)",
    )
    serve_parser.add_argument(
        "--job-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="default per-job deadline; a job past it is killed and fails alone (default: 60)",
    )
    serve_parser.add_argument(
        "--max-qubits",
        type=int,
        default=64,
        metavar="N",
        help="reject circuits larger than N qubits (default: 64)",
    )
    _add_cache_arguments(serve_parser)
    serve_parser.add_argument(
        "--compact-on-shutdown",
        action="store_true",
        help="fold the on-disk cache's segment files into one on clean shutdown",
    )
    serve_parser.add_argument(
        "--enable-fault-injection",
        action="store_true",
        help="accept the test-only 'fault' request field (fault-injection harnesses)",
    )

    submit_parser = subparsers.add_parser(
        "submit",
        help="compile programs via a running `repro serve` daemon",
        description=(
            "Connect to a running `repro serve` daemon and compile OpenQASM "
            "2.0 files over the socket, or probe the daemon with --ping / "
            "--stats / --shutdown."
        ),
    )
    submit_parser.add_argument(
        "qasm", nargs="*", metavar="QASM", help="OpenQASM 2.0 file(s) to compile"
    )
    submit_parser.add_argument(
        "--address",
        default=".repro-serve.sock",
        metavar="ADDR",
        help="daemon socket (path, unix:PATH or tcp:HOST:PORT; default: .repro-serve.sock)",
    )
    submit_parser.add_argument(
        "--compiler", default="reqisc-eff", metavar="NAME", help="compiler name (default: reqisc-eff)"
    )
    submit_parser.add_argument("--seed", type=int, default=0, help="compile seed (default: 0)")
    submit_parser.add_argument(
        "--target", metavar="PRESET", default=None, help="device-target preset name (see `repro targets`)"
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS", help="per-job deadline override"
    )
    submit_parser.add_argument(
        "--session",
        metavar="NAME",
        default=None,
        help=(
            "incremental compile session: submissions under the same session "
            "are pinned to one daemon worker whose pass-memo store replays "
            "every unchanged pass/region of an edited program "
            "(see docs/incremental.md)"
        ),
    )
    submit_parser.add_argument(
        "--priority",
        type=int,
        default=None,
        metavar="0-9",
        help=(
            "scheduling priority (0 lowest .. 9 highest, default 5); under "
            "degraded load the daemon sheds low-priority work first"
        ),
    )
    submit_parser.add_argument(
        "--retries",
        type=int,
        default=3,
        metavar="N",
        help=(
            "retries after the first attempt for transient failures "
            "(overloaded / timeout / worker-crash / lost connections), with "
            "bounded exponential backoff honoring the daemon's retry-after "
            "hint; 0 disables (default: 3)"
        ),
    )
    submit_parser.add_argument(
        "--hedge-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "race a duplicate request on a fresh connection if the primary "
            "has not answered within SECONDS (idempotent-safe: the daemon "
            "dedups in-flight work; default: disabled)"
        ),
    )
    submit_parser.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="socket connect timeout (default: 10)",
    )
    submit_parser.add_argument(
        "--read-timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="socket read timeout per response (default: 120)",
    )
    submit_parser.add_argument("--ping", action="store_true", help="liveness probe, then exit")
    submit_parser.add_argument("--stats", action="store_true", help="print the daemon's counter snapshot")
    submit_parser.add_argument(
        "--health", action="store_true", help="print the daemon's watchdog health report"
    )
    submit_parser.add_argument(
        "--shutdown", action="store_true", help="ask the daemon to shut down (after any compiles)"
    )
    _add_output_arguments(submit_parser)
    _add_emit_argument(submit_parser)

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect or compact the on-disk synthesis/memo cache",
        description=(
            "Maintain the append-only segment store shared by the synthesis "
            "cache and the incremental pass-memo store: `stats` reports live "
            "entries, segment files and bytes on disk; `compact` folds every "
            "live record into one fresh segment and deletes the superseded "
            "files (run it without concurrent writers); `scrub` CRC-verifies "
            "every record, salvages valid records out of damaged segments and "
            "quarantines the damaged files under segments/quarantine/ "
            "(see docs/resilience.md)."
        ),
    )
    cache_parser.add_argument(
        "action", choices=("stats", "compact", "scrub"), help="what to do with the cache directory"
    )
    cache_parser.add_argument(
        "--cache-dir",
        default=_DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"cache directory to operate on (default: {_DEFAULT_CACHE_DIR})",
    )
    cache_parser.add_argument("--json", action="store_true", help="emit JSON instead of text")

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="soak a live daemon under seeded fault injection (see docs/resilience.md)",
        description=(
            "Boot a real compile daemon with a seeded FaultPlan armed across "
            "all four layers (worker crashes/hangs, clock-skewed deadlines, "
            "socket resets/torn frames/delays, cache bit-flips/truncations), "
            "drive it with resilient clients, then cold-reopen the cache and "
            "scrub it.  The soak passes only if every completed job is "
            "bit-identical to its fault-free compile, no job was "
            "unrecoverable, no client hung, and every injected corruption "
            "was quarantined.  Exits 1 on any violation."
        ),
    )
    chaos_parser.add_argument(
        "--faults", type=int, default=50, metavar="N",
        help="total faults to schedule, spread round-robin across layers (default: 50)",
    )
    chaos_parser.add_argument("--seed", type=int, default=42, help="fault-plan seed (default: 42)")
    chaos_parser.add_argument(
        "--window", type=int, default=None, metavar="N",
        help="schedule window: faults land on draws [0, N) per layer (default: 200)",
    )
    chaos_parser.add_argument(
        "--spec", metavar="JSON|PATH", default=None,
        help=(
            "explicit plan instead of --faults: a JSON object (or a path to "
            "one) like '{\"seed\": 7, \"counts\": {\"worker.raise\": 5}}' "
            "accepted by FaultPlan.from_spec"
        ),
    )
    chaos_parser.add_argument(
        "--scale", choices=("tiny", "small", "medium"), default="tiny",
        help="benchmark-suite scale to drive through the daemon (default: tiny)",
    )
    chaos_parser.add_argument(
        "--compiler", default="reqisc-eff", metavar="NAME",
        help="compiler under test (default: reqisc-eff)",
    )
    chaos_parser.add_argument(
        "--clients", type=int, default=4, metavar="N", help="concurrent client threads (default: 4)"
    )
    chaos_parser.add_argument(
        "--workers", type=int, default=2, metavar="N", help="daemon worker processes (default: 2)"
    )
    chaos_parser.add_argument(
        "--requests-per-circuit", type=int, default=3, metavar="N",
        help="times each suite program is submitted (default: 3)",
    )
    chaos_parser.add_argument(
        "--job-timeout", type=float, default=30.0, metavar="SECONDS",
        help="daemon per-job deadline (default: 30)",
    )
    chaos_parser.add_argument(
        "--wall-deadline", type=float, default=600.0, metavar="SECONDS",
        help="whole-soak deadline; a client alive past it counts as hung (default: 600)",
    )
    chaos_parser.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the full JSON report to PATH",
    )
    chaos_parser.add_argument("--json", action="store_true", help="print the full report as JSON")

    perf_parser = subparsers.add_parser(
        "perf",
        help="run the performance microbenchmark suite and write BENCH_*.json",
        description=(
            "Times the compile/route/synthesize/simulate hot paths plus the "
            "synth.batch kernel family (batched KAK, apply_gate_sequence) "
            "over deterministic workloads, anchors the routing measurement "
            "to the frozen pre-optimization SABRE baseline, and writes a "
            "schema-stable BENCH_*.json report (see docs/performance.md)."
        ),
    )
    perf_parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: fewer repeats, smaller workloads"
    )
    perf_parser.add_argument(
        "--only",
        metavar="KIND",
        action="append",
        choices=(
            "compile", "route", "incr", "ir", "qasm", "serve", "chaos",
            "synthesize", "synth_batch", "simulate", "fidelity",
        ),
        help="restrict to one benchmark kind (repeatable; default: all)",
    )
    perf_parser.add_argument("--seed", type=int, default=42, help="workload seed (default: 42)")
    perf_parser.add_argument(
        "--repeats", type=int, default=None, metavar="N",
        help="timing repeats per benchmark (default: 3, or 1 with --quick)",
    )
    perf_parser.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_perf.json",
        help="report path (default: BENCH_perf.json)",
    )
    perf_parser.add_argument("--json", action="store_true", help="also print the report on stdout")

    return parser


# ---------------------------------------------------------------------------
# Shared helpers.
# ---------------------------------------------------------------------------


def _make_cache(args: argparse.Namespace):
    from repro.service.cache import SynthesisCache

    if getattr(args, "no_cache", False):
        return None
    directory = args.cache_dir or None
    return SynthesisCache(capacity=args.cache_capacity, directory=directory)


def _load_workload(name: str, scale: str):
    from repro.workloads.suite import benchmark_suite, suite_categories

    categories = suite_categories()
    if name not in categories:
        raise SystemExit(
            f"unknown workload {name!r}; available: {', '.join(categories)}"
        )
    return benchmark_suite(scale=scale, categories=[name])[0]


def _compiler_names() -> List[str]:
    from repro.target.pipeline import pipeline_names

    return pipeline_names()


def _target_argument(args: argparse.Namespace) -> Optional[str]:
    """Validate ``--target`` early so typos fail with a clean message."""
    spec = getattr(args, "target", None)
    if spec is None:
        return None
    from repro.target.target import resolve_target

    try:
        # A dummy qubit count sizes size-less presets just for validation;
        # the real resolution happens per circuit at compile time.
        resolve_target(spec, num_qubits=2)
    except (ValueError, TypeError, OSError, KeyError) as exc:
        raise SystemExit(f"invalid --target {spec!r}: {exc}")
    return spec


def _render(report: Dict[str, Any], rows: List[Dict[str, Any]], args: argparse.Namespace) -> str:
    """Serialize a report as JSON, CSV (rows only) or an aligned text table."""
    if getattr(args, "json", False):
        return json.dumps(report, indent=2, default=_json_default)
    if getattr(args, "csv", False):
        buffer = io.StringIO()
        columns: List[str] = []
        for row in rows:
            for column in row:
                if column not in columns:
                    columns.append(column)
        writer = csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)
        return buffer.getvalue().rstrip("\n")
    from repro.experiments.common import format_rows

    lines = [format_rows(rows, title=report.get("title", ""))]
    cache = report.get("cache")
    if cache:
        lines.append(
            "cache: hits={hits} (disk {disk_hits})  misses={misses}  evictions={evictions}".format(**cache)
        )
    if "elapsed_seconds" in report:
        lines.append(f"elapsed: {report['elapsed_seconds']:.2f}s")
    # suite errors are (name, message); submit errors carry a third element,
    # the structured protocol error code.
    for entry in report.get("errors", []):
        lines.append(f"ERROR {entry[0]}: {entry[1]}")
    return "\n".join(lines)


def _json_default(value: Any) -> Any:
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    return str(value)


def _emit(text: str, args: argparse.Namespace) -> None:
    output = getattr(args, "output", None)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {output}", file=sys.stderr)
    else:
        print(text)


def _load_qasm_circuit(path: str):
    """Load a QASM file for the CLI, converting errors to clean exits."""
    from repro.qasm import QasmError, load

    try:
        return load(path)
    except OSError as exc:
        raise SystemExit(f"cannot read QASM file {path!r}: {exc}")
    except QasmError as exc:
        raise SystemExit(f"invalid QASM in {path!r}: {exc}")


def _emit_qasm_sections(sections: List[Tuple[str, str]], args: argparse.Namespace) -> None:
    """Emit ``(name, qasm_text)`` sections; a directory --output gets one
    ``<name>.qasm`` file per section, anything else a concatenated stream."""
    import os
    import re

    output = getattr(args, "output", None)
    if output and os.path.isdir(output):
        taken: set = set()
        for name, text in sections:
            safe = re.sub(r"[^A-Za-z0-9._-]+", "_", name) or "circuit"
            # Sanitizing can collide distinct section names; never overwrite.
            candidate = safe
            serial = 1
            while candidate in taken:
                candidate = f"{safe}-{serial}"
                serial += 1
            taken.add(candidate)
            path = os.path.join(output, f"{candidate}.qasm")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {path}", file=sys.stderr)
        return
    blocks = []
    for name, text in sections:
        prefix = f"// == {name} ==\n" if len(sections) > 1 else ""
        blocks.append(prefix + text.rstrip("\n"))
    _emit("\n".join(blocks), args)


# ---------------------------------------------------------------------------
# Subcommand implementations.
# ---------------------------------------------------------------------------


def _resolve_compile_source(args: argparse.Namespace) -> Tuple[Any, str]:
    """Resolve the compile subcommand's circuit from SOURCE/--workload/--qasm."""
    import os

    source = getattr(args, "source", None)
    if source and (args.workload or args.qasm):
        raise SystemExit("give either a positional SOURCE or --workload/--qasm, not both")
    if source:
        # Resolution order: an explicit .qasm suffix always means a file;
        # a known workload name always means the workload (so a stray file
        # or directory in cwd named `qft` cannot hijack the command); any
        # other existing regular file is read as QASM.
        from repro.workloads.suite import suite_categories

        if source.endswith(".qasm"):
            args.qasm = source
        elif source in suite_categories():
            args.workload = source
        elif os.path.isfile(source):
            args.qasm = source
        else:
            args.workload = source
    if args.qasm:
        circuit = _load_qasm_circuit(args.qasm)
        return circuit, circuit.name
    if not args.workload:
        raise SystemExit("nothing to compile: give a SOURCE, --workload or --qasm")
    case = _load_workload(args.workload, args.scale)
    return case.circuit, case.name


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.experiments.common import build_compilers

    cache = _make_cache(args)
    circuit, name = _resolve_compile_source(args)

    target = _target_argument(args)
    start = time.perf_counter()
    registry = build_compilers(
        [args.compiler], seed=args.seed, synthesis_cache=cache, target=target
    )
    engine = registry[args.compiler]
    if args.memo:
        engine.memo = True  # compile() builds a PassMemoStore backed by `cache`
    result = engine.compile(circuit)
    elapsed = time.perf_counter() - start

    if args.emit == "qasm":
        from repro.qasm import dumps

        _emit_qasm_sections([(name, dumps(result.circuit))], args)
        return 0

    row: Dict[str, Any] = {"benchmark": name, "num_qubits": circuit.num_qubits}
    row.update(result.summary())
    report = {
        "command": "compile",
        "title": f"compile {name} [{args.compiler}]",
        "target": target,
        "rows": [row],
        "passes": [vars(record) for record in result.pass_records],
        "cache": cache.stats.as_dict() if cache else None,
        "elapsed_seconds": elapsed,
    }
    text = _render(report, [row], args)
    if not (getattr(args, "json", False) or getattr(args, "csv", False)):
        from repro.experiments.common import format_rows

        pass_rows = [
            {
                "pass": record.name,
                "seconds": record.seconds,
                "cached": "memo" if record.cached else "-",
                "gates": f"{record.gates_before}->{record.gates_after}",
                "2q": f"{record.two_qubit_before}->{record.two_qubit_after}",
                "depth": f"{record.depth_before}->{record.depth_after}",
                "writes": ",".join(record.properties_written) or "-",
            }
            for record in result.pass_records
        ]
        if pass_rows:
            text += "\n" + format_rows(pass_rows, title="passes")
    _emit(text, args)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.common import (
        build_compilers,
        reduction_percent,
        reference_cnot_circuit,
        reference_metrics,
    )

    cache = _make_cache(args)
    case = _load_workload(args.workload, args.scale)
    names = [name.strip() for name in args.compilers.split(",") if name.strip()]

    target = _target_argument(args)
    reference = reference_cnot_circuit(case.circuit)
    base = reference_metrics(reference)
    start = time.perf_counter()
    registry = build_compilers(names, seed=args.seed, synthesis_cache=cache, target=target)
    rows: List[Dict[str, Any]] = []
    if args.emit == "qasm":
        from repro.qasm import dumps

        sections = [
            (f"{case.name} [{name}]", dumps(registry[name].compile(case.circuit).circuit))
            for name in names
        ]
        _emit_qasm_sections(sections, args)
        return 0
    for name in names:
        result = registry[name].compile(case.circuit)
        # ``summary()`` is ISA-aware (CNOT pulse for CNOT-ISA baselines,
        # genAshN for SU(4) results), so the reductions below follow the
        # paper's Table 2 convention directly.
        row: Dict[str, Any] = {"benchmark": case.name}
        row.update(result.summary())
        row["2q_reduction_pct"] = reduction_percent(base["num_2q"], row["num_2q"])
        row["depth_reduction_pct"] = reduction_percent(base["depth_2q"], row["depth_2q"])
        row["duration_reduction_pct"] = reduction_percent(base["duration"], row["duration"])
        rows.append(row)
    elapsed = time.perf_counter() - start

    report = {
        "command": "bench",
        "title": f"bench {case.name} (reference #2Q = {base['num_2q']})",
        "target": target,
        "reference": base,
        "rows": rows,
        "cache": cache.stats.as_dict() if cache else None,
        "elapsed_seconds": elapsed,
    }
    _emit(_render(report, rows, args), args)
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.service.batch import BatchCompiler
    from repro.workloads.suite import benchmark_suite, suite_categories

    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    cache = _make_cache(args)
    categories: Optional[List[str]] = args.workload or None
    if categories:
        known = suite_categories()
        for category in categories:
            if category not in known:
                raise SystemExit(
                    f"unknown workload {category!r}; available: {', '.join(known)}"
                )
    cases: List[Any] = []
    if categories or not args.qasm:
        cases.extend(
            benchmark_suite(scale=args.scale, categories=categories, max_qubits=args.max_qubits)
        )
    # A broken corpus file fails like a broken compile: its own error entry,
    # never the whole batch (the suite contract).
    qasm_errors: List[Tuple[str, str]] = []
    if args.qasm:
        import os

        from repro.qasm import QasmError
        from repro.workloads.suite import qasm_cases

        for path in args.qasm:
            try:
                cases.extend(qasm_cases([path], max_qubits=args.max_qubits))
            except (OSError, QasmError) as exc:
                stem = os.path.splitext(os.path.basename(path))[0] or path
                qasm_errors.append((stem, str(exc)))
    if not cases:
        if qasm_errors:
            for name, message in qasm_errors:
                print(f"ERROR {name}: {message}", file=sys.stderr)
            return 1
        raise SystemExit("the requested suite selection is empty")

    target = _target_argument(args)
    engine = BatchCompiler(
        compiler=args.compiler,
        workers=args.workers,
        seed=args.seed,
        cache=cache,
        target=target,
    )
    batch = engine.compile_all(cases)

    if args.emit == "qasm":
        from repro.qasm import dumps

        sections = [
            (item.name, dumps(item.result.circuit))
            for item in batch.items
            if item.result is not None
        ]
        _emit_qasm_sections(sections, args)
        for name, message in qasm_errors + list(batch.errors):
            print(f"ERROR {name}: {message}", file=sys.stderr)
        return 1 if (batch.errors or qasm_errors) else 0

    rows: List[Dict[str, Any]] = []
    for case, item in zip(cases, batch.items):
        if item.result is None:
            continue
        row: Dict[str, Any] = {
            "category": case.category,
            "benchmark": case.name,
            "num_qubits": case.num_qubits,
        }
        row.update(item.result.summary())
        rows.append(row)

    report = {
        "command": "suite",
        "title": f"suite [{args.compiler}] scale={args.scale} workers={args.workers}",
        "compiler": args.compiler,
        "target": target,
        "scale": args.scale,
        "workers": args.workers,
        "seed": args.seed,
        "rows": rows,
        "errors": qasm_errors + list(batch.errors),
        "cache": batch.cache_stats.as_dict() if cache else None,
        "elapsed_seconds": batch.elapsed_seconds,
    }
    _emit(_render(report, rows, args), args)
    return 1 if (batch.errors or qasm_errors) else 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.target.target import target_presets
    from repro.workloads.suite import suite_categories

    payload = {
        "workloads": suite_categories(),
        "compilers": _compiler_names(),
        "targets": sorted(target_presets()),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print("workloads: " + ", ".join(payload["workloads"]))
        print("compilers: " + ", ".join(payload["compilers"]))
        print("targets:   " + ", ".join(payload["targets"]))
    return 0


def _cmd_targets(args: argparse.Namespace) -> int:
    from repro.target.target import target_preset_info, target_presets

    presets = target_presets()
    info = target_preset_info()
    if args.json:
        # "targets" keeps its historical name->description shape; the
        # calibration flags ride alongside so existing consumers don't break.
        payload = {
            "targets": presets,
            "calibrated": {name: entry["calibrated"] for name, entry in info.items()},
        }
        print(json.dumps(payload, indent=2))
    else:
        width = max(len(name) for name in presets)
        print("target presets (use with --target; or pass a Target JSON file):")
        for name, description in presets.items():
            marker = "calibrated" if info[name]["calibrated"] else "          "
            print(f"  {name.ljust(width)}  {marker}  {description}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service.protocol import format_address
    from repro.service.server import CompileServer, ServeConfig

    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    cache_dir = None if args.no_cache else (args.cache_dir or None)
    config = ServeConfig(
        address=args.address,
        workers=args.workers,
        max_pending=args.max_pending,
        job_timeout=args.job_timeout,
        max_qubits=args.max_qubits,
        cache_dir=cache_dir,
        cache_capacity=args.cache_capacity,
        enable_fault_injection=args.enable_fault_injection,
        compact_cache_on_shutdown=args.compact_on_shutdown,
    )
    server = CompileServer(config).start()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: server.close())
    print(
        f"repro serve: listening on {format_address(server.address)} "
        f"({args.workers} workers, max_pending={args.max_pending})",
        file=sys.stderr,
    )
    try:
        server.wait()
    finally:
        server.close()
    print("repro serve: shut down", file=sys.stderr)
    return 0


def _submit_exit_code(errors: List[Tuple[str, str, Optional[str]]]) -> int:
    """0 on success; the first failure's structured exit code otherwise."""
    if not errors:
        return 0
    first_code = errors[0][2]
    return EXIT_CODES.get(first_code, 1) if first_code else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.resilience import RetryPolicy, RetryStats
    from repro.service.server import ServeClient, ServeError

    if not (args.qasm or args.ping or args.stats or args.health or args.shutdown):
        raise SystemExit("nothing to do: give QASM file(s), --ping, --stats, --health or --shutdown")
    if args.retries < 0:
        raise SystemExit("--retries must be >= 0")

    retry = RetryPolicy(
        max_attempts=args.retries + 1,
        seed=args.seed,
        hedge_after=args.hedge_after,
    )
    stats = RetryStats()
    client = ServeClient(
        args.address,
        timeout=args.read_timeout,
        connect_timeout=args.connect_timeout,
        retry=retry,
        retry_stats=stats,
    )
    try:
        try:
            if args.ping:
                client.ping()
                print(f"pong ({args.address})")
            if args.health:
                print(json.dumps(client.health(), indent=2, default=_json_default))
        except (ConnectionError, OSError) as exc:
            print(f"cannot reach daemon at {args.address!r}: {exc}", file=sys.stderr)
            return EXIT_UNAVAILABLE

        rows: List[Dict[str, Any]] = []
        sections: List[Tuple[str, str]] = []
        errors: List[Tuple[str, str, Optional[str]]] = []
        start = time.perf_counter()
        for path in args.qasm:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                raise SystemExit(f"cannot read QASM file {path!r}: {exc}")
            name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0] or path
            try:
                response = client.compile(
                    source,
                    compiler=args.compiler,
                    seed=args.seed,
                    target=args.target,
                    timeout=args.timeout,
                    session=args.session,
                    priority=args.priority,
                )
            except ServeError as exc:
                errors.append((name, f"[{exc.code}] {exc.message}", exc.code))
                continue
            except (ConnectionError, OSError) as exc:
                print(f"lost connection to daemon at {args.address!r}: {exc}", file=sys.stderr)
                return EXIT_UNAVAILABLE
            if args.emit == "qasm":
                sections.append((name, response["qasm"]))
            row: Dict[str, Any] = {"benchmark": name, "cached": response["cached"]}
            row.update(response["summary"])
            rows.append(row)
        elapsed = time.perf_counter() - start

        if args.stats:
            print(json.dumps(client.stats(), indent=2, default=_json_default))
        if args.shutdown:
            client.shutdown_server()
            print("daemon shutting down", file=sys.stderr)

        resilience = stats.as_dict()
        if args.emit == "qasm" and sections:
            _emit_qasm_sections(sections, args)
        elif rows or errors:
            report = {
                "command": "submit",
                "title": f"submit [{args.compiler}] via {args.address}",
                "rows": rows,
                "errors": errors,
                "resilience": resilience,
                "elapsed_seconds": elapsed,
            }
            text = _render(report, rows, args)
            if not (getattr(args, "json", False) or getattr(args, "csv", False)):
                text += (
                    "\nresilience: attempts={attempts} retries={retries} "
                    "reconnects={reconnects} retry_after_honored={retry_after_honored} "
                    "hedges={hedges} hedge_wins={hedge_wins} giveups={giveups}".format(**resilience)
                )
            _emit(text, args)
        for name, message, _ in errors:
            print(f"ERROR {name}: {message}", file=sys.stderr)
        return _submit_exit_code(errors)
    finally:
        client.close()


def _cmd_cache(args: argparse.Namespace) -> int:
    import os

    from repro.service.cache import SynthesisCache

    if not os.path.isdir(args.cache_dir):
        raise SystemExit(f"no cache directory at {args.cache_dir!r}")
    cache = SynthesisCache(capacity=1, directory=args.cache_dir)
    try:
        if args.action == "stats":
            payload = cache.disk_stats()
        elif args.action == "scrub":
            payload = cache.scrub()
        else:
            payload = cache.compact()
    finally:
        cache.close()
    payload = {"cache_dir": args.cache_dir, "action": args.action, **payload}
    if args.json:
        print(json.dumps(payload, indent=2))
    elif args.action == "stats":
        print(
            "cache {cache_dir}: {entries} entries in {segments} segment file(s), "
            "{mib:.1f} MiB on disk; {partial_tails} partial tail(s), "
            "{corrupt_records} corrupt record(s), "
            "{quarantined_segments} quarantined segment(s)".format(
                mib=payload["bytes"] / (1024 * 1024), **payload
            )
        )
    elif args.action == "scrub":
        print(
            "scrubbed {cache_dir}: {segments_scanned} segment(s) scanned, "
            "{records_valid} valid record(s) ({records_salvaged} salvaged), "
            "{segments_quarantined} segment(s) quarantined, "
            "{torn_tails} torn tail(s), {corrupt_sites} corrupt site(s), "
            "{tmp_files_removed} stale tmp file(s) removed".format(**payload)
        )
    else:
        print(
            "compacted {cache_dir}: {entries} live entries kept, "
            "{segments_removed} segment file(s) removed, "
            "{legacy_removed} legacy file(s) removed".format(**payload)
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import os

    from repro.resilience import FaultPlan, run_chaos

    if args.spec is not None:
        spec = args.spec
        if os.path.isfile(spec):
            with open(spec, "r", encoding="utf-8") as handle:
                spec = handle.read()
        try:
            plan = FaultPlan.from_spec(spec)
        except (ValueError, TypeError, KeyError) as exc:
            raise SystemExit(f"invalid --spec: {exc}")
    else:
        if args.faults < 1:
            raise SystemExit("--faults must be >= 1")
        plan = FaultPlan.balanced(seed=args.seed, faults=args.faults, window=args.window)

    print(f"repro chaos: {plan.describe()}", file=sys.stderr)
    report = run_chaos(
        plan,
        scale=args.scale,
        compiler=args.compiler,
        seed=args.seed,
        clients=args.clients,
        workers=args.workers,
        requests_per_circuit=args.requests_per_circuit,
        job_timeout=args.job_timeout,
        wall_deadline=args.wall_deadline,
    )

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, default=_json_default)
            handle.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, default=_json_default))
    else:
        resilience = report["resilience"]
        scrub = report["scrub"]
        print(
            "chaos: {completed}/{jobs} jobs completed in {wall_seconds:.1f}s "
            "({clients} clients, {workers} workers), "
            "{faults_fired_total}/{faults_scheduled} scheduled faults fired".format(**report)
        )
        print(
            "  bit_identical={bit_identical} mismatches={n_mismatch} "
            "unrecovered={n_unrecovered} hung_clients={hung_clients}".format(
                n_mismatch=len(report["mismatches"]),
                n_unrecovered=len(report["unrecovered"]),
                **report,
            )
        )
        print(
            "  client: attempts={attempts} retries={retries} reconnects={reconnects} "
            "retry_after_honored={retry_after_honored} hedges={hedges} "
            "hedge_wins={hedge_wins} giveups={giveups}".format(**resilience)
        )
        if scrub:
            print(
                "  scrub: {records_valid} valid ({records_salvaged} salvaged), "
                "{segments_quarantined} quarantined, {corrupt_sites} corrupt "
                "site(s), {torn_tails} torn tail(s)".format(**scrub)
            )
        for item in report["unrecovered"]:
            print("ERROR job {job} ({name}): {error}".format(**item), file=sys.stderr)
    if report["ok"]:
        print("chaos: PASS", file=sys.stderr)
        return 0
    print("chaos: FAIL", file=sys.stderr)
    return 1


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf.harness import run_perf, write_report

    report = run_perf(
        quick=args.quick,
        seed=args.seed,
        repeats=args.repeats,
        kinds=args.only,
    )
    write_report(report, args.output)
    if args.json:
        print(json.dumps(report, indent=2, default=_json_default))
    else:
        rows = [
            {
                "benchmark": record["name"],
                "kind": record["kind"],
                "wall_s": f"{record['wall_seconds']:.4f}",
                "gates": record["gates"],
                "gates_per_s": f"{record['gates_per_second']:.0f}",
            }
            for record in report["benchmarks"]
        ]
        from repro.experiments.common import format_rows

        print(format_rows(rows, title=f"repro perf ({'quick' if args.quick else 'full'} mode)"))
        routing = report.get("routing")
        if routing:
            print(
                "routing: {speedup:.2f}x over pre-optimization baseline "
                "({baseline_seconds:.3f}s -> {fast_seconds:.3f}s), "
                "bit_identical={bit_identical}".format(**routing)
            )
        equivalence = report.get("equivalence")
        if equivalence:
            print(
                "equivalence: {cases} suite programs at scale={scale}, "
                "bit_identical={bit_identical}".format(**equivalence)
            )
        qasm_section = report.get("qasm")
        if qasm_section:
            print(
                "qasm: {cases} programs at scale={scale}, "
                "dump {dump_gates_per_second:.0f} gates/s, "
                "load {load_gates_per_second:.0f} gates/s, "
                "bit_identical={bit_identical}".format(**qasm_section)
            )
        serve_section = report.get("serve")
        if serve_section:
            print(
                "serve: {throughput_jobs_per_second:.1f} jobs/s sustained "
                "({completed}/{requests} jobs, {clients} clients, {workers} workers), "
                "p50={latency_p50_ms:.1f}ms p99={latency_p99_ms:.1f}ms, "
                "bit_identical={bit_identical}".format(**serve_section)
            )
        chaos_section = report.get("chaos")
        if chaos_section:
            print(
                "chaos: ok={ok} — {completed}/{jobs} jobs under "
                "{faults_fired_total}/{faults_scheduled} fired faults, "
                "retries={retries}, {quarantined} segment(s) quarantined, "
                "bit_identical={bit_identical}".format(
                    retries=chaos_section["resilience"]["retries"],
                    quarantined=chaos_section["scrub"].get("segments_quarantined", 0),
                    **chaos_section,
                )
            )
        incr_section = report.get("incr")
        if incr_section:
            print(
                "incr: {speedup:.2f}x edit-recompile over from-scratch "
                "({from_scratch_seconds:.3f}s -> {incremental_seconds:.3f}s, "
                "{num_gates} gates, {num_edits}-gate edits), "
                "memo hits={memo_hits} misses={memo_misses}, "
                "bit_identical={bit_identical}".format(**incr_section)
            )
        ir_section = report.get("ir")
        if ir_section:
            print(
                "ir: {conversions_per_compile:.1f} circuit<->IR conversions per "
                "compile (legacy {legacy_conversions_per_compile:.1f}), "
                "{speedup:.2f}x over per-pass marshalling, "
                "bit_identical={bit_identical}".format(**ir_section)
            )
        synth_batch = report.get("synth_batch")
        if synth_batch:
            print(
                "synth.batch: {speedup:.2f}x batched KAK over one-at-a-time "
                "({scalar_seconds:.4f}s -> {batch_seconds:.4f}s, {count} unitaries, "
                "{interned_fraction:.0%} interned), "
                "apply-sequence {apply_speedup:.2f}x, "
                "bit_identical={bit_identical}".format(**synth_batch)
            )
        fidelity_section = report.get("fidelity")
        if fidelity_section:
            print(
                "fidelity: noise-aware routing {geomean_improvement:.3f}x geomean "
                "estimated-fidelity gain over distance-only "
                "({wins} wins, {ties} ties, {regressions} regressions over "
                "{rows} rows), uniform bit_identical={bit_identical}".format(
                    regressions=len(fidelity_section["regressions"]),
                    rows=len(fidelity_section["rows"]),
                    **{
                        k: v
                        for k, v in fidelity_section.items()
                        if k not in ("regressions", "rows")
                    },
                )
            )
        kernels = report.get("kernels")
        if kernels:
            print(
                "kernels: backend={backend} (requested={requested}, "
                "native_available={native_available})".format(**kernels)
            )
        gate_cache = report["cache"]["gate_matrix"]
        print(
            "gate-matrix cache: hits={hits} misses={misses}".format(**gate_cache)
        )
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


_COMMANDS = {
    "compile": _cmd_compile,
    "bench": _cmd_bench,
    "suite": _cmd_suite,
    "list": _cmd_list,
    "targets": _cmd_targets,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "cache": _cmd_cache,
    "chaos": _cmd_chaos,
    "perf": _cmd_perf,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _normalize_output_format(args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
