"""Shared lazy-export machinery for package ``__init__`` modules.

Both ``repro`` and ``repro.target`` expose their public API through a
``{name: "module:attribute"}`` table resolved on first attribute access, so
importing the package stays cheap and submodules never cycle through the
package ``__init__``.  A value of ``"module:"`` (empty attribute) exports the
module object itself.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any, Callable, Dict, Iterable, List, Tuple


def lazy_exports(
    module_name: str,
    exports: Dict[str, str],
    module_globals: Dict[str, Any],
    extra: Iterable[str] = (),
) -> Tuple[Callable[[str], Any], Callable[[], List[str]]]:
    """Build the ``(__getattr__, __dir__)`` pair for a lazy package init.

    ``__dir__`` lists only the public API — the export names plus ``extra``
    (eagerly-defined public names such as ``__version__``) — so tab
    completion never surfaces package internals.
    """

    def __getattr__(name: str) -> Any:
        try:
            location = exports[name]
        except KeyError:
            raise AttributeError(
                f"module {module_name!r} has no attribute {name!r}"
            ) from None
        submodule, _, attribute = location.partition(":")
        loaded = import_module(submodule)
        value = loaded if not attribute else getattr(loaded, attribute)
        module_globals[name] = value
        return value

    public = sorted(set(exports) | set(extra))

    def __dir__() -> List[str]:
        return public

    return __getattr__, __dir__
