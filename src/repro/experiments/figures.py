"""Figure experiments: microarchitecture profiling (Figs 4, 6), topology-aware
routing (Fig 12), calibration (Fig 13), ablation (Fig 14), noisy-simulation
fidelity (Fig 15) and reliability/scalability (Fig 16)."""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.metrics import cnot_isa_duration_model
from repro.compiler.routing.coupling_map import CouplingMap
from repro.experiments.common import (
    build_compilers,
    reduction_percent,
    reference_cnot_circuit,
    reference_metrics,
    su4_metrics,
)
from repro.gates import standard
from repro.linalg.predicates import unitary_infidelity
from repro.microarch.durations import SubScheme, optimal_duration
from repro.microarch.ea import alpha_beta_residual_map, solve_ea
from repro.microarch.hamiltonian import CouplingHamiltonian
from repro.microarch.scheme import GenAshNScheme
from repro.microarch.durations import su4_duration_model
from repro.simulators.fidelity import hellinger_fidelity
from repro.simulators.noise import duration_scaled_noise_model, simulate_noisy_probabilities
from repro.simulators.statevector import probabilities
from repro.simulators.unitary import permutation_unitary
from repro.workloads.suite import benchmark_suite

__all__ = [
    "fig4_alpha_beta_profile",
    "fig6_pulse_parameters",
    "fig12_routing_overhead",
    "fig13_calibration",
    "fig14_ablation",
    "fig15_fidelity",
    "fig16_reliability",
    "fig17_noise_aware_routing",
]

PI = math.pi
PI_4 = math.pi / 4.0
PI_8 = math.pi / 8.0

_NAMED_GATES = {
    "sqisw": (PI_8, PI_8, 0.0),
    "iswap": (PI_4, PI_4, 0.0),
    "qtsw": (PI / 16, PI / 16, PI / 16),
    "sqsw": (PI_8, PI_8, PI_8),
    "swap": (PI_4, PI_4, PI_4),
    "cv": (PI_8, 0.0, 0.0),
    "cnot": (PI_4, 0.0, 0.0),
    "b": (PI_4, PI_8, 0.0),
    "ecp": (PI_4, PI_8, PI_8),
    "qft2": (PI_4, PI_4, PI_8),
}


def fig4_alpha_beta_profile(resolution: int = 30) -> Dict:
    """Figure 4: (alpha, beta) residual landscape for SWAP under XX coupling."""
    coupling = CouplingHamiltonian.xx(1.0)
    coords = (PI_4, PI_4, PI_4)
    breakdown = optimal_duration(coords, coupling)
    alphas = np.linspace(0.0, 1.0, resolution)
    betas = np.linspace(0.0, 2.0, resolution)
    landscape = alpha_beta_residual_map(
        coords, coupling.coefficients, breakdown.duration, breakdown.subscheme, alphas, betas
    )
    omega1, omega2, delta = solve_ea(
        coords, coupling.coefficients, breakdown.duration, breakdown.subscheme
    )
    return {
        "alphas": alphas,
        "betas": betas,
        "landscape": landscape,
        "tau": breakdown.duration,
        "subscheme": breakdown.subscheme.value,
        "solution": {"omega1": omega1, "omega2": omega2, "delta": delta},
        "num_near_solutions": int(np.sum(landscape < 0.05)),
    }


def fig6_pulse_parameters(couplings: Optional[Sequence[str]] = None) -> List[Dict]:
    """Figure 6: durations, subschemes and drive parameters of named gates."""
    available = {
        "xy": CouplingHamiltonian.xy(1.0),
        "xx": CouplingHamiltonian.xx(1.0),
    }
    names = list(couplings) if couplings else ["xy", "xx"]
    rows: List[Dict] = []
    for coupling_name in names:
        coupling = available[coupling_name]
        scheme = GenAshNScheme(coupling)
        for gate_name, coords in _NAMED_GATES.items():
            program = scheme.compile_gate(coords)
            amp1, amp2 = program.drive_amplitudes
            rows.append(
                {
                    "coupling": coupling_name,
                    "gate": gate_name,
                    "duration": program.tau,
                    "subscheme": program.subscheme.value,
                    "A1": abs(amp1),
                    "A2": abs(amp2),
                    "delta": program.delta,
                    "mirrored": program.mirrored,
                }
            )
    return rows


def fig12_routing_overhead(
    scale: str = "small",
    categories: Optional[Sequence[str]] = None,
    topologies: Sequence[str] = ("chain", "grid"),
) -> List[Dict]:
    """Figure 12: #2Q before/after mapping for the CNOT and SU(4) flows.

    Compares the CNOT baseline routed with plain SABRE against ReQISC-Eff
    routed with plain SABRE and with mirroring-SABRE, on 1D-chain and 2D-grid
    topologies.
    """
    rows: List[Dict] = []
    for case in benchmark_suite(scale=scale, categories=categories):
        num_qubits = case.num_qubits
        logical_registry = build_compilers(["tket-like", "reqisc-eff"])
        cnot_logical = logical_registry["tket-like"].compile(case.circuit)
        su4_logical = logical_registry["reqisc-eff"].compile(case.circuit)
        row: Dict = {
            "category": case.category,
            "benchmark": case.name,
            "cnot_logical_2q": cnot_logical.num_two_qubit_gates,
            "su4_logical_2q": su4_logical.num_two_qubit_gates,
        }
        for topology in topologies:
            if topology == "chain":
                coupling_map = CouplingMap.line(num_qubits)
            else:
                coupling_map = CouplingMap.grid_for(num_qubits)
            routed_registry = build_compilers(
                ["tket-like", "reqisc-sabre", "reqisc-eff"], coupling_map=coupling_map
            )
            cnot_routed = routed_registry["tket-like"].compile(case.circuit)
            su4_sabre = routed_registry["reqisc-sabre"].compile(case.circuit)
            su4_mirroring = routed_registry["reqisc-eff"].compile(case.circuit)
            row[f"{topology}_cnot_routed_2q"] = cnot_routed.num_two_qubit_gates
            row[f"{topology}_su4_sabre_2q"] = su4_sabre.num_two_qubit_gates
            row[f"{topology}_su4_mirroring_2q"] = su4_mirroring.num_two_qubit_gates
            row[f"{topology}_cnot_overhead"] = (
                cnot_routed.num_two_qubit_gates / max(cnot_logical.num_two_qubit_gates, 1)
            )
            row[f"{topology}_su4_overhead"] = (
                su4_mirroring.num_two_qubit_gates / max(su4_logical.num_two_qubit_gates, 1)
            )
        rows.append(row)
    return rows


def fig13_calibration(
    scale: str = "small", categories: Optional[Sequence[str]] = None
) -> List[Dict]:
    """Figure 13: distinct SU(4) counts of ReQISC-Eff vs ReQISC-Full."""
    registry = build_compilers(["reqisc-eff", "reqisc-full"])
    rows: List[Dict] = []
    for case in benchmark_suite(scale=scale, categories=categories):
        eff = registry["reqisc-eff"].compile(case.circuit)
        full = registry["reqisc-full"].compile(case.circuit)
        rows.append(
            {
                "category": case.category,
                "benchmark": case.name,
                "eff_2q": eff.num_two_qubit_gates,
                "eff_distinct": eff.distinct_two_qubit_gates,
                "full_2q": full.num_two_qubit_gates,
                "full_distinct": full.distinct_two_qubit_gates,
            }
        )
    return rows


def fig14_ablation(
    scale: str = "small",
    categories: Optional[Sequence[str]] = None,
    compilers: Optional[Sequence[str]] = None,
) -> List[Dict]:
    """Figure 14: ReQISC-Full vs the SU(4) baseline variants and ReQISC-NC."""
    names = list(compilers) if compilers else [
        "qiskit-su4",
        "tket-su4",
        "bqskit-su4",
        "reqisc-nc",
        "reqisc-full",
    ]
    registry = build_compilers(names)
    coupling = CouplingHamiltonian.xy(1.0)
    rows: List[Dict] = []
    for case in benchmark_suite(scale=scale, categories=categories):
        reference = reference_cnot_circuit(case.circuit)
        base = reference_metrics(reference)
        row: Dict = {"category": case.category, "benchmark": case.name, "base_2q": base["num_2q"]}
        for name in names:
            result = registry[name].compile(case.circuit)
            metrics = su4_metrics(result.circuit, coupling)
            row[f"{name}_2q_red"] = reduction_percent(base["num_2q"], metrics["num_2q"])
            row[f"{name}_distinct"] = result.distinct_two_qubit_gates
        rows.append(row)
    return rows


def fig15_fidelity(
    scale: str = "tiny",
    categories: Optional[Sequence[str]] = None,
    topologies: Sequence[str] = ("logical", "chain"),
    base_error_rate: float = 1e-3,
    num_trajectories: int = 120,
    max_qubits: int = 6,
    seed: int = 0,
) -> List[Dict]:
    """Figure 15: program fidelity and pulse duration under duration-scaled noise."""
    coupling = CouplingHamiltonian.xy(1.0)
    rows: List[Dict] = []
    for case in benchmark_suite(scale=scale, categories=categories, max_qubits=max_qubits):
        row: Dict = {"category": case.category, "benchmark": case.name}
        for topology in topologies:
            coupling_map = None
            if topology == "chain":
                coupling_map = CouplingMap.line(case.num_qubits)
            elif topology == "grid":
                coupling_map = CouplingMap.grid_for(case.num_qubits)
            registry = build_compilers(["tket-like", "reqisc-eff"], coupling_map=coupling_map)
            for label, name in (("baseline", "tket-like"), ("reqisc", "reqisc-eff")):
                result = registry[name].compile(case.circuit)
                circuit = result.circuit
                if name.startswith("reqisc"):
                    duration_fn = su4_duration_model(coupling)
                else:
                    duration_fn = cnot_isa_duration_model()
                noise = duration_scaled_noise_model(duration_fn, base_error_rate=base_error_rate)
                noisy = simulate_noisy_probabilities(
                    circuit, noise, num_trajectories=num_trajectories, seed=seed
                )
                ideal = probabilities(circuit.statevector())
                fidelity = hellinger_fidelity(noisy, ideal)
                row[f"{topology}_{label}_fidelity"] = fidelity
                row[f"{topology}_{label}_duration"] = circuit.duration(duration_fn)
        rows.append(row)
    return rows


def fig16_reliability(
    scale: str = "tiny",
    categories: Optional[Sequence[str]] = None,
    compilers: Optional[Sequence[str]] = None,
    max_qubits: int = 8,
) -> List[Dict]:
    """Figure 16: compilation error (circuit infidelity) and compile latency."""
    names = list(compilers) if compilers else ["qiskit-like", "tket-like", "reqisc-eff", "reqisc-full"]
    registry = build_compilers(names)
    rows: List[Dict] = []
    for case in benchmark_suite(scale=scale, categories=categories, max_qubits=max_qubits):
        original = case.circuit.to_unitary()
        row: Dict = {"category": case.category, "benchmark": case.name, "num_qubits": case.num_qubits}
        for name in names:
            start = time.perf_counter()
            result = registry[name].compile(case.circuit)
            elapsed = time.perf_counter() - start
            permutation = result.final_permutation
            expected = permutation_unitary(permutation) @ original
            error = unitary_infidelity(result.circuit.to_unitary(), expected)
            row[f"{name}_error"] = max(error, 0.0)
            row[f"{name}_seconds"] = elapsed
        rows.append(row)
    return rows


def fig17_noise_aware_routing(
    scale: str = "tiny",
    categories: Optional[Sequence[str]] = None,
    presets: Sequence[str] = ("xy-line-cal", "xy-grid-cal", "heavy-hex-cal"),
    seed: int = 0,
) -> List[Dict]:
    """Estimated-fidelity gain of calibration-aware routing over distance-only.

    Each suite program is lowered to the CNOT ISA and routed on the seeded
    heterogeneous calibrated presets (see ``docs/noise.md``) with both the
    distance-only SABRE scorer and the noise-aware portfolio
    (:func:`~repro.compiler.routing.noise.compare_routing_strategies`); rows
    report both estimated fidelities and their ratio, which is >= 1 by the
    portfolio construction.
    """
    from repro.circuits.depgraph import DependencyGraph
    from repro.compiler.routing.noise import compare_routing_strategies
    from repro.target.target import resolve_target

    rows: List[Dict] = []
    for case in benchmark_suite(scale=scale, categories=categories):
        lowered = reference_cnot_circuit(case.circuit)
        graph = DependencyGraph.from_circuit(lowered)
        for preset in presets:
            target = resolve_target(preset, lowered.num_qubits)
            comparison = compare_routing_strategies(
                graph, target, seed=seed, name=case.name
            )
            rows.append(
                {
                    "category": case.category,
                    "benchmark": case.name,
                    "preset": preset,
                    "qubits": target.coupling_map.num_qubits,
                    "distance_fidelity": float(
                        np.exp(comparison.distance_log_fidelity)
                    ),
                    "noise_fidelity": float(np.exp(comparison.noise_log_fidelity)),
                    "improvement": comparison.improvement,
                    "strategy": comparison.strategy,
                    "distance_swaps": comparison.distance_result.inserted_swaps,
                    "noise_swaps": comparison.noise_result.inserted_swaps,
                }
            )
    return rows
