"""Table experiments: suite characteristics (Table 1), logical-level
compilation comparison (Table 2), microarchitecture synthesis cost (Table 3)."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.circuits.metrics import BASELINE_CNOT_DURATION
from repro.experiments.common import (
    build_compilers,
    reduction_percent,
    reference_cnot_circuit,
    reference_metrics,
    su4_metrics,
)
from repro.linalg.random import random_coupling_coefficients
from repro.microarch.durations import fixed_basis_duration, haar_average_duration
from repro.microarch.hamiltonian import CouplingHamiltonian
from repro.workloads.suite import benchmark_suite

__all__ = [
    "table1_suite_characteristics",
    "table2_logical_compilation",
    "table3_synthesis_cost",
]

PI_4 = math.pi / 4.0
PI_8 = math.pi / 8.0


def table1_suite_characteristics(
    scale: str = "small", categories: Optional[Sequence[str]] = None
) -> List[Dict]:
    """Table 1: per-category #Qubit, #2Q, Depth2Q and duration of the suite."""
    rows: List[Dict] = []
    for case in benchmark_suite(scale=scale, categories=categories):
        reference = reference_cnot_circuit(case.circuit)
        metrics = reference_metrics(reference)
        rows.append(
            {
                "category": case.category,
                "benchmark": case.name,
                "num_qubits": case.num_qubits,
                "num_2q": metrics["num_2q"],
                "depth_2q": metrics["depth_2q"],
                "duration": metrics["duration"],
            }
        )
    return rows


def table2_logical_compilation(
    scale: str = "small",
    categories: Optional[Sequence[str]] = None,
    compilers: Optional[Sequence[str]] = None,
    coupling: Optional[CouplingHamiltonian] = None,
    full_synthesis_budget: Optional[int] = 2,
) -> List[Dict]:
    """Table 2: reduction rates of #2Q, Depth2Q and pulse duration.

    Reductions are relative to the original CNOT-ISA representation of each
    program, exactly as in the paper.  CNOT-ISA compilers are costed with the
    conventional CNOT pulse; SU(4)-ISA compilers with the genAshN durations.
    """
    coupling = coupling or CouplingHamiltonian.xy(1.0)
    names = list(compilers) if compilers else ["qiskit-like", "tket-like", "reqisc-eff", "reqisc-full"]
    registry = build_compilers(names, full_synthesis_budget=full_synthesis_budget)
    rows: List[Dict] = []
    for case in benchmark_suite(scale=scale, categories=categories):
        reference = reference_cnot_circuit(case.circuit)
        base = reference_metrics(reference)
        row: Dict = {
            "category": case.category,
            "benchmark": case.name,
            "base_2q": base["num_2q"],
        }
        for name in names:
            result = registry[name].compile(case.circuit)
            if name.startswith("reqisc") or name.endswith("su4"):
                metrics = su4_metrics(result.circuit, coupling)
            else:
                metrics = reference_metrics(result.circuit)
            row[f"{name}_2q_red"] = reduction_percent(base["num_2q"], metrics["num_2q"])
            row[f"{name}_depth_red"] = reduction_percent(base["depth_2q"], metrics["depth_2q"])
            row[f"{name}_dur_red"] = reduction_percent(base["duration"], metrics["duration"])
        rows.append(row)
    return rows


def table3_synthesis_cost(
    num_samples: int = 500, seed: int = 0
) -> List[Dict]:
    """Table 3: single-gate and Haar-average synthesis durations per ISA.

    Haar-average costs for fixed basis gates use the known synthesis counts
    (3 for CNOT/iSWAP, 2.21 for SQiSW, 2 for B); the SU(4) row averages the
    time-optimal duration over Haar-random targets.
    """
    couplings = {
        "xy": CouplingHamiltonian.xy(1.0),
        "xx": CouplingHamiltonian.xx(1.0),
        "random": CouplingHamiltonian.from_coefficients(
            *random_coupling_coefficients(seed, strength=1.0), label="random"
        ),
    }
    bases = {
        "cnot": ((PI_4, 0.0, 0.0), 3.0),
        "iswap": ((PI_4, PI_4, 0.0), 3.0),
        "sqisw": ((PI_8, PI_8, 0.0), 2.21),
        "b": ((PI_4, PI_8, 0.0), 2.0),
    }
    rows: List[Dict] = []
    # Conventional CNOT pulse reference (first row of Table 3).
    rows.append(
        {
            "coupling": "xy",
            "basis": "cnot-conventional",
            "tau_single": BASELINE_CNOT_DURATION,
            "tau_average": 3.0 * BASELINE_CNOT_DURATION,
        }
    )
    for coupling_name, coupling in couplings.items():
        rows.append(
            {
                "coupling": coupling_name,
                "basis": "su4",
                "tau_single": float("nan"),
                "tau_average": haar_average_duration(coupling, num_samples=num_samples, seed=seed),
            }
        )
        for basis_name, (coords, count) in bases.items():
            single, average = fixed_basis_duration(coords, coupling, count)
            rows.append(
                {
                    "coupling": coupling_name,
                    "basis": basis_name,
                    "tau_single": single,
                    "tau_average": average,
                }
            )
    return rows
