"""Experiment harness: one entry point per evaluation table / figure."""

from repro.experiments.tables import (
    table1_suite_characteristics,
    table2_logical_compilation,
    table3_synthesis_cost,
)
from repro.experiments.figures import (
    fig4_alpha_beta_profile,
    fig6_pulse_parameters,
    fig12_routing_overhead,
    fig13_calibration,
    fig14_ablation,
    fig15_fidelity,
    fig16_reliability,
    fig17_noise_aware_routing,
)
from repro.experiments.common import format_rows

__all__ = [
    "table1_suite_characteristics",
    "table2_logical_compilation",
    "table3_synthesis_cost",
    "fig4_alpha_beta_profile",
    "fig6_pulse_parameters",
    "fig12_routing_overhead",
    "fig13_calibration",
    "fig14_ablation",
    "fig15_fidelity",
    "fig16_reliability",
    "fig17_noise_aware_routing",
    "format_rows",
]
