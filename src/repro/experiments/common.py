"""Shared utilities for the experiment harness."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.metrics import (
    circuit_duration,
    cnot_isa_duration_model,
    count_two_qubit_gates,
    two_qubit_depth,
)
from repro.compiler.passes.decompose import decompose_to_cnot
from repro.compiler.routing.coupling_map import CouplingMap
from repro.microarch.durations import su4_duration_model
from repro.microarch.hamiltonian import CouplingHamiltonian
from repro.synthesis.approximate import ApproximateSynthesizer
from repro.target.api import PipelineCompiler
from repro.target.pipeline import named_pipeline, pipeline_names
from repro.target.target import Target

__all__ = [
    "reference_cnot_circuit",
    "reference_metrics",
    "su4_metrics",
    "build_compilers",
    "reduction_percent",
    "format_rows",
]


def reference_cnot_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """The original program lowered to the CNOT ISA (no optimization).

    This is the reference every reduction rate in Table 2 / Figure 14 is
    measured against, matching the paper's "original circuit" columns.
    """
    return decompose_to_cnot(circuit)


def reference_metrics(circuit: QuantumCircuit) -> Dict[str, float]:
    """#2Q / Depth2Q / duration of a CNOT-ISA circuit under conventional pulses."""
    return {
        "num_2q": count_two_qubit_gates(circuit),
        "depth_2q": two_qubit_depth(circuit),
        "duration": circuit_duration(circuit, cnot_isa_duration_model()),
    }


def su4_metrics(circuit: QuantumCircuit, coupling: CouplingHamiltonian) -> Dict[str, float]:
    """#2Q / Depth2Q / duration of an SU(4)-ISA circuit under genAshN pulses."""
    return {
        "num_2q": count_two_qubit_gates(circuit),
        "depth_2q": two_qubit_depth(circuit),
        "duration": circuit_duration(circuit, su4_duration_model(coupling)),
    }


def build_compilers(
    which: Sequence[str],
    coupling_map: Optional[CouplingMap] = None,
    full_synthesis_budget: Optional[int] = 2,
    synthesis_tolerance: float = 1e-5,
    seed: int = 0,
    synthesis_cache: Optional[Any] = None,
    target: Union[None, str, Target] = None,
) -> Dict[str, "PipelineCompiler"]:
    """Construct the compilers used across the experiments by name.

    Recognized names: ``qiskit-like``, ``tket-like``, ``qiskit-su4``,
    ``tket-su4``, ``bqskit-su4``, ``reqisc-eff``, ``reqisc-full``,
    ``reqisc-nc`` (Full without DAG compacting) and ``reqisc-sabre``
    (Full/Eff with plain SABRE instead of mirroring-SABRE).

    Each entry is a :class:`~repro.target.api.PipelineCompiler` — a named
    :class:`~repro.target.pipeline.PipelineSpec` bound to the requested
    ``target`` (or, when only the legacy ``coupling_map`` kwarg is given, a
    target derived from it).  ``target`` may also be a preset name such as
    ``"xy-line"``, resolved per circuit at compile time.

    ``synthesis_cache`` (a :class:`~repro.service.cache.SynthesisCache`) is
    forwarded to every ReQISC compiler so suite-level runs share synthesis
    results across programs.
    """
    if coupling_map is not None:
        if target is not None:
            raise ValueError(
                "pass either target= or the legacy coupling_map=, not both "
                "(use Target.from_device(coupling_map=...) to combine them)"
            )
        target = Target.from_device(coupling_map=coupling_map)

    def fast_synthesizer() -> ApproximateSynthesizer:
        return ApproximateSynthesizer(
            tolerance=synthesis_tolerance, restarts=1, seed=seed, max_iterations=200
        )

    registry: Dict[str, PipelineCompiler] = {}
    for name in which:
        if name in ("reqisc-full", "reqisc-nc"):
            spec = named_pipeline(
                name,
                synthesis_tolerance=synthesis_tolerance,
                synthesizer=fast_synthesizer(),
                max_synthesis_blocks=full_synthesis_budget,
            )
        elif name in pipeline_names():
            spec = named_pipeline(name)
        else:
            raise KeyError(f"unknown compiler name {name!r}")
        cache = synthesis_cache if name.startswith("reqisc") else None
        registry[name] = PipelineCompiler(
            spec=spec, target=target, seed=seed, synthesis_cache=cache
        )
    return registry


def reduction_percent(reference: float, value: float) -> float:
    """Percentage reduction of ``value`` relative to ``reference``."""
    if reference <= 0:
        return 0.0
    return 100.0 * (reference - value) / reference


def format_rows(rows: Iterable[Dict[str, Any]], title: str = "") -> str:
    """Render a list of row dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
