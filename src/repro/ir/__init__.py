"""The mutable compiler IR shared by every pass of the pipeline.

:class:`CircuitIR` is the canonical in-flight representation of a program
inside the compiler: a mutable instruction graph built on the same CSR
dependency structure as :class:`repro.circuits.depgraph.DependencyGraph`,
with transactional rewrite primitives and O(1) metric views.  Passes that
declare ``consumes = "ir"`` receive (and return) the *same* ``CircuitIR``
object, so a pipeline threads one shared structure end-to-end instead of
marshalling a flat gate list at every pass boundary.

:func:`conversion_stats` exposes the marshalling counters (``from_circuit`` /
``to_circuit`` / ``dag_builds``) that the ``repro perf`` ``ir`` benchmark
family records; a full ReQISC compile performs exactly two circuit<->IR
conversions (one in, one out).
"""

from repro.ir.circuit_ir import (
    CircuitIR,
    ExecutionFront,
    conversion_stats,
    reset_conversion_stats,
)

__all__ = [
    "CircuitIR",
    "ExecutionFront",
    "conversion_stats",
    "reset_conversion_stats",
]
